"""A SpatialSpark-style engine: broadcast join and tile partition join.

SpatialSpark (You et al., ICDEW 2015) offers two join paths that map to
the two configurations in the paper's Figure 4:

- **broadcast index join** (its practical un-partitioned mode): the
  whole right side is indexed once and shipped to every left partition;
- **tile partition join** (its "Tile" partitioner): *both* sides are
  replicated into fixed tiles, each tile joins locally, and a global
  duplicate-elimination shuffle cleans up.  With enough tiles the
  replication and dedup overhead exceeds the broadcast join's cost --
  which is precisely the Figure-4 anomaly (95.9 s with Tile vs 31.1 s
  without partitioning) this reproduction is meant to exhibit.

A faithful cost detail: SpatialSpark's API is **ID-based** -- its joins
consume ``(id, geometry)`` pairs and produce ``(leftId, rightId)``
matches, so attaching the record payloads back costs two additional
equi-join shuffles.  STARK avoids this by carrying payloads through the
spatial operators directly (its keyed-RDD integration); both engines
here return full payload pairs so results are comparable, but the
SpatialSpark paths pay the reattachment shuffles their design implies.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines import common
from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.index.rtree import STRTree
from repro.spark.rdd import RDD


class SpatialSparkStyle:
    """Broadcast and tile-partitioned spatial joins (ID-based pipeline)."""

    def __init__(self, index_order: int = 10) -> None:
        self.index_order = index_order

    def broadcast_join(
        self, left: RDD, right: RDD, predicate: STPredicate
    ) -> RDD:
        """Index the entire right side once, probe from every left partition.

        Internally matches IDs, then reattaches payloads by equi-join
        (SpatialSpark's join operates on ``(id, geometry)`` inputs).
        """
        left_ids = left.zip_with_index().map(lambda r: (r[1], r[0])).persist()
        right_ids = right.zip_with_index().map(lambda r: (r[1], r[0])).persist()

        right_rows = right_ids.map(lambda r: (r[0], r[1][0])).collect()
        tree: STRTree = STRTree(
            ((key.geo.envelope, (rid, key)) for rid, key in right_rows),
            node_capacity=self.index_order,
        )
        # Cluster cost model: a Spark broadcast ships the *serialized*
        # index to every executor, which deserializes it before probing.
        # In-process that transfer would be free, silently flattering
        # this baseline, so the pickle round-trip is charged per task --
        # the same work each executor performs on a real cluster.
        import pickle

        shared = left.context.broadcast(
            pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        )

        def probe(it: Iterator) -> Iterator[tuple[int, int]]:
            index: STRTree = pickle.loads(shared.value)
            for lid, (lkey, _lvalue) in it:
                region = predicate.candidate_region(lkey.geo.envelope)
                for rid, rkey in index.query(region):
                    if predicate.evaluate(lkey, rkey):
                        yield (lid, rid)

        matches = left_ids.map_partitions(probe)
        return self._attach_payloads(matches, left_ids, right_ids)

    def tile_join(
        self,
        left: RDD,
        right: RDD,
        predicate: STPredicate,
        tiles_per_dimension: int = 8,
        buggy_duplicates: bool = False,
    ) -> RDD:
        """Replicate both sides into fixed tiles, join per tile, dedup."""
        left_ids = left.zip_with_index().map(lambda r: (r[1], r[0])).persist()
        right_ids = (
            left_ids
            if right is left
            else right.zip_with_index().map(lambda r: (r[1], r[0])).persist()
        )

        universe = Envelope.empty()
        for _lid, (key, _value) in left_ids.collect():
            universe = universe.merge(key.geo.envelope)
        if right_ids is not left_ids:
            for _rid, (key, _value) in right_ids.collect():
                universe = universe.merge(key.geo.envelope)
        tiles = common.grid_cells(universe, tiles_per_dimension)
        locator = common.grid_locator(universe, tiles_per_dimension)

        # Route (STObject, id) rows so the shared replication helper and
        # the per-cell index join see the same shapes as elsewhere.
        left_cells = common.replicate_into_cells(
            left_ids.map(lambda r: (r[1][0], r[0])), tiles, locator
        )
        right_cells = (
            left_cells
            if right_ids is left_ids
            else common.replicate_into_cells(
                right_ids.map(lambda r: (r[1][0], r[0])), tiles, locator
            )
        )
        pairs = common.local_index_join(
            left_cells, right_cells, predicate, self.index_order
        )
        matches = pairs.map(lambda pair: (pair[0][1], pair[1][1]))
        if not buggy_duplicates:
            matches = matches.distinct()
        return self._attach_payloads(matches, left_ids, right_ids)

    @staticmethod
    def _attach_payloads(matches: RDD, left_ids: RDD, right_ids: RDD) -> RDD:
        """(lid, rid) matches -> ((lk, lv), (rk, rv)) via two equi-joins."""
        by_left = matches.join(left_ids).map(
            lambda row: (row[1][0], row[1][1])  # (rid, left_kv)
        )
        return by_left.join(right_ids).map(
            lambda row: (row[1][0], row[1][1])  # (left_kv, right_kv)
        )
