"""A GeoSpark-style engine: replication partitioning + dedup joins.

GeoSpark (Yu et al., SIGSPATIAL 2015) partitions spatially by copying
each geometry into every partition cell its envelope overlaps, runs
per-cell joins, and removes duplicate result pairs afterwards.  Its
join *requires* a spatial partitioning -- the paper's Figure 4
accordingly marks the un-partitioned GeoSpark entry "N/A", which this
class reproduces by raising :class:`UnsupportedOperation`.

``buggy_duplicates=True`` skips the duplicate-elimination step.  This
is deliberate: the paper reports that for two of GeoSpark's
partitioners the result *count changed between repetitions* of the same
query -- the signature of incomplete duplicate handling, where the
number of spurious pairs depends on the (randomized) partition layout.
The flag lets the benchmarks demonstrate the bug class.
"""

from __future__ import annotations

from repro.baselines import common
from repro.core.predicates import STPredicate
from repro.geometry.envelope import Envelope
from repro.spark.rdd import RDD


class UnsupportedOperation(RuntimeError):
    """The baseline does not support this configuration (paper: "N/A")."""


class GeoSparkStyle:
    """Replication-based spatial joins with grid or Voronoi cells."""

    PARTITIONINGS = ("grid", "voronoi")

    def __init__(self, index_order: int = 10) -> None:
        self.index_order = index_order

    def spatial_join(
        self,
        left: RDD,
        right: RDD,
        predicate: STPredicate,
        partitioning: str | None = "grid",
        num_cells: int = 16,
        seed: int = 17,
        buggy_duplicates: bool = False,
    ) -> RDD:
        """Join two ``RDD[(STObject, V)]`` the GeoSpark way.

        ``num_cells`` is the total cell count (rounded to a square for
        the grid).  Returns ``((lk, lv), (rk, rv))`` pairs.
        """
        if partitioning is None:
            raise UnsupportedOperation(
                "GeoSpark-style join requires a spatial partitioning "
                "(the paper's Figure 4 marks this configuration N/A)"
            )
        cells, locator = self._build_cells(left, partitioning, num_cells, seed)
        left_cells = common.replicate_into_cells(left, cells, locator)
        right_cells = (
            left_cells
            if right is left
            else common.replicate_into_cells(right, cells, locator)
        )
        pairs = common.local_index_join(
            left_cells, right_cells, predicate, self.index_order
        )
        if buggy_duplicates:
            return pairs
        return common.dedup_pairs(pairs)

    def _build_cells(self, rdd: RDD, partitioning: str, num_cells: int, seed: int):
        """Returns (cells, locator-or-None)."""
        if partitioning not in self.PARTITIONINGS:
            raise ValueError(
                f"unknown partitioning {partitioning!r}; known: {self.PARTITIONINGS}"
            )
        keys = rdd.keys().collect()
        if partitioning == "voronoi":
            return common.voronoi_cells(keys, num_cells, seed), None
        universe = Envelope.empty()
        for key in keys:
            universe = universe.merge(key.geo.envelope)
        side = max(1, round(num_cells ** 0.5))
        return common.grid_cells(universe, side), common.grid_locator(universe, side)
