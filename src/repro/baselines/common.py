"""Shared machinery of the replication-based baseline engines."""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.index.rtree import STRTree
from repro.spark.rdd import RDD, _IdentityPartitioner


def grid_cells(universe: Envelope, cells_per_dimension: int) -> list[Envelope]:
    """A fixed grid of cell envelopes over *universe*."""
    if cells_per_dimension < 1:
        raise ValueError("cells_per_dimension must be >= 1")
    step_x = universe.width / cells_per_dimension or 1.0
    step_y = universe.height / cells_per_dimension or 1.0
    return [
        Envelope(
            universe.min_x + ix * step_x,
            universe.min_y + iy * step_y,
            universe.min_x + (ix + 1) * step_x,
            universe.min_y + (iy + 1) * step_y,
        )
        for iy in range(cells_per_dimension)
        for ix in range(cells_per_dimension)
    ]


def grid_locator(universe: Envelope, cells_per_dimension: int):
    """O(overlap) cell lookup for a fixed grid (index arithmetic).

    Returns ``locate(envelope) -> list[int]`` yielding the ids of every
    grid cell the envelope overlaps, in the same id order as
    :func:`grid_cells`.  Real grid partitioners route this way; a linear
    scan over all cells would charge the baselines a cost the original
    systems do not pay.
    """
    n = cells_per_dimension
    step_x = universe.width / n or 1.0
    step_y = universe.height / n or 1.0

    def clamp(index: int) -> int:
        return min(max(index, 0), n - 1)

    def locate(env: Envelope) -> list[int]:
        if env.is_empty:
            return []
        ix0 = clamp(int((env.min_x - universe.min_x) / step_x))
        ix1 = clamp(int((env.max_x - universe.min_x) / step_x))
        iy0 = clamp(int((env.min_y - universe.min_y) / step_y))
        iy1 = clamp(int((env.max_y - universe.min_y) / step_y))
        return [
            iy * n + ix for iy in range(iy0, iy1 + 1) for ix in range(ix0, ix1 + 1)
        ]

    return locate


def voronoi_cells(
    sample: list[STObject], num_cells: int, seed: int
) -> list[Envelope]:
    """Voronoi-style cells: random seeds, cell = extent of nearest points.

    GeoSpark's Voronoi partitioner, reduced to its envelope behaviour:
    the cells it produces are summarized by the bounding boxes of the
    points assigned to each seed (grown marginally so border objects
    overlap at least one cell).
    """
    if not sample:
        raise ValueError("cannot build voronoi cells from an empty sample")
    rng = random.Random(seed)
    seeds = [
        (c.x, c.y)
        for st in rng.sample(sample, min(num_cells, len(sample)))
        for c in [st.geo.centroid()]
    ]
    extents = [Envelope.empty() for _ in seeds]
    for st in sample:
        c = st.geo.centroid()
        nearest = min(
            range(len(seeds)),
            key=lambda i: (seeds[i][0] - c.x) ** 2 + (seeds[i][1] - c.y) ** 2,
        )
        extents[nearest] = extents[nearest].merge(st.geo.envelope)
    pad = 1e-9
    return [env.buffer(pad) for env in extents if not env.is_empty]


def replicate_into_cells(rdd: RDD, cells: list[Envelope], locator=None) -> RDD:
    """Copy every item into *every* cell its envelope intersects.

    The core GeoSpark/SpatialSpark partitioning decision (and the
    opposite of STARK's centroid assignment): correct without extents,
    but each copy costs shuffle volume and the join must eliminate the
    duplicate result pairs afterwards.  Items overlapping no cell are
    routed to the nearest cell so nothing is silently dropped.

    ``locator`` (e.g. :func:`grid_locator`) computes overlapping cell
    ids in O(overlap); without one, cells are scanned linearly -- fine
    for the few dozen irregular Voronoi cells, wrong for large grids.
    """

    def route(kv: tuple[STObject, object]) -> Iterator[tuple[int, tuple]]:
        env = kv[0].geo.envelope
        if locator is not None:
            targets = locator(env)
        else:
            targets = [cid for cid, cell in enumerate(cells) if cell.intersects(env)]
        if targets:
            for cid in targets:
                yield (cid, kv)
        else:
            center = kv[0].geo.centroid()
            nearest = min(
                range(len(cells)),
                key=lambda i: cells[i].distance_to_point(center.x, center.y),
            )
            yield (nearest, kv)

    return rdd.flat_map(route).partition_by(_IdentityPartitioner(len(cells)))


def local_index_join(
    cell_rdd_left: RDD,
    cell_rdd_right: RDD,
    predicate: STPredicate,
    index_order: int,
) -> RDD:
    """Per-cell index join of two co-partitioned, cell-keyed RDDs.

    Both inputs carry ``(cell_id, (STObject, V))`` rows with identical
    partitioning; each partition joins its own cell contents.
    """

    def join_partition(split: int, it: Iterator) -> Iterator[tuple]:
        left_rows = [kv for _cid, kv in it]
        right_rows = [
            kv for _cid, kv in cell_rdd_right.iterator(split)
        ]
        if not left_rows or not right_rows:
            return
        tree: STRTree = STRTree(
            ((kv[0].geo.envelope, kv) for kv in right_rows), node_capacity=index_order
        )
        for left_kv in left_rows:
            region = predicate.candidate_region(left_kv[0].geo.envelope)
            for right_kv in tree.query(region):
                if predicate.evaluate(left_kv[0], right_kv[0]):
                    yield (left_kv, right_kv)

    return cell_rdd_left.map_partitions_with_index(join_partition)


def dedup_pairs(pairs: RDD) -> RDD:
    """Global duplicate elimination of join result pairs.

    The price of replication-based partitioning: a pair found in two
    cells appears twice and must be removed with a full shuffle.
    """
    return pairs.distinct()
