"""Baseline systems for the paper's evaluation (section 3).

The paper's Figure 4 compares STARK's self-join against GeoSpark and
SpatialSpark.  Those systems are JVM frameworks; what the figure really
compares is their *join strategies*, which we re-implement faithfully
on the same engine so the comparison isolates the algorithmic choices:

- :class:`~repro.baselines.geospark.GeoSparkStyle` -- replication-based
  spatial partitioning (every geometry is copied into **every**
  partition cell its envelope overlaps) followed by per-cell joins and
  a global duplicate-elimination shuffle.  GeoSpark has no
  un-partitioned join (the figure marks it N/A), and with
  ``buggy_duplicates=True`` the dedup step is skipped, reproducing the
  bug class behind the paper's observation that "for GeoSpark we
  experienced different result counts in each repetition".
- :class:`~repro.baselines.spatialspark.SpatialSparkStyle` -- a
  broadcast index join (its un-partitioned mode) and a tile
  partitioned join that replicates *both* inputs into fixed tiles and
  dedups -- the strategy whose overhead makes its best partitioner
  *slower* than its own no-partitioning run in Figure 4.

STARK itself (centroid assignment + extent pruning, no replication, no
dedup) is the third column, via :func:`repro.core.join.spatial_join`.
"""

from repro.baselines.geospark import GeoSparkStyle
from repro.baselines.spatialspark import SpatialSparkStyle

__all__ = ["GeoSparkStyle", "SpatialSparkStyle"]
