"""A time-sliced R-tree forest: the hybrid temporal index.

STARK's live indexing evaluates the temporal predicate only during
candidate refinement, so a temporally-selective query over a long
history still collects (and refines) every spatial candidate.  The
forest fuses a time dimension into the partition-local index instead,
following the HBase hybrid spatio-temporal index model:

- timed entries are split into **equi-depth time slices** (split points
  at start-time quantiles, so skewed histories stay balanced),
- each slice owns its own :class:`~repro.index.rtree.STRTree` over the
  members' spatial envelopes,
- an :class:`~repro.index.intervaltree.IntervalTree` over the slice
  *extents* (each slice's true covering interval, grown by its
  members) routes a timed query to the few slices that can contribute,
- untimed entries live in one extra spatial-only tree, consulted only
  by untimed queries (a mixed timed/untimed pair never matches under
  the paper's combined semantics, eqs. (1)-(3)).

A query that touches 10% of the time range therefore opens ~10% of the
slice trees; the rest are pruned without touching a single envelope.
"""

from __future__ import annotations

import math
from typing import Callable, Generic, Iterator, TypeVar

from repro.geometry.envelope import Envelope
from repro.index.intervaltree import IntervalTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, STRTree
from repro.temporal.interval import Interval, TemporalExpression

T = TypeVar("T")

#: Upper bound on the automatically-chosen slice count.
DEFAULT_MAX_SLICES = 16


def auto_slice_count(timed_entries: int, node_capacity: int) -> int:
    """A reasonable slice count for *timed_entries* members.

    Grows with the square root of the number of leaf-sized groups so
    both the per-slice trees and the slice directory stay shallow;
    clamped to ``[1, DEFAULT_MAX_SLICES]``.
    """
    if timed_entries <= 0:
        return 1
    groups = timed_entries / max(1, node_capacity)
    return max(1, min(DEFAULT_MAX_SLICES, math.ceil(math.sqrt(groups))))


class TimeSlicedForest(Generic[T]):
    """Per-partition hybrid index: equi-depth time slices of STR-trees.

    ``entries`` are ``(STObject, V)`` pairs -- the same rows the plain
    spatial index stores -- and the stored items are those pairs, so
    the query results feed the exact same refinement step.
    """

    def __init__(
        self,
        entries,
        node_capacity: int = DEFAULT_NODE_CAPACITY,
        time_slices: int | None = None,
    ) -> None:
        if node_capacity < 2:
            raise ValueError(f"node capacity must be >= 2, got {node_capacity}")
        if time_slices is not None and time_slices < 1:
            raise ValueError(f"time_slices must be >= 1, got {time_slices}")
        self.node_capacity = node_capacity

        timed: list = []
        untimed: list = []
        for kv in entries:
            (untimed if kv[0].time is None else timed).append(kv)

        num_slices = time_slices or auto_slice_count(len(timed), node_capacity)
        num_slices = min(num_slices, max(1, len(timed)))

        # Equi-depth slicing over start times: sort once, chunk evenly.
        timed.sort(key=lambda kv: kv[0].time.start)
        self._slices: list[STRTree] = []
        self._extents: list[Interval] = []
        size = math.ceil(len(timed) / num_slices) if timed else 0
        for i in range(0, len(timed), max(1, size)):
            chunk = timed[i : i + size]
            if not chunk:
                continue
            lo = min(kv[0].time.start for kv in chunk)
            hi = max(kv[0].time.end for kv in chunk)
            self._slices.append(
                STRTree(
                    ((kv[0].geo.envelope, kv) for kv in chunk),
                    node_capacity=node_capacity,
                )
            )
            # The slice extent is the members' true covering interval:
            # an interval can stick out of its slice's start range
            # exactly like a polygon sticks out of its grid cell.
            self._extents.append(Interval(lo, hi))
        self._directory: IntervalTree[int] = IntervalTree(
            (extent, idx) for idx, extent in enumerate(self._extents)
        )
        self._untimed: STRTree | None = (
            STRTree(
                ((kv[0].geo.envelope, kv) for kv in untimed),
                node_capacity=node_capacity,
            )
            if untimed
            else None
        )
        self._size = len(timed) + len(untimed)

    def __len__(self) -> int:
        return self._size

    @property
    def num_slices(self) -> int:
        """How many time slices the timed entries were packed into."""
        return len(self._slices)

    @property
    def slice_extents(self) -> list[Interval]:
        """The true covering interval of each slice, in slice order."""
        return list(self._extents)

    @property
    def untimed_count(self) -> int:
        """How many entries carry no temporal component."""
        return len(self._untimed) if self._untimed is not None else 0

    @property
    def envelope(self) -> Envelope:
        """Spatial bounds over every member tree."""
        env = Envelope.empty()
        for tree in self._slices:
            env = env.merge(tree.envelope)
        if self._untimed is not None:
            env = env.merge(self._untimed.envelope)
        return env

    @property
    def temporal_extent(self) -> Interval | None:
        """The covering interval of all timed entries, or ``None``."""
        if not self._extents:
            return None
        return Interval(
            min(extent.start for extent in self._extents),
            max(extent.end for extent in self._extents),
        )

    # -- queries -----------------------------------------------------------

    def query_st(
        self, region: Envelope, time: TemporalExpression | None
    ) -> tuple[list[T], int]:
        """``(candidates, slices_pruned)`` for a spatio-temporal probe.

        A timed query is routed through the slice directory and never
        opens the untimed tree; an untimed query consults *only* the
        untimed tree -- both directions follow the combined semantics
        where a mixed timed/untimed pair cannot match.
        """
        if time is None:
            if self._untimed is None:
                return [], len(self._slices)
            return self._untimed.query(region), len(self._slices)
        keep = sorted(self._directory.query(time))
        out: list[T] = []
        for idx in keep:
            out.extend(self._slices[idx].query(region))
        return out, len(self._slices) - len(keep)

    def query(self, region: Envelope) -> list[T]:
        """All spatial candidates regardless of time (no pruning).

        This is the spatial-index contract, used by operators that have
        no temporal component to route on (e.g. flattening, joins).
        """
        out: list[T] = []
        for tree in self._slices:
            out.extend(tree.query(region))
        if self._untimed is not None:
            out.extend(self._untimed.query(region))
        return out

    def iter_entries(self) -> Iterator[tuple[Envelope, T]]:
        """Every (envelope, item) entry across all member trees."""
        for tree in self._slices:
            yield from tree.iter_entries()
        if self._untimed is not None:
            yield from self._untimed.iter_entries()

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        exact_distance: Callable[[T], float] | None = None,
        bound_slack: float = 0.0,
    ) -> list[tuple[float, T]]:
        """The *k* spatially-nearest items, merged across member trees.

        Each member tree answers its local top-k by branch-and-bound;
        the forest merges the lists.  kNN carries no temporal predicate,
        so every tree participates.
        """
        import heapq

        best: list[tuple[float, T]] = []
        trees = list(self._slices)
        if self._untimed is not None:
            trees.append(self._untimed)
        for tree in trees:
            best.extend(
                tree.nearest(
                    x, y, k, exact_distance=exact_distance, bound_slack=bound_slack
                )
            )
        return heapq.nsmallest(k, best, key=lambda pair: pair[0])

    def __repr__(self) -> str:
        return (
            f"TimeSlicedForest(size={self._size}, slices={len(self._slices)}, "
            f"untimed={self.untimed_count}, capacity={self.node_capacity})"
        )


def temporal_extent_of(tree) -> tuple[Interval | None, bool]:
    """``(covering interval of timed members, has untimed members)``.

    Works for every partition-index kind: the forest and the 3D tree
    answer from their own bookkeeping; a plain spatial
    :class:`~repro.index.rtree.STRTree` (whose items are
    ``(STObject, V)`` pairs) is scanned once.  Used at index build /
    save time to record the temporal partition extents that drive
    whole-partition pruning.
    """
    if isinstance(tree, TimeSlicedForest):
        return tree.temporal_extent, tree.untimed_count > 0
    lo, hi = math.inf, -math.inf
    has_untimed = False
    for _env, kv in tree.iter_entries():
        key = getattr(kv[0], "time", None) if isinstance(kv, tuple) else None
        if key is None:
            has_untimed = True
        else:
            lo = min(lo, key.start)
            hi = max(hi, key.end)
    return (Interval(lo, hi) if lo <= hi else None), has_untimed
