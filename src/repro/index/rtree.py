"""A Sort-Tile-Recursive (STR) bulk-loaded R-tree.

This is the reproduction of the JTS ``STRtree`` STARK uses to index
partition contents.  STR packing (Leutenegger et al.) sorts entries by
x-center into vertical slices, sorts each slice by y-center, and packs
runs of *node_capacity* entries into nodes, recursing until a single
root remains.  The tree is build-once (like JTS): queries are available
after construction, inserts are not.

Supported queries:

- :meth:`query` -- all items whose envelope intersects a query envelope
  (returns *candidates*; exact predicates refine them, as in the
  paper's live-indexing description),
- :meth:`nearest` -- k nearest items to a point by branch-and-bound,
  with an optional exact distance callback so refinement happens inside
  the traversal.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.geometry.envelope import Envelope

T = TypeVar("T")

DEFAULT_NODE_CAPACITY = 10

_INF = float("inf")


class _Node(Generic[T]):
    __slots__ = ("envelope", "children", "entries")

    def __init__(
        self,
        envelope: Envelope,
        children: list["_Node[T]"] | None = None,
        entries: list[tuple[Envelope, T]] | None = None,
    ) -> None:
        self.envelope = envelope
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


def _merge_envelopes(envelopes: Iterable[Envelope]) -> Envelope:
    # Four float accumulators instead of one frozen Envelope allocation
    # per merge: this runs for every node of every bulk-load, and tree
    # builds happen once per join task.
    min_x = min_y = _INF
    max_x = max_y = -_INF
    for env in envelopes:
        if env.min_x < min_x:
            min_x = env.min_x
        if env.min_y < min_y:
            min_y = env.min_y
        if env.max_x > max_x:
            max_x = env.max_x
        if env.max_y > max_y:
            max_y = env.max_y
    return Envelope(min_x, min_y, max_x, max_y)


def _chunks(rows: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


class STRTree(Generic[T]):
    """An immutable STR-packed R-tree over (envelope, item) entries.

    ``node_capacity`` is the paper's "order of the tree" parameter
    (``liveIndex(order = 5)`` in the paper's example).
    """

    def __init__(
        self,
        entries: Iterable[tuple[Envelope, T]],
        node_capacity: int = DEFAULT_NODE_CAPACITY,
    ) -> None:
        if node_capacity < 2:
            raise ValueError(f"node capacity must be >= 2, got {node_capacity}")
        self.node_capacity = node_capacity
        entry_list = [(env, item) for env, item in entries if not env.is_empty]
        self._size = len(entry_list)
        self._root = self._build(entry_list)

    @staticmethod
    def for_geometries(
        items: Iterable[T],
        envelope_of: Callable[[T], Envelope],
        node_capacity: int = DEFAULT_NODE_CAPACITY,
    ) -> "STRTree[T]":
        """Build from items using *envelope_of* to extract bounds."""
        return STRTree(
            ((envelope_of(item), item) for item in items), node_capacity
        )

    def __len__(self) -> int:
        return self._size

    @property
    def envelope(self) -> Envelope:
        """Bounds of the whole tree (empty for an empty tree)."""
        return self._root.envelope if self._root is not None else Envelope.empty()

    @property
    def height(self) -> int:
        """Levels from root to leaves; 0 for an empty tree."""
        levels = 0
        node = self._root
        while node is not None:
            levels += 1
            node = node.children[0] if node.children else None
        return levels

    # -- construction --------------------------------------------------------

    def _build(self, entries: list[tuple[Envelope, T]]) -> _Node[T] | None:
        if not entries:
            return None
        cap = self.node_capacity

        # Leaf level: STR tiling of the raw entries.
        leaves = [
            _Node(_merge_envelopes(e for e, _ in chunk), entries=list(chunk))
            for chunk in self._str_tiles(entries, lambda entry: entry[0], cap)
        ]
        level: list[_Node[T]] = leaves
        while len(level) > 1:
            level = [
                _Node(
                    _merge_envelopes(n.envelope for n in chunk),
                    children=list(chunk),
                )
                for chunk in self._str_tiles(level, lambda node: node.envelope, cap)
            ]
        return level[0]

    @staticmethod
    def _str_tiles(rows: list, env_of: Callable, cap: int) -> Iterator[list]:
        """Group rows into runs of *cap* using Sort-Tile-Recursive order."""
        import math

        from repro.spark.cancellation import Heartbeat

        # Bulk-loading a large partition's index can take seconds; one
        # beat per tile keeps the build cancellable under a deadline.
        heartbeat = Heartbeat(every=64)
        n = len(rows)
        leaf_count = math.ceil(n / cap)
        slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
        by_x = sorted(rows, key=lambda r: env_of(r).center()[0])
        slice_size = math.ceil(n / slice_count)
        for vertical in _chunks(by_x, slice_size):
            by_y = sorted(vertical, key=lambda r: env_of(r).center()[1])
            for tile in _chunks(by_y, cap):
                heartbeat.beat()
                yield tile

    # -- queries ---------------------------------------------------------------

    def query(self, envelope: Envelope) -> list[T]:
        """All items whose envelope intersects *envelope* (candidates)."""
        out: list[T] = []
        if self._root is None or envelope.is_empty:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.envelope.intersects(envelope):
                continue
            if node.is_leaf:
                out.extend(
                    item for env, item in node.entries if env.intersects(envelope)
                )
            else:
                stack.extend(node.children)
        return out

    def query_point(self, x: float, y: float) -> list[T]:
        """Items whose envelope covers the point."""
        return self.query(Envelope.of_point(x, y))

    def iter_entries(self) -> Iterator[tuple[Envelope, T]]:
        """Every (envelope, item) entry (arbitrary order)."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        exact_distance: Callable[[T], float] | None = None,
        bound_slack: float = 0.0,
    ) -> list[tuple[float, T]]:
        """The *k* items nearest to ``(x, y)``, as (distance, item) ascending.

        Branch-and-bound over node envelopes: a node is expanded only
        when its envelope distance beats the current k-th best.  With
        *exact_distance* the true geometry distance ranks items (the
        envelope distance remains the admissible lower bound); without
        it, envelope distance is the metric -- exact for points, a
        candidate ranking for extended geometries.

        ``bound_slack`` loosens every envelope lower bound by that
        amount.  It exists for probes by *extended* geometries: when
        ``(x, y)`` is the centroid of a geometry with "radius" r (max
        centroid-to-boundary distance), the exact geometry distance can
        undercut the envelope-to-centroid bound by at most r, so
        passing ``bound_slack=r`` keeps pruning admissible.
        """
        if k < 1 or self._root is None:
            return []

        counter = itertools.count()  # tie-break, keeps heap entries comparable
        frontier: list[tuple[float, int, object, T | None]] = [
            (
                self._root.envelope.distance_to_point(x, y) - bound_slack,
                next(counter),
                self._root,
                None,
            )
        ]
        best: list[tuple[float, T]] = []

        def kth_best() -> float:
            return best[-1][0] if len(best) == k else float("inf")

        while frontier:
            lower_bound, _tie, node_or_none, item = heapq.heappop(frontier)
            if lower_bound > kth_best():
                break
            if node_or_none is None:
                # A fully-resolved item: lower_bound is its final distance.
                best.append((lower_bound, item))  # type: ignore[arg-type]
                best.sort(key=lambda pair: pair[0])
                if len(best) > k:
                    best.pop()
                continue
            node: _Node[T] = node_or_none  # type: ignore[assignment]
            if node.is_leaf:
                for env, entry_item in node.entries:
                    if exact_distance is not None:
                        d = exact_distance(entry_item)
                    else:
                        d = env.distance_to_point(x, y) - bound_slack
                    if d <= kth_best():
                        heapq.heappush(frontier, (d, next(counter), None, entry_item))
            else:
                for child in node.children:
                    d = child.envelope.distance_to_point(x, y) - bound_slack
                    if d <= kth_best():
                        heapq.heappush(frontier, (d, next(counter), child, None))
        return best

    def __repr__(self) -> str:
        return (
            f"STRTree(size={self._size}, capacity={self.node_capacity}, "
            f"height={self.height})"
        )
