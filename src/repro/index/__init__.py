"""Spatial and temporal index structures.

- :class:`~repro.index.rtree.STRTree` -- the Sort-Tile-Recursive bulk-
  loaded R-tree, the reproduction of the JTS STRtree STARK uses for
  partition-local indexing (paper section 2.2),
- :class:`~repro.index.intervaltree.IntervalTree` -- a static interval
  tree for temporal lookups (an extension point; STARK's live indexing
  evaluates the temporal predicate during candidate refinement),
- :mod:`~repro.index.persistence` -- save/load helpers implementing the
  *persistent indexing* mode.
"""

from repro.index.intervaltree import IntervalTree
from repro.index.rtree import STRTree

__all__ = ["IntervalTree", "STRTree"]
