"""Spatial and temporal index structures.

- :class:`~repro.index.rtree.STRTree` -- the Sort-Tile-Recursive bulk-
  loaded R-tree, the reproduction of the JTS STRtree STARK uses for
  partition-local indexing (paper section 2.2),
- :class:`~repro.index.temporal_forest.TimeSlicedForest` -- the hybrid
  temporal index: equi-depth time slices of STR-trees behind an
  interval-tree slice directory (``mode="temporal"``),
- :class:`~repro.index.rtree3d.STRTree3D` -- a 3D (x, y, t) STR bulk
  load that fuses the time dimension into the tree (``mode="3d"``),
- :class:`~repro.index.intervaltree.IntervalTree` -- a static interval
  tree for temporal lookups; it backs the forest's slice directory,
- :mod:`~repro.index.persistence` -- save/load helpers implementing the
  *persistent indexing* mode, with a process-level reuse cache.

:func:`build_partition_index` is the one factory every indexing call
path goes through, so ``live_index(mode=...)`` / ``index(mode=...)``
and the cost-based planner all agree on what each mode means.
"""

from repro.index.intervaltree import IntervalTree
from repro.index.rtree import STRTree
from repro.index.rtree3d import Envelope3, STRTree3D
from repro.index.temporal_forest import TimeSlicedForest, temporal_extent_of

#: The partition-index modes ``live_index`` / ``index`` accept.
INDEX_MODES = ("spatial", "temporal", "3d")


def build_partition_index(
    entries,
    order: int = 10,
    mode: str = "spatial",
    time_slices: int | None = None,
):
    """Build one partition-local index over ``(STObject, V)`` pairs.

    ``mode`` selects the structure: ``"spatial"`` (a plain STR-tree,
    temporal predicate left to refinement -- the paper's behaviour),
    ``"temporal"`` (a :class:`TimeSlicedForest`) or ``"3d"`` (an
    :class:`STRTree3D`).  ``time_slices`` applies to the forest only.
    """
    if mode not in INDEX_MODES:
        raise ValueError(f"unknown index mode {mode!r}; known: {INDEX_MODES}")
    if mode == "temporal":
        return TimeSlicedForest(entries, node_capacity=order, time_slices=time_slices)
    if mode == "3d":
        return STRTree3D.for_stobjects(entries, node_capacity=order)
    return STRTree(
        ((kv[0].geo.envelope, kv) for kv in entries), node_capacity=order
    )


__all__ = [
    "INDEX_MODES",
    "Envelope3",
    "IntervalTree",
    "STRTree",
    "STRTree3D",
    "TimeSlicedForest",
    "build_partition_index",
    "temporal_extent_of",
]
