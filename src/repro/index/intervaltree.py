"""A static centered interval tree for temporal lookups.

STARK evaluates temporal predicates during R-tree candidate refinement;
this tree is the optional fast path for *temporal-first* workloads (an
extension the benchmarks ablate): stab and range queries in
``O(log n + m)``.
"""

from __future__ import annotations

import statistics
from typing import Generic, Iterable, Iterator, TypeVar

from repro.temporal.instant import Instant
from repro.temporal.interval import Interval, TemporalExpression

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float, spanning: list[tuple[float, float, T]]) -> None:
        self.center = center
        self.by_start = sorted(spanning, key=lambda row: row[0])
        self.by_end = sorted(spanning, key=lambda row: row[1], reverse=True)
        self.left: "_Node[T] | None" = None
        self.right: "_Node[T] | None" = None


class IntervalTree(Generic[T]):
    """An immutable interval tree over ``(temporal, item)`` entries.

    Instants participate as zero-length intervals.
    """

    def __init__(self, entries: Iterable[tuple[TemporalExpression, T]]) -> None:
        rows: list[tuple[float, float, T]] = []
        for temporal, item in entries:
            if not isinstance(temporal, (Instant, Interval)):
                raise TypeError(
                    f"expected Instant or Interval, got {type(temporal).__name__}"
                )
            rows.append((temporal.start, temporal.end, item))
        self._size = len(rows)
        self._root = self._build(rows)

    def __len__(self) -> int:
        return self._size

    def _build(self, rows: list[tuple[float, float, T]]) -> "_Node[T] | None":
        if not rows:
            return None
        center = statistics.median(
            [row[0] for row in rows] + [row[1] for row in rows]
        )
        left_rows = [row for row in rows if row[1] < center]
        right_rows = [row for row in rows if row[0] > center]
        spanning = [row for row in rows if row[0] <= center <= row[1]]
        node = _Node(center, spanning)
        node.left = self._build(left_rows)
        node.right = self._build(right_rows)
        return node

    def stab(self, t: float) -> list[T]:
        """Items whose interval contains timestamp *t* (closed bounds)."""
        out: list[T] = []
        node = self._root
        while node is not None:
            if t < node.center:
                for start, _end, item in node.by_start:
                    if start > t:
                        break
                    out.append(item)
                node = node.left
            elif t > node.center:
                for _start, end, item in node.by_end:
                    if end < t:
                        break
                    out.append(item)
                node = node.right
            else:
                out.extend(item for _s, _e, item in node.by_start)
                break
        return out

    def query(self, query: TemporalExpression) -> list[T]:
        """Items whose interval intersects the query's extent."""
        lo, hi = query.start, query.end
        out: list[T] = []
        self._query_range(self._root, lo, hi, out)
        return out

    def _query_range(
        self, node: "_Node[T] | None", lo: float, hi: float, out: list[T]
    ) -> None:
        if node is None:
            return
        if hi < node.center:
            # Only spanning intervals starting at or before hi can overlap.
            for start, _end, item in node.by_start:
                if start > hi:
                    break
                out.append(item)
            self._query_range(node.left, lo, hi, out)
        elif lo > node.center:
            for _start, end, item in node.by_end:
                if end < lo:
                    break
                out.append(item)
            self._query_range(node.right, lo, hi, out)
        else:
            # The query straddles the center: every spanning interval hits.
            out.extend(item for _s, _e, item in node.by_start)
            self._query_range(node.left, lo, hi, out)
            self._query_range(node.right, lo, hi, out)

    def iter_entries(self) -> Iterator[tuple[Interval, T]]:
        """Every entry as (Interval, item)."""
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            for start, end, item in node.by_start:
                yield (Interval(start, end), item)
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)

    def __repr__(self) -> str:
        return f"IntervalTree(size={self._size})"
