"""A 3-dimensional (x, y, t) Sort-Tile-Recursive bulk-loaded R-tree.

The hybrid spatio-temporal index model fuses the temporal dimension
into the index itself instead of leaving it to refinement: every entry
is boxed by its spatial envelope *and* its time interval, and a query
descends only into nodes whose (x, y, t) box intersects the query box.
For temporally-selective queries over long histories this prunes the
bulk of the candidates inside the tree, before any exact predicate
runs.

Untimed entries are boxed with an unbounded time extent so they remain
reachable by untimed probes; the filter operators never route a timed
query at them (a mixed timed/untimed pair can never match under the
paper's combined semantics, eqs. (1)-(3)).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.geometry.envelope import Envelope
from repro.temporal.interval import Interval, TemporalExpression

T = TypeVar("T")

_INF = float("inf")

DEFAULT_NODE_CAPACITY = 10


class Envelope3:
    """An immutable (x, y, t) box: a spatial envelope plus a time range.

    Untimed entries carry an unbounded t-range so every spatial-only
    probe still reaches them.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y", "min_t", "max_t")

    def __init__(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        min_t: float = -_INF,
        max_t: float = _INF,
    ) -> None:
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self.min_t = min_t
        self.max_t = max_t

    @staticmethod
    def of(envelope: Envelope, time: TemporalExpression | None) -> "Envelope3":
        """Box a spatial envelope with an optional temporal extent."""
        if time is None:
            return Envelope3(
                envelope.min_x, envelope.min_y, envelope.max_x, envelope.max_y
            )
        return Envelope3(
            envelope.min_x,
            envelope.min_y,
            envelope.max_x,
            envelope.max_y,
            time.start,
            time.end,
        )

    def intersects(self, other: "Envelope3") -> bool:
        """Closed-bounds intersection in all three dimensions."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
            and self.min_t <= other.max_t
            and other.min_t <= self.max_t
        )

    @property
    def spatial(self) -> Envelope:
        """The (x, y) projection of the box."""
        return Envelope(self.min_x, self.min_y, self.max_x, self.max_y)

    def center(self) -> tuple[float, float, float]:
        """The box midpoint; unbounded t-ranges center at 0."""
        mid_t = (
            (self.min_t + self.max_t) / 2.0
            if math.isfinite(self.min_t) and math.isfinite(self.max_t)
            else 0.0
        )
        return (
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
            mid_t,
        )

    def distance_to_point_2d(self, x: float, y: float) -> float:
        """Euclidean distance from (x, y) to the spatial projection."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def __repr__(self) -> str:
        return (
            f"Envelope3(({self.min_x}, {self.min_y}, {self.min_t}) .. "
            f"({self.max_x}, {self.max_y}, {self.max_t}))"
        )


def _merge_boxes(boxes: Iterable[Envelope3]) -> Envelope3:
    """The smallest box covering every operand (mutable accumulators)."""
    min_x = min_y = min_t = _INF
    max_x = max_y = max_t = -_INF
    for box in boxes:
        if box.min_x < min_x:
            min_x = box.min_x
        if box.min_y < min_y:
            min_y = box.min_y
        if box.min_t < min_t:
            min_t = box.min_t
        if box.max_x > max_x:
            max_x = box.max_x
        if box.max_y > max_y:
            max_y = box.max_y
        if box.max_t > max_t:
            max_t = box.max_t
    return Envelope3(min_x, min_y, max_x, max_y, min_t, max_t)


def _chunks(rows: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


class _Node3(Generic[T]):
    __slots__ = ("box", "children", "entries")

    def __init__(
        self,
        box: Envelope3,
        children: list["_Node3[T]"] | None = None,
        entries: list[tuple[Envelope3, T]] | None = None,
    ) -> None:
        self.box = box
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class STRTree3D(Generic[T]):
    """An immutable STR-packed 3D R-tree over ``(Envelope3, item)`` entries.

    The bulk load extends Sort-Tile-Recursive to three dimensions:
    entries sort by x-center into slabs, each slab by y-center into
    runs, each run by t-center into tiles of ``node_capacity`` entries.
    Like the 2D tree it is build-once: queries only.
    """

    def __init__(
        self,
        entries: Iterable[tuple[Envelope3, T]],
        node_capacity: int = DEFAULT_NODE_CAPACITY,
    ) -> None:
        if node_capacity < 2:
            raise ValueError(f"node capacity must be >= 2, got {node_capacity}")
        self.node_capacity = node_capacity
        entry_list = list(entries)
        self._size = len(entry_list)
        self._root = self._build(entry_list)

    @staticmethod
    def for_stobjects(
        entries: Iterable[tuple], node_capacity: int = DEFAULT_NODE_CAPACITY
    ) -> "STRTree3D":
        """Build from ``(STObject, V)`` pairs, boxing each by envelope + time."""
        return STRTree3D(
            (
                (Envelope3.of(kv[0].geo.envelope, kv[0].time), kv)
                for kv in entries
            ),
            node_capacity,
        )

    def __len__(self) -> int:
        return self._size

    @property
    def envelope(self) -> Envelope:
        """The spatial (x, y) bounds of the whole tree."""
        if self._root is None:
            return Envelope.empty()
        return self._root.box.spatial

    @property
    def temporal_extent(self) -> Interval | None:
        """The time range covered by the timed entries, or ``None``.

        Unbounded node extents mean at least one untimed entry; the
        extent is then computed from the timed entries directly.
        """
        if self._root is None:
            return None
        box = self._root.box
        if math.isfinite(box.min_t) and math.isfinite(box.max_t):
            return Interval(box.min_t, box.max_t)
        lo, hi = _INF, -_INF
        for entry_box, _item in self._iter_boxed():
            if math.isfinite(entry_box.min_t):
                lo = min(lo, entry_box.min_t)
                hi = max(hi, entry_box.max_t)
        return Interval(lo, hi) if lo <= hi else None

    # -- construction ------------------------------------------------------

    def _build(self, entries: list[tuple[Envelope3, T]]) -> _Node3[T] | None:
        if not entries:
            return None
        cap = self.node_capacity
        leaves = [
            _Node3(_merge_boxes(b for b, _ in tile), entries=list(tile))
            for tile in self._str_tiles(entries, lambda entry: entry[0], cap)
        ]
        level: list[_Node3[T]] = leaves
        while len(level) > 1:
            level = [
                _Node3(_merge_boxes(n.box for n in tile), children=list(tile))
                for tile in self._str_tiles(level, lambda node: node.box, cap)
            ]
        return level[0]

    @staticmethod
    def _str_tiles(rows: list, box_of: Callable, cap: int) -> Iterator[list]:
        """Group rows into runs of *cap* by 3D Sort-Tile-Recursive order."""
        from repro.spark.cancellation import Heartbeat

        heartbeat = Heartbeat(every=64)
        n = len(rows)
        leaf_count = math.ceil(n / cap)
        # S slabs in x, S runs in y per slab, tiles in t per run, with
        # S = ceil(leaf_count^(1/3)) so the grid is roughly cubic.
        slab_count = max(1, math.ceil(leaf_count ** (1.0 / 3.0)))
        by_x = sorted(rows, key=lambda r: box_of(r).center()[0])
        slab_size = math.ceil(n / slab_count)
        for slab in _chunks(by_x, slab_size):
            by_y = sorted(slab, key=lambda r: box_of(r).center()[1])
            run_size = math.ceil(len(slab) / slab_count)
            for run in _chunks(by_y, run_size):
                by_t = sorted(run, key=lambda r: box_of(r).center()[2])
                for tile in _chunks(by_t, cap):
                    heartbeat.beat()
                    yield tile

    # -- queries -----------------------------------------------------------

    def query_st(
        self, region: Envelope, time: TemporalExpression | None
    ) -> list[T]:
        """Candidates whose (x, y, t) box intersects region x time.

        An untimed query uses an unbounded time range, so it reaches
        every entry the spatial test admits (refinement then rejects
        the timed ones under the combined semantics).
        """
        if self._root is None or region.is_empty:
            return []
        probe = Envelope3.of(region, time)
        out: list[T] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(probe):
                continue
            if node.is_leaf:
                out.extend(
                    item for box, item in node.entries if box.intersects(probe)
                )
            else:
                stack.extend(node.children)
        return out

    def query(self, region: Envelope) -> list[T]:
        """Spatial-only candidates (the 2D :class:`STRTree` contract)."""
        return self.query_st(region, None)

    def _iter_boxed(self) -> Iterator[tuple[Envelope3, T]]:
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    def iter_entries(self) -> Iterator[tuple[Envelope, T]]:
        """Every entry as ``(spatial envelope, item)`` (arbitrary order).

        The 2D projection keeps the persistence sidecar format shared
        with the other index kinds, so a damaged 3D part can always be
        rebuilt as a (spatial) live tree.
        """
        for box, item in self._iter_boxed():
            yield box.spatial, item

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        exact_distance: Callable[[T], float] | None = None,
        bound_slack: float = 0.0,
    ) -> list[tuple[float, T]]:
        """The *k* spatially-nearest items to ``(x, y)``.

        Branch-and-bound over the spatial projection of the 3D node
        boxes -- the projection distance is a valid lower bound for
        every member, so pruning stays admissible; the time dimension
        plays no part (kNN has no temporal predicate).
        """
        if k < 1 or self._root is None:
            return []
        counter = itertools.count()
        frontier: list = [
            (
                self._root.box.distance_to_point_2d(x, y) - bound_slack,
                next(counter),
                self._root,
                None,
            )
        ]
        best: list[tuple[float, T]] = []

        def kth_best() -> float:
            return best[-1][0] if len(best) == k else _INF

        while frontier:
            lower_bound, _tie, node_or_none, item = heapq.heappop(frontier)
            if lower_bound > kth_best():
                break
            if node_or_none is None:
                best.append((lower_bound, item))
                best.sort(key=lambda pair: pair[0])
                if len(best) > k:
                    best.pop()
                continue
            node: _Node3[T] = node_or_none
            if node.is_leaf:
                for box, entry_item in node.entries:
                    if exact_distance is not None:
                        d = exact_distance(entry_item)
                    else:
                        d = box.distance_to_point_2d(x, y) - bound_slack
                    if d <= kth_best():
                        heapq.heappush(frontier, (d, next(counter), None, entry_item))
            else:
                for child in node.children:
                    d = child.box.distance_to_point_2d(x, y) - bound_slack
                    if d <= kth_best():
                        heapq.heappush(frontier, (d, next(counter), child, None))
        return best

    def __repr__(self) -> str:
        return f"STRTree3D(size={self._size}, capacity={self.node_capacity})"
