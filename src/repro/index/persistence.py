"""Persistent indexing: save and reload per-partition R-trees.

Reproduces the paper's third indexing mode (section 2.2): an indexed
RDD -- an RDD whose elements are partition-local STR-trees -- is written
as binary objects ("using Spark's method to save binary objects") and
can be loaded by the same or another program without rebuilding.

The partitioner metadata is stored alongside the trees so a reloaded
index keeps its partition-pruning ability, and the per-partition
*temporal extents* recorded at save time let a timed query prune whole
partitions before a single tree is opened.

Process-level reuse cache
-------------------------
Deserializing a large index dominates short interactive programs that
open the same index repeatedly (the paper's multi-program workflow).
Loads therefore go through a process-level cache keyed by the index
path and validated against a *freshness signature* (name, mtime_ns,
size of every part and the metadata file): a repeated load of an
unchanged index returns the already-deserialized trees (counted in
``metrics.index_cache_hits``), while any rewrite -- including
:func:`save_index` over the same path -- invalidates automatically.
:func:`invalidate_index_cache` drops entries explicitly.

Fault model
-----------
A persisted index is the one artifact the paper's multi-program workflow
shares across runs, so loading degrades gracefully instead of dying on
damage:

- :func:`save_index` additionally writes a ``_data`` sidecar directory
  holding each partition's raw ``(envelope, item)`` entries;
- :class:`ResilientIndexRDD` reads tree part-files lazily and, when a
  part is truncated/corrupt (or a fault is injected at the
  ``index.load`` site), **rebuilds a live STR-tree for that partition**
  from the sidecar -- exact query results, one partition's build cost.
  Each fallback is counted in ``metrics.index_fallbacks`` and recorded
  as an ``index.fallback`` span in the trace;
- a missing or corrupt ``_index_meta.pkl`` degrades to an unpartitioned
  load (pruning disabled, queries still exact) instead of raising;
- only when a part is corrupt *and* no recovery data exists does the
  load fail, with a :class:`~repro.spark.storage.StorageError` naming
  the path (pre-sidecar layouts written by older versions).

The cache never interferes with either mechanism: chaos runs (an
active fault injector) bypass it entirely, and partitions that needed
a live rebuild are not cached.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import TYPE_CHECKING, Iterator

from repro.index.rtree import DEFAULT_NODE_CAPACITY, STRTree
from repro.spark import storage
from repro.spark.rdd import RDD
from repro.spark.storage import StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext

_META_FILE = "_index_meta.pkl"
_DATA_DIR = "_data"

#: path -> (freshness signature, {split: deserialized trees}).
_INDEX_CACHE: dict[str, tuple[tuple, dict[int, list]]] = {}
_CACHE_LOCK = threading.Lock()


def _index_signature(path: str, parts: list[str]) -> tuple:
    """A freshness signature for the index at *path*.

    Built from (name, mtime_ns, size) of every tree part and the
    metadata file, so any rewrite -- even one preserving file names --
    changes the signature and invalidates cached trees.
    """
    sig = []
    for name in [_META_FILE, *parts]:
        full = os.path.join(path, name)
        try:
            st = os.stat(full)
            sig.append((name, st.st_mtime_ns, st.st_size))
        except OSError:
            sig.append((name, None, None))
    return tuple(sig)


def invalidate_index_cache(path: str | None = None) -> None:
    """Drop cached deserialized trees for *path* (or every path).

    Called automatically by :func:`save_index`; call it directly after
    mutating an index directory through any other channel.
    """
    with _CACHE_LOCK:
        if path is None:
            _INDEX_CACHE.clear()
        else:
            _INDEX_CACHE.pop(os.path.abspath(path), None)


def save_index(
    indexed_rdd: RDD,
    path: str,
    partitioner=None,
    order: int | None = None,
    temporal_extents: list | None = None,
    mode: str | None = None,
) -> None:
    """Persist an RDD of per-partition index trees plus its partitioner.

    Alongside the pickled trees, every partition's raw entries are
    written to a ``_data`` sidecar so a damaged tree part can be rebuilt
    live on load.  *order* (the tree's node capacity), the index *mode*
    and the per-partition *temporal_extents* (``Interval | None`` per
    partition) are stored in the metadata; the extents power whole-
    partition temporal pruning after a reload.
    """
    indexed_rdd.save_as_object_file(path)

    def extract_entries(trees: Iterator[STRTree]) -> Iterator[list]:
        # One row per partition: the entry lists of its trees, in order.
        yield [list(tree.iter_entries()) for tree in trees]

    indexed_rdd.map_partitions(extract_entries).save_as_object_file(
        os.path.join(path, _DATA_DIR)
    )
    with open(os.path.join(path, _META_FILE), "wb") as f:
        pickle.dump(
            {
                "partitioner": partitioner,
                "order": order,
                "mode": mode,
                "temporal_extents": temporal_extents,
            },
            f,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    invalidate_index_cache(path)


def _read_meta(path: str) -> dict:
    """Read the metadata file, wrapping corruption in StorageError."""
    meta_path = os.path.join(path, _META_FILE)
    if not os.path.exists(meta_path):
        return {}
    try:
        with open(meta_path, "rb") as f:
            return pickle.load(f)
    except (pickle.UnpicklingError, EOFError) as exc:
        raise StorageError(f"corrupt index metadata {meta_path!r}: {exc}") from exc


class ResilientIndexRDD(RDD[STRTree]):
    """Reads persisted trees with per-partition live-rebuild fallback.

    Layout-compatible with plain ``object_file`` directories: without a
    ``_data`` sidecar it behaves like :class:`ObjectFileRDD` (corrupt
    parts raise :class:`StorageError`); with one, damaged partitions are
    rebuilt from their raw entries.

    Splits deserialize through the process-level cache: a split already
    loaded by an earlier RDD over the same (unchanged) path is served
    from memory and counted in ``metrics.index_cache_hits``.
    """

    def __init__(self, context, path: str, order: int | None = None) -> None:
        super().__init__(context)
        self._path = path
        self._parts = storage._list_parts(path, ".pkl")
        self._order = order or DEFAULT_NODE_CAPACITY
        data_dir = os.path.join(path, _DATA_DIR)
        self._data_dir = data_dir if os.path.isdir(data_dir) else None
        #: Splits that were rebuilt live instead of unpickled.
        self.fallbacks: list[int] = []
        self._cache_key = os.path.abspath(path)
        self._signature = _index_signature(path, self._parts)

    @property
    def num_partitions(self) -> int:
        return len(self._parts)

    def _cached_splits(self) -> dict[int, list] | None:
        """This path's split cache, or None when caching must not apply.

        Chaos runs bypass the cache so every load actually exercises the
        injected fault sites; a signature mismatch drops the stale entry.
        """
        if self.context.fault_injector is not None:
            return None
        with _CACHE_LOCK:
            entry = _INDEX_CACHE.get(self._cache_key)
            if entry is not None and entry[0] == self._signature:
                return entry[1]
            splits: dict[int, list] = {}
            _INDEX_CACHE[self._cache_key] = (self._signature, splits)
            return splits

    def compute(self, split: int) -> Iterator[STRTree]:
        cache = self._cached_splits()
        if cache is not None:
            with _CACHE_LOCK:
                cached = cache.get(split)
            if cached is not None:
                self.context.metrics.index_cache_hits += 1
                if self.context.tracer.enabled:
                    self.context.tracer.add("index.cache_hits", 1)
                return iter(cached)
        part = os.path.join(self._path, self._parts[split])
        try:
            injector = self.context.fault_injector
            if injector is not None:
                injector.check("index.load", key=(part, split))
            trees = storage.read_object_part(part)
        except Exception as exc:
            # Rebuilt partitions stay uncached: the rebuild is the
            # fault-handling path and must re-run on every load.
            return iter(self._rebuild_live(split, part, exc))
        if cache is not None:
            with _CACHE_LOCK:
                cache[split] = trees
        return iter(trees)

    def _rebuild_live(self, split: int, part: str, cause: Exception) -> list[STRTree]:
        """Build the partition's trees from the recovery sidecar."""
        entry_lists = self._load_recovery_entries(split)
        if entry_lists is None:
            if isinstance(cause, StorageError):
                raise cause
            raise StorageError(
                f"unreadable index part {part!r} and no recovery data: {cause}"
            ) from cause
        self.context.metrics.index_fallbacks += 1
        self.fallbacks.append(split)
        tracer = self.context.tracer
        if tracer.enabled:
            with tracer.span(
                "index.fallback",
                split=split,
                path=part,
                entries=sum(len(entries) for entries in entry_lists),
            ):
                return self._build_trees(entry_lists)
        return self._build_trees(entry_lists)

    def _build_trees(self, entry_lists: list[list]) -> list[STRTree]:
        return [
            STRTree(entries, node_capacity=self._order) for entries in entry_lists
        ]

    def _load_recovery_entries(self, split: int) -> list[list] | None:
        """The sidecar's entry lists for *split*, or None if unavailable."""
        if self._data_dir is None:
            return None
        data_part = os.path.join(self._data_dir, f"part-{split:05d}.pkl")
        if not os.path.exists(data_part):
            return None
        try:
            rows = storage.read_object_part(data_part)
        except StorageError:
            return None  # sidecar damaged too; nothing left to recover from
        return rows[0] if rows else []


def load_index(
    context: "SparkContext", path: str
) -> tuple[RDD, object, list | None, str | None]:
    """Load a persisted index: (trees, partitioner, temporal extents, mode).

    Damage is absorbed where possible: corrupt metadata degrades to an
    unpartitioned load with pruning disabled (recorded on the trace as
    ``index.meta_fallback`` and in ``metrics.index_fallbacks``), and
    corrupt tree parts rebuild live per partition (see
    :class:`ResilientIndexRDD`).  The temporal extents are ``None`` for
    pre-extent layouts; they can always be recomputed from the trees.
    """
    try:
        meta = _read_meta(path)
    except StorageError:
        # Pruning metadata is an optimization; queries stay exact
        # without it, so a damaged meta file must not block the load.
        meta = {}
        context.metrics.index_fallbacks += 1
        if context.tracer.enabled:
            with context.tracer.span(
                "index.meta_fallback", path=os.path.join(path, _META_FILE)
            ):
                pass
    rdd = ResilientIndexRDD(context, path, order=meta.get("order"))
    extents = meta.get("temporal_extents")
    if extents is not None and len(extents) != rdd.num_partitions:
        extents = None  # stale metadata; pruning must stay conservative
    return rdd, meta.get("partitioner"), extents, meta.get("mode")
