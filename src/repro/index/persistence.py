"""Persistent indexing: save and reload per-partition R-trees.

Reproduces the paper's third indexing mode (section 2.2): an indexed
RDD -- an RDD whose elements are partition-local STR-trees -- is written
as binary objects ("using Spark's method to save binary objects") and
can be loaded by the same or another program without rebuilding.

The partitioner metadata is stored alongside the trees so a reloaded
index keeps its partition-pruning ability.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING

from repro.spark.rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext

_META_FILE = "_index_meta.pkl"


def save_index(indexed_rdd: RDD, path: str, partitioner=None) -> None:
    """Persist an RDD of per-partition index trees plus its partitioner."""
    indexed_rdd.save_as_object_file(path)
    with open(os.path.join(path, _META_FILE), "wb") as f:
        pickle.dump({"partitioner": partitioner}, f, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(context: "SparkContext", path: str) -> tuple[RDD, object]:
    """Load a persisted index: (RDD of trees, partitioner-or-None)."""
    rdd = context.object_file(path)
    partitioner = None
    meta_path = os.path.join(path, _META_FILE)
    if os.path.exists(meta_path):
        with open(meta_path, "rb") as f:
            partitioner = pickle.load(f).get("partitioner")
    return rdd, partitioner
