"""Deterministic fault injection for the execution stack.

A :class:`FaultInjector` installed on a :class:`~repro.spark.context.
SparkContext` makes instrumented sites raise :class:`InjectedFault`
according to a seeded, reproducible plan.  The instrumented sites are:

===================  ====================================================
site                 fires in
===================  ====================================================
``task.compute``     the scheduler, once per task attempt
``shuffle.fetch``    ``_ShuffleManager.fetch`` (reduce-side fetch)
``cache.get``        ``RDD.iterator`` before consulting the block cache
``storage.read``     ``ObjectFileRDD`` / ``TextFileRDD`` part reads
``storage.write``    ``save_object_file`` / ``save_text_file`` part writes
``index.load``       persisted-index part reads (triggers live fallback)
===================  ====================================================

Two plan shapes exist per site:

- **fail-N-times-then-succeed** (``times=N``): the first N checks raise,
  later ones pass.  With ``per_key=True`` (the default) the count is kept
  per call-site key -- e.g. per ``(rdd_id, split)`` for ``task.compute``
  -- which is how "fail every task's first attempt" is expressed.
- **probabilistic** (``probability=p``): each check raises with
  probability *p*, drawn from the injector's seeded RNG.  Deterministic
  under the ``sequential`` executor; under ``threads`` the draw order
  depends on scheduling.

Env wiring for the benchmark suite (``REPRO_CHAOS_*``)::

    REPRO_CHAOS_SEED=7
    REPRO_CHAOS_SITES="task.compute=1x,storage.read=0.05"

where ``Nx`` means fail the first N checks per key and a float in
``(0, 1]`` is a per-check probability.  :meth:`FaultInjector.from_env`
parses these; the benchmark conftest installs the result on its context.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Hashable, Iterator

#: The names an injection plan may target.
SITES = frozenset(
    {
        "task.compute",
        "shuffle.fetch",
        "cache.get",
        "storage.read",
        "storage.write",
        "index.load",
    }
)


class InjectedFault(RuntimeError):
    """The synthetic failure an injection plan raises."""

    def __init__(self, site: str, key: Hashable = None) -> None:
        self.site = site
        self.key = key
        detail = f" key={key!r}" if key is not None else ""
        super().__init__(f"injected fault at {site}{detail}")


class _Rule:
    """One injection plan for one site."""

    __slots__ = ("site", "times", "probability", "per_key", "_counts")

    def __init__(
        self,
        site: str,
        times: int | None,
        probability: float | None,
        per_key: bool,
    ) -> None:
        self.site = site
        self.times = times
        self.probability = probability
        self.per_key = per_key
        self._counts: dict[Hashable, int] = {}

    def should_fire(self, key: Hashable, rng: random.Random) -> bool:
        if self.times is not None:
            bucket = key if self.per_key else None
            count = self._counts.get(bucket, 0) + 1
            self._counts[bucket] = count
            return count <= self.times
        return rng.random() < (self.probability or 0.0)

    def reset(self) -> None:
        self._counts.clear()


class FaultInjector:
    """A seeded, installable source of deterministic failures.

    Usage::

        injector = FaultInjector(seed=7).fail("task.compute", times=1)
        with injector.installed(sc):
            result = rdd.collect()      # every task fails once, retries succeed
        assert injector.injected["task.compute"] > 0

    Thread-safe: counters and the RNG are guarded by a lock, so plans
    behave identically under the thread-pool executor (modulo draw order
    for probabilistic plans).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: dict[str, list[_Rule]] = {}
        self._lock = threading.Lock()
        #: site -> number of faults actually raised.
        self.injected: dict[str, int] = {}
        #: site -> number of check() calls observed.
        self.checked: dict[str, int] = {}

    # -- plan construction -------------------------------------------------

    def fail(
        self,
        site: str,
        *,
        times: int | None = None,
        probability: float | None = None,
        per_key: bool = True,
    ) -> "FaultInjector":
        """Register a plan at *site*; returns self for chaining.

        Exactly one of ``times`` (fail the first N checks, counted per
        key by default) or ``probability`` (independent per-check draw)
        must be given.
        """
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}; known: {sorted(SITES)}")
        if (times is None) == (probability is None):
            raise ValueError("exactly one of times= or probability= is required")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if probability is not None and not (0.0 < probability <= 1.0):
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        with self._lock:
            self._rules.setdefault(site, []).append(
                _Rule(site, times, probability, per_key)
            )
        return self

    # -- the hook the engine calls ----------------------------------------

    def check(self, site: str, key: Hashable = None) -> None:
        """Raise :class:`InjectedFault` if a plan at *site* fires."""
        with self._lock:
            self.checked[site] = self.checked.get(site, 0) + 1
            for rule in self._rules.get(site, ()):
                if rule.should_fire(key, self._rng):
                    self.injected[site] = self.injected.get(site, 0) + 1
                    raise InjectedFault(site, key)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Rewind counters and the RNG; plans stay registered."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.injected.clear()
            self.checked.clear()
            for rules in self._rules.values():
                for rule in rules:
                    rule.reset()

    def clear(self) -> None:
        """Drop every plan (and counters)."""
        with self._lock:
            self._rules.clear()
            self.injected.clear()
            self.checked.clear()

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-site ``{"checked": n, "injected": m}`` counts."""
        with self._lock:
            sites = set(self.checked) | set(self.injected)
            return {
                site: {
                    "checked": self.checked.get(site, 0),
                    "injected": self.injected.get(site, 0),
                }
                for site in sorted(sites)
            }

    @contextmanager
    def installed(self, context) -> Iterator["FaultInjector"]:
        """Install on *context* for the duration of the ``with`` block."""
        previous = context.fault_injector
        context.fault_injector = self
        try:
            yield self
        finally:
            context.fault_injector = previous

    # -- env wiring --------------------------------------------------------

    @classmethod
    def from_env(cls, env: dict | None = None) -> "FaultInjector | None":
        """Build an injector from ``REPRO_CHAOS_*`` variables, or None.

        ``REPRO_CHAOS_SITES`` is a comma-separated list of ``site=spec``
        where spec is ``Nx`` (fail first N per key) or a float
        probability; ``REPRO_CHAOS_SEED`` seeds the RNG (default 0).
        """
        env = os.environ if env is None else env
        spec = env.get("REPRO_CHAOS_SITES", "").strip()
        if not spec:
            return None
        injector = cls(seed=int(env.get("REPRO_CHAOS_SEED", "0")))
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            site, _, value = clause.partition("=")
            site, value = site.strip(), value.strip()
            if not value:
                raise ValueError(f"malformed REPRO_CHAOS_SITES clause {clause!r}")
            if value.endswith(("x", "X")):
                injector.fail(site, times=int(value[:-1]))
            else:
                injector.fail(site, probability=float(value))
        return injector

    def __repr__(self) -> str:
        plans = {site: len(rules) for site, rules in self._rules.items()}
        return f"FaultInjector(seed={self.seed}, plans={plans})"


@contextmanager
def inject(context, injector: FaultInjector) -> Iterator[FaultInjector]:
    """Module-level alias for ``injector.installed(context)``."""
    with injector.installed(context) as installed:
        yield installed
