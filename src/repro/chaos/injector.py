"""Deterministic fault injection for the execution stack.

A :class:`FaultInjector` installed on a :class:`~repro.spark.context.
SparkContext` makes instrumented sites raise :class:`InjectedFault`
according to a seeded, reproducible plan.  The instrumented sites are:

===================  ====================================================
site                 fires in
===================  ====================================================
``task.compute``     the scheduler, once per task attempt
``shuffle.fetch``    ``_ShuffleManager.fetch`` (reduce-side fetch)
``cache.get``        ``RDD.iterator`` before consulting the block cache
``storage.read``     ``ObjectFileRDD`` / ``TextFileRDD`` part reads
``storage.write``    ``save_object_file`` / ``save_text_file`` part writes
``index.load``       persisted-index part reads (triggers live fallback)
``source.poll``      ``StreamingContext`` polling a stream source
``batch.run``        ``StreamingContext`` before processing a micro-batch
``state.update``     keyed streaming state, before a batch is absorbed
``wal.append``       checkpointing, before a batch is journaled to the WAL
``checkpoint.write`` checkpointing, before an atomic state snapshot
``recovery.load``    ``StreamingContext.restore``, before any state loads
``sink.write``       ``WindowSink``, before a window's target is written
``state.spill``      ``KeyedStateStore``, before a cold cell spills to disk
===================  ====================================================

Two plan shapes exist per site:

- **fail-N-times-then-succeed** (``times=N``): the first N checks raise,
  later ones pass.  With ``per_key=True`` (the default) the count is kept
  per call-site key -- e.g. per ``(rdd_id, split)`` for ``task.compute``
  -- which is how "fail every task's first attempt" is expressed.
- **probabilistic** (``probability=p``): each check raises with
  probability *p*, drawn from the injector's seeded RNG.  Deterministic
  under the ``sequential`` executor; under ``threads`` the draw order
  depends on scheduling.

And three fault *kinds*, each combinable with either shape:

- **crash** (:meth:`FaultInjector.fail`): the site raises
  :class:`InjectedFault` -- the fail-fast fault the retry layer recovers.
- **delay** (:meth:`FaultInjector.delay`): the site stalls for a fixed
  number of seconds before continuing normally -- a straggler.  The stall
  is a *cancellable* sleep: a task whose deadline expires (or that loses
  a speculation race) wakes immediately instead of serving the delay out.
- **hang** (:meth:`FaultInjector.hang`): the site blocks "forever" -- the
  gray failure the deadline/speculation machinery exists for.  The hang
  waits on the current task's cancel token, so a ``task_timeout``,
  speculation loss or ``cancel_all_jobs()`` ends it; the injector's
  ``hang_limit`` (default 30s) is a backstop for runs with no deadlines
  configured, after which the "hung" site simply resumes.

Env wiring for the benchmark suite (``REPRO_CHAOS_*``)::

    REPRO_CHAOS_SEED=7
    REPRO_CHAOS_SITES="task.compute=1x,storage.read=0.05"
    REPRO_CHAOS_SITES="task.compute=2x:delay=0.5,shuffle.fetch=1x:hang"

where ``Nx`` means fire on the first N checks per key and a float in
``(0, 1]`` is a per-check probability; a bare spec is a crash fault,
``:delay=S`` makes it an S-second delay and ``:hang`` a hang.
:meth:`FaultInjector.from_env` parses these; the benchmark conftest
installs the result on its context.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Hashable, Iterator

from repro.spark.cancellation import cancellable_sleep, wait_cancelled

#: The names an injection plan may target.
SITES = frozenset(
    {
        "task.compute",
        "shuffle.fetch",
        "cache.get",
        "storage.read",
        "storage.write",
        "index.load",
        "source.poll",
        "batch.run",
        "state.update",
        "wal.append",
        "checkpoint.write",
        "recovery.load",
        "sink.write",
        "state.spill",
    }
)


class InjectedFault(RuntimeError):
    """The synthetic failure an injection plan raises."""

    def __init__(self, site: str, key: Hashable = None) -> None:
        self.site = site
        self.key = key
        detail = f" key={key!r}" if key is not None else ""
        super().__init__(f"injected fault at {site}{detail}")

    def __reduce__(self):
        # Default exception pickling would replay the formatted message
        # as ``site``; workers ship these home, so round-trip properly.
        return (InjectedFault, (self.site, self.key))


class _Rule:
    """One injection plan for one site."""

    __slots__ = ("site", "times", "probability", "per_key", "kind", "delay", "_counts")

    def __init__(
        self,
        site: str,
        times: int | None,
        probability: float | None,
        per_key: bool,
        kind: str = "fail",
        delay: float = 0.0,
    ) -> None:
        self.site = site
        self.times = times
        self.probability = probability
        self.per_key = per_key
        #: ``"fail"`` raises, ``"delay"`` stalls ``delay`` seconds,
        #: ``"hang"`` blocks until cancelled (or the injector's backstop).
        self.kind = kind
        self.delay = delay
        self._counts: dict[Hashable, int] = {}

    def should_fire(self, key: Hashable, rng: random.Random) -> bool:
        if self.times is not None:
            bucket = key if self.per_key else None
            count = self._counts.get(bucket, 0) + 1
            self._counts[bucket] = count
            return count <= self.times
        return rng.random() < (self.probability or 0.0)

    def reset(self) -> None:
        self._counts.clear()


class FaultInjector:
    """A seeded, installable source of deterministic failures.

    Usage::

        injector = FaultInjector(seed=7).fail("task.compute", times=1)
        with injector.installed(sc):
            result = rdd.collect()      # every task fails once, retries succeed
        assert injector.injected["task.compute"] > 0

    Thread-safe: counters and the RNG are guarded by a lock, so plans
    behave identically under the thread-pool executor (modulo draw order
    for probabilistic plans).
    """

    def __init__(self, seed: int = 0, hang_limit: float = 30.0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: dict[str, list[_Rule]] = {}
        self._lock = threading.Lock()
        #: Backstop for ``hang`` faults in runs with no deadlines: the
        #: "infinite" stall gives up after this many seconds.
        self.hang_limit = hang_limit
        #: site -> number of faults actually raised.
        self.injected: dict[str, int] = {}
        #: site -> number of check() calls observed.
        self.checked: dict[str, int] = {}
        #: site -> number of delay faults served.
        self.delayed: dict[str, int] = {}
        #: site -> number of hang faults served.
        self.hung: dict[str, int] = {}

    # -- plan construction -------------------------------------------------

    def _add_rule(
        self,
        site: str,
        times: int | None,
        probability: float | None,
        per_key: bool,
        kind: str,
        delay: float,
    ) -> "FaultInjector":
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}; known: {sorted(SITES)}")
        if (times is None) == (probability is None):
            raise ValueError("exactly one of times= or probability= is required")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if probability is not None and not (0.0 < probability <= 1.0):
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        with self._lock:
            self._rules.setdefault(site, []).append(
                _Rule(site, times, probability, per_key, kind, delay)
            )
        return self

    def fail(
        self,
        site: str,
        *,
        times: int | None = None,
        probability: float | None = None,
        per_key: bool = True,
    ) -> "FaultInjector":
        """Register a crash plan at *site*; returns self for chaining.

        Exactly one of ``times`` (fail the first N checks, counted per
        key by default) or ``probability`` (independent per-check draw)
        must be given.
        """
        return self._add_rule(site, times, probability, per_key, "fail", 0.0)

    def delay(
        self,
        site: str,
        seconds: float,
        *,
        times: int | None = None,
        probability: float | None = None,
        per_key: bool = True,
    ) -> "FaultInjector":
        """Register a straggler plan: *site* stalls *seconds*, then proceeds.

        The stall is served through :func:`cancellable_sleep`, so a
        deadline or speculation loss wakes the stalled task immediately.
        """
        if seconds <= 0:
            raise ValueError(f"delay seconds must be positive, got {seconds}")
        return self._add_rule(site, times, probability, per_key, "delay", seconds)

    def hang(
        self,
        site: str,
        *,
        times: int | None = None,
        probability: float | None = None,
        per_key: bool = True,
    ) -> "FaultInjector":
        """Register a hang plan: *site* blocks until cancelled.

        The block waits on the current task's cancel token (see
        :func:`wait_cancelled`); ``hang_limit`` caps it as a backstop
        when no deadline machinery is configured.
        """
        return self._add_rule(site, times, probability, per_key, "hang", 0.0)

    # -- the hook the engine calls ----------------------------------------

    def check(self, site: str, key: Hashable = None) -> None:
        """Fire the first matching plan at *site*: raise, stall or hang.

        The firing decision (counters + RNG) happens under the injector
        lock; the stall itself is served *outside* it, so a delayed or
        hung task never blocks other tasks' fault checks.
        """
        slow: _Rule | None = None
        with self._lock:
            self.checked[site] = self.checked.get(site, 0) + 1
            for rule in self._rules.get(site, ()):
                if not rule.should_fire(key, self._rng):
                    continue
                if rule.kind == "fail":
                    self.injected[site] = self.injected.get(site, 0) + 1
                    raise InjectedFault(site, key)
                if rule.kind == "delay":
                    self.delayed[site] = self.delayed.get(site, 0) + 1
                else:
                    self.hung[site] = self.hung.get(site, 0) + 1
                slow = rule
                break
        if slow is None:
            return
        if slow.kind == "delay":
            cancellable_sleep(slow.delay)
        else:
            wait_cancelled(self.hang_limit)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Rewind counters and the RNG; plans stay registered."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.injected.clear()
            self.checked.clear()
            self.delayed.clear()
            self.hung.clear()
            for rules in self._rules.values():
                for rule in rules:
                    rule.reset()

    def clear(self) -> None:
        """Drop every plan (and counters)."""
        with self._lock:
            self._rules.clear()
            self.injected.clear()
            self.checked.clear()
            self.delayed.clear()
            self.hung.clear()

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-site ``{"checked": n, "injected": m}`` counts.

        Sites that served slow faults additionally report ``delayed``
        and/or ``hung`` (omitted when zero, so crash-only runs keep the
        two-key shape).
        """
        with self._lock:
            sites = set(self.checked) | set(self.injected) | set(self.delayed) | set(self.hung)
            out: dict[str, dict[str, int]] = {}
            for site in sorted(sites):
                entry = {
                    "checked": self.checked.get(site, 0),
                    "injected": self.injected.get(site, 0),
                }
                if self.delayed.get(site):
                    entry["delayed"] = self.delayed[site]
                if self.hung.get(site):
                    entry["hung"] = self.hung[site]
                out[site] = entry
            return out

    @contextmanager
    def installed(self, context) -> Iterator["FaultInjector"]:
        """Install on *context* for the duration of the ``with`` block."""
        previous = context.fault_injector
        context.fault_injector = self
        try:
            yield self
        finally:
            context.fault_injector = previous

    # -- env wiring --------------------------------------------------------

    @classmethod
    def from_env(cls, env: dict | None = None) -> "FaultInjector | None":
        """Build an injector from ``REPRO_CHAOS_*`` variables, or None.

        ``REPRO_CHAOS_SITES`` is a comma-separated list of
        ``site=spec[:modifier]`` clauses.  The spec is ``Nx`` (fire on
        the first N checks per key) or a float probability; without a
        modifier the fault is a crash, ``:delay=S`` makes it an
        S-second stall and ``:hang`` a hang.  ``REPRO_CHAOS_SEED``
        seeds the RNG (default 0).  Examples::

            task.compute=1x              # every task's 1st attempt crashes
            task.compute=2x:delay=0.5    # first 2 attempts stall 0.5s
            shuffle.fetch=0.05:hang      # 5% of fetches hang
        """
        env = os.environ if env is None else env
        spec = env.get("REPRO_CHAOS_SITES", "").strip()
        if not spec:
            return None
        injector = cls(seed=int(env.get("REPRO_CHAOS_SEED", "0")))
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            site, _, value = clause.partition("=")
            site, value = site.strip(), value.strip()
            if not value:
                raise ValueError(f"malformed REPRO_CHAOS_SITES clause {clause!r}")
            value, _, modifier = value.partition(":")
            value, modifier = value.strip(), modifier.strip()
            shape: dict = (
                {"times": int(value[:-1])}
                if value.endswith(("x", "X"))
                else {"probability": float(value)}
            )
            if not modifier:
                injector.fail(site, **shape)
            elif modifier == "hang":
                injector.hang(site, **shape)
            elif modifier.startswith("delay="):
                injector.delay(site, float(modifier[len("delay="):]), **shape)
            else:
                raise ValueError(
                    f"malformed REPRO_CHAOS_SITES modifier {modifier!r} in "
                    f"{clause!r}; expected 'delay=<seconds>' or 'hang'"
                )
        return injector

    def __repr__(self) -> str:
        plans = {site: len(rules) for site, rules in self._rules.items()}
        return f"FaultInjector(seed={self.seed}, plans={plans})"

    # -- worker-process replay ---------------------------------------------

    def worker_spec(self) -> dict:
        """A plain-data description of the plan for worker processes.

        The driver ships this with every task's metadata; the worker
        builds a :class:`WorkerFaultInjector` from it so fault plans
        replay deterministically inside workers without sharing this
        object's counters across process boundaries.
        """
        with self._lock:
            rules = [
                {
                    "site": rule.site,
                    "times": rule.times,
                    "probability": rule.probability,
                    "per_key": rule.per_key,
                    "kind": rule.kind,
                    "delay": rule.delay,
                }
                for site_rules in self._rules.values()
                for rule in site_rules
            ]
        return {"seed": self.seed, "hang_limit": self.hang_limit, "rules": rules}

    def merge_worker_stats(self, stats: dict[str, dict[str, int]]) -> None:
        """Fold a worker attempt's fault counters into this injector's.

        Called by the driver for every attempt outcome (accepted or
        not): the faults *were* served, so tests asserting on
        ``injected``/``checked`` see one coherent account.
        """
        with self._lock:
            for name in ("injected", "checked", "delayed", "hung"):
                mine = getattr(self, name)
                for site, count in stats.get(name, {}).items():
                    mine[site] = mine.get(site, 0) + count


class WorkerFaultInjector:
    """Replays a :meth:`FaultInjector.worker_spec` plan inside a worker.

    Determinism across retries is the point: the driver-side injector
    counts checks cumulatively (attempt 1 is a key's first check,
    attempt 2 its second, ...), but each worker attempt starts fresh.
    This class substitutes the *attempt number* for history: a
    ``times=N`` rule fires iff ``(attempt - 1) + within-attempt count``
    is still ``<= N``, and probabilistic rules hash ``(seed, site, key,
    attempt, rule, count)`` into a fresh RNG -- so a replayed attempt
    makes exactly the same draws no matter which worker runs it, and a
    *retry* (higher attempt number) advances the plan exactly like a
    driver-side recheck would.  ``per_key=False`` plans share one
    global counter on the driver; here the attempt-based reconstruction
    is per task, a documented approximation (site checks from *other*
    concurrent tasks are invisible to this worker).

    Slow faults are served with plain ``time.sleep``: worker processes
    have no cooperative cancel tokens -- the driver's deadline machinery
    kills the whole process instead (see
    :mod:`repro.spark.cancellation`).
    """

    is_worker_side = True

    def __init__(self, spec: dict, attempt: int) -> None:
        self.seed = spec["seed"]
        self.hang_limit = spec["hang_limit"]
        self._spec_rules = spec["rules"]
        self.attempt = attempt
        self._counts: dict[tuple, int] = {}
        self.injected: dict[str, int] = {}
        self.checked: dict[str, int] = {}
        self.delayed: dict[str, int] = {}
        self.hung: dict[str, int] = {}

    def _should_fire(self, idx: int, rule: dict, key: Hashable) -> bool:
        bucket = (idx, key if rule["per_key"] else None)
        count = self._counts.get(bucket, 0) + 1
        self._counts[bucket] = count
        if rule["times"] is not None:
            return (self.attempt - 1) + count <= rule["times"]
        rng = random.Random(
            (self.seed, rule["site"], repr(key), self.attempt, idx, count)
        )
        return rng.random() < rule["probability"]

    def check(self, site: str, key: Hashable = None) -> None:
        """Same contract as :meth:`FaultInjector.check`."""
        self.checked[site] = self.checked.get(site, 0) + 1
        for idx, rule in enumerate(self._spec_rules):
            if rule["site"] != site or not self._should_fire(idx, rule, key):
                continue
            if rule["kind"] == "fail":
                self.injected[site] = self.injected.get(site, 0) + 1
                raise InjectedFault(site, key)
            if rule["kind"] == "delay":
                self.delayed[site] = self.delayed.get(site, 0) + 1
                time.sleep(rule["delay"])
            else:
                self.hung[site] = self.hung.get(site, 0) + 1
                time.sleep(self.hang_limit)
            return

    def stats(self) -> dict[str, dict[str, int]]:
        """The counters to ship home for :meth:`merge_worker_stats`."""
        return {
            "injected": dict(self.injected),
            "checked": dict(self.checked),
            "delayed": dict(self.delayed),
            "hung": dict(self.hung),
        }


@contextmanager
def inject(context, injector: FaultInjector) -> Iterator[FaultInjector]:
    """Module-level alias for ``injector.installed(context)``."""
    with injector.installed(context) as installed:
        yield installed
