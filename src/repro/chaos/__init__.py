"""Chaos engineering: deterministic fault injection for the engine.

The robustness counterpart of :mod:`repro.obs`: where the tracer shows
what an execution *did*, the injector proves what it *survives*.  See
:mod:`repro.chaos.injector` for the site list and plan shapes, and the
README's "Fault tolerance & chaos testing" section for a worked example.
"""

from repro.chaos.crash import CrashHarness, SimulatedCrash, crash_points
from repro.chaos.injector import SITES, FaultInjector, InjectedFault, inject

__all__ = [
    "SITES",
    "FaultInjector",
    "InjectedFault",
    "inject",
    "CrashHarness",
    "SimulatedCrash",
    "crash_points",
]
