"""Crash simulation: kill the process between any two fsyncs.

Fault injection (:mod:`repro.chaos.injector`) models *failures the code
observes* -- an exception at an instrumented site.  Checkpointing needs
a harsher adversary: a process that simply stops existing between two
durability barriers, leaving whatever the filesystem happened to
persist.  This module provides that adversary without actually forking
and killing processes: every fsync in the storage layer (and everything
built on it -- the streaming WAL, checkpoint commits, durable sinks)
routes through the hook installed by
:func:`repro.spark.storage.set_fsync_hook`, and a :class:`CrashHarness`
raises :class:`SimulatedCrash` at a chosen fsync ordinal.

Because all in-memory state is abandoned when the harness fires (the
test discards the crashed contexts and builds fresh ones), the surviving
observable state is exactly what a kill at that barrier would leave:
bytes fsynced before the ordinal are durable, bytes after it are not.
A loop over every ordinal -- :func:`crash_points` counts them --
is therefore a kill-between-any-two-fsyncs matrix for free.

:class:`SimulatedCrash` derives from :class:`SystemExit` on purpose:
every retry envelope in the engine (task retries, batch retries, the
streaming loop) re-raises ``SystemExit`` instead of swallowing it, so a
simulated kill tears through the stack the way a real one would, without
any crash-aware branches in production code.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.spark import storage as _storage


class SimulatedCrash(SystemExit):
    """The process "died" at a durability barrier (see module docstring)."""

    def __init__(self, ordinal: int, label: str) -> None:
        self.ordinal = ordinal
        self.label = label
        super().__init__(f"simulated crash at fsync #{ordinal} ({label})")


class CrashHarness:
    """Raises :class:`SimulatedCrash` at the Nth fsync the run performs.

    Usage::

        harness = CrashHarness(at=3)
        with harness.installed():
            drive_stream()          # raises SimulatedCrash at fsync #3
        assert harness.crashed

    ``at=None`` never crashes and just counts -- that is how a test
    discovers how many barriers a scenario crosses before iterating
    over every ordinal.  Thread-safe: the counter is shared across the
    poller/processor threads of a started stream.
    """

    def __init__(self, at: int | None = None) -> None:
        if at is not None and at < 1:
            raise ValueError(f"crash ordinal must be >= 1, got {at}")
        self.at = at
        #: fsyncs observed so far.
        self.count = 0
        #: Label of every fsync observed, in order (diagnostics).
        self.labels: list[str] = []
        #: True once the harness fired.
        self.crashed = False
        self._lock = threading.Lock()

    def __call__(self, label: str) -> None:
        """The hook body: count, and crash at the configured ordinal."""
        with self._lock:
            self.count += 1
            self.labels.append(label)
            ordinal = self.count
        if self.at is not None and ordinal == self.at:
            self.crashed = True
            raise SimulatedCrash(ordinal, label)

    @contextmanager
    def installed(self) -> Iterator["CrashHarness"]:
        """Install as the storage fsync hook for the ``with`` block."""
        previous = _storage.set_fsync_hook(self)
        try:
            yield self
        finally:
            _storage.set_fsync_hook(previous)


def crash_points(run: Callable[[], None]) -> int:
    """How many fsync barriers *run* crosses (the kill-matrix size).

    Executes *run* once under a counting-only harness and returns the
    number of fsyncs observed; a crash-matrix test then repeats the
    scenario with ``CrashHarness(at=i)`` for every ``i`` in
    ``range(1, crash_points(run) + 1)``.
    """
    harness = CrashHarness(at=None)
    with harness.installed():
        run()
    return harness.count
