"""The one-shot evaluation report: every reproduced experiment, one run.

:func:`generate_report` executes a compact version of the full
benchmark suite (Figure 4, the feature table, the spatialbm micro
benchmarks and the ablations) and renders the results as plain text --
the "More results of the performance evaluation" companion the paper
keeps in its GitHub repository.

Entry point: ``python benchmarks/run_report.py [--scale small|medium]``.
"""

from __future__ import annotations

import os

from repro.baselines import GeoSparkStyle, SpatialSparkStyle
from repro.core import filter as filter_ops
from repro.core.clustering import dbscan, local_dbscan
from repro.core.join import spatial_join
from repro.core.knn import knn
from repro.core.predicates import CONTAINED_BY, INTERSECTS
from repro.core.spatial_rdd import spatial
from repro.core.stobject import STObject
from repro.evaluation.features import render_feature_table
from repro.evaluation.harness import render_table, time_call
from repro.io.datagen import clustered_points, timed_stobjects, world_events
from repro.partitioners.bsp import BSPartitioner
from repro.partitioners.grid import GridPartitioner
from repro.spark.context import SparkContext

SCALES = {
    "small": {"join": 3_000, "filter": 8_000, "cluster": 1_500},
    "medium": {"join": 10_000, "filter": 20_000, "cluster": 4_000},
    "large": {"join": 40_000, "filter": 80_000, "cluster": 15_000},
}


def _fmt(result) -> str:
    return f"{result.best:.3f}s"


def _figure4(sc: SparkContext, n: int, repeats: int) -> str:
    points = clustered_points(n, num_clusters=10, seed=1704)
    rdd = sc.parallelize([(STObject(p), i) for i, p in enumerate(points)], 8).persist()
    rdd.count()
    bsp = BSPartitioner.from_rdd(rdd, max_cost_per_partition=max(64, n // 16))
    partitioned = rdd.partition_by(bsp).persist()
    partitioned.count()

    geospark, spatialspark = GeoSparkStyle(), SpatialSparkStyle()
    rows = [
        [
            "GeoSpark",
            "N/A",
            _fmt(
                time_call(
                    lambda: geospark.spatial_join(
                        rdd, rdd, INTERSECTS, "voronoi", 16
                    ).count(),
                    repeats=repeats,
                )
            )
            + " (Voronoi)",
        ],
        [
            "SpatialSpark",
            _fmt(
                time_call(
                    lambda: spatialspark.broadcast_join(rdd, rdd, INTERSECTS).count(),
                    repeats=repeats,
                )
            ),
            _fmt(
                time_call(
                    lambda: spatialspark.tile_join(rdd, rdd, INTERSECTS, 16).count(),
                    repeats=repeats,
                )
            )
            + " (Tile)",
        ],
        [
            "STARK",
            _fmt(
                time_call(
                    lambda: spatial_join(rdd, rdd, INTERSECTS).count(),
                    repeats=repeats,
                )
            ),
            _fmt(
                time_call(
                    lambda: spatial_join(partitioned, partitioned, INTERSECTS).count(),
                    repeats=repeats,
                )
            )
            + " (BSP)",
        ],
    ]
    return render_table(
        ["system", "no partitioning", "best partitioner"],
        rows,
        title=f"Figure 4: self-join on {n:,} clustered points "
        "(paper: GeoSpark N/A / 51.9s; SpatialSpark 31.1 / 95.9s; STARK 19.8 / 6.3s)",
    )


def _filter_suite(sc: SparkContext, n: int, repeats: int) -> str:
    objs = list(
        timed_stobjects(clustered_points(n, num_clusters=12, seed=1705), seed=1705)
    )
    rdd = sc.parallelize([(o, i) for i, o in enumerate(objs)], 8).persist()
    rdd.count()
    query = STObject(
        "POLYGON ((100 100, 350 100, 350 350, 100 350, 100 100))", 0, 1_000_000
    )
    bsp = BSPartitioner.from_rdd(rdd, max_cost_per_partition=max(64, n // 16))
    partitioned = rdd.partition_by(bsp).persist()
    partitioned.count()
    indexed = spatial(partitioned).index(order=10)
    indexed.intersects(query).count()

    rows = [
        [
            "scan, no partitioning",
            _fmt(time_call(lambda: filter_ops.filter_no_index(rdd, query, CONTAINED_BY).count(), repeats=repeats)),
        ],
        [
            "scan, BSP (pruned)",
            _fmt(time_call(lambda: filter_ops.filter_no_index(partitioned, query, CONTAINED_BY).count(), repeats=repeats)),
        ],
        [
            "live index, BSP",
            _fmt(time_call(lambda: filter_ops.filter_live_index(partitioned, query, CONTAINED_BY).count(), repeats=repeats)),
        ],
        [
            "persistent index, BSP",
            _fmt(time_call(lambda: indexed.contained_by(query).count(), repeats=repeats)),
        ],
    ]
    return render_table(
        ["configuration", "time"],
        rows,
        title=f"spatialbm filter: containedBy window over {n:,} timed events",
    )


def _knn_suite(sc: SparkContext, n: int, repeats: int) -> str:
    pts = clustered_points(n, num_clusters=10, seed=1707)
    rdd = sc.parallelize([(STObject(p), i) for i, p in enumerate(pts)], 8).persist()
    rdd.count()
    bsp = BSPartitioner.from_rdd(rdd, max_cost_per_partition=max(64, n // 16))
    partitioned = rdd.partition_by(bsp).persist()
    partitioned.count()
    query = STObject("POINT (500 500)")
    rows = []
    for k in (1, 10, 100):
        rows.append(
            [
                str(k),
                _fmt(time_call(lambda: knn(rdd, query, k), repeats=repeats)),
                _fmt(time_call(lambda: knn(partitioned, query, k), repeats=repeats)),
            ]
        )
    return render_table(
        ["k", "full scan", "two-phase (BSP)"],
        rows,
        title=f"spatialbm kNN over {n:,} points",
    )


def _clustering_suite(sc: SparkContext, n: int, repeats: int) -> str:
    pts = clustered_points(n, num_clusters=6, seed=1708, noise_fraction=0.05)
    coords = [(p.x, p.y) for p in pts]
    rdd = sc.parallelize([(STObject(p), i) for i, p in enumerate(pts)], 8).persist()
    rdd.count()
    eps, min_pts = 12.0, 5
    rows = [
        [
            "sequential reference",
            _fmt(time_call(lambda: local_dbscan(coords, eps, min_pts), repeats=repeats)),
        ],
        [
            "MR-DBSCAN (BSP)",
            _fmt(time_call(lambda: dbscan(rdd, eps, min_pts).collect(), repeats=repeats)),
        ],
    ]
    return render_table(
        ["mode", "time"],
        rows,
        title=f"spatialbm clustering: DBSCAN eps={eps} minPts={min_pts} on {n:,} points",
    )


def _partitioning_ablation(sc: SparkContext, n: int) -> str:
    keys = [STObject(p) for p in world_events(n, seed=1709)]
    grid = GridPartitioner(keys, 4)
    bsp = BSPartitioner(keys, max_cost_per_partition=max(64, n // 16))
    rows = [
        ["grid 4x4", "16", f"{grid.imbalance(keys):.2f}"],
        [
            "cost-based BSP",
            str(bsp.num_partitions),
            f"{bsp.imbalance(keys):.2f}",
        ],
    ]
    return render_table(
        ["partitioner", "partitions", "imbalance (max/mean)"],
        rows,
        title=f"partitioning ablation on skewed world data ({n:,} events)",
    )


def _streaming_robustness() -> str:
    """Two short overload drives surfacing the robustness counters.

    The first drive overloads a ``"block"``-policy stream -- the
    historical backpressure stall -- and feeds it one fully late
    record.  The second overloads a ``"shed_oldest"`` stream whose
    keyed state runs under a byte budget, whose input carries a poison
    record, and whose file sink fails twice under injected ``sink.write``
    chaos: shed accounting, state spill, poison quarantine, the circuit
    breaker and the dead-letter queue all engage in one pass.  Both
    drives are seeded and synchronous, so the table is deterministic.
    """
    import tempfile

    from repro.chaos import FaultInjector
    from repro.streaming import CircuitBreaker, EventFileSink, StreamingContext

    def make_batches(degraded: bool):
        batches = []
        for b in range(10):
            rows = []
            for i in range(8):
                rid = 8 * b + i
                category = "poison" if degraded and rid == 18 else "cat"
                # One record arrives long after its windows closed.
                t = 0.5 if (b, i) == (9, 0) else float(b)
                rows.append(
                    (
                        STObject(f"POINT ({(7 * rid) % 50} {(11 * rid) % 50})", t),
                        (rid, category),
                    )
                )
            batches.append(rows)
        return batches

    def reject_poison(record):
        _st, (rid, category) = record
        if category == "poison":
            raise ValueError(f"poison record {rid}")
        return record

    def drive(shed_policy: str, work: str) -> dict:
        degraded = shed_policy != "block"
        injector = (
            FaultInjector(seed=7).fail("sink.write", times=2, per_key=False)
            if degraded
            else None
        )
        with SparkContext(
            "report-overload",
            parallelism=2,
            executor="sequential",
            fault_injector=injector,
        ) as sc:
            ssc = StreamingContext(
                sc,
                max_pending_batches=2,
                shed_policy=shed_policy,
                shed_seed=29,
                dlq_dir=os.path.join(work, "dlq") if degraded else None,
            )
            _source, events = ssc.queue_stream(make_batches(degraded))
            checked = events.map(reject_poison) if degraded else events
            win = checked.window(length=4.0, slide=2.0)
            win.count_windows()
            if degraded:
                checked.continuous(
                    length=4.0,
                    slide=2.0,
                    memory_budget_bytes=2048,
                    spill_dir=os.path.join(work, "spill"),
                ).range("POLYGON ((0 0, 50 0, 50 50, 0 50, 0 0))")
                sink = EventFileSink(
                    os.path.join(work, "out"),
                    retries=0,
                    breaker=CircuitBreaker(failure_threshold=2, cooldown_windows=1),
                    name="events",
                )
                win.for_each_window(sink)
            # Ingest at twice the processing rate: sustained overload.
            for b in range(10):
                ssc.poll_once(batch_time=float(b))
                if b % 2:
                    ssc.process_pending(max_batches=1)
            ssc.process_pending()
            ssc.stop()
            return ssc.metrics.snapshot()

    with tempfile.TemporaryDirectory(prefix="report-overload-") as work:
        blocked = drive("block", os.path.join(work, "block"))
        degraded = drive("shed_oldest", os.path.join(work, "shed"))
    counters = [
        ("records ingested", "records_ingested"),
        ("records processed", "records_processed"),
        ("batches shed", "batches_shed"),
        ("records shed", "records_shed"),
        ("records quarantined", "records_quarantined"),
        ("backpressure waits", "backpressure_waits"),
        ("late records dropped", "late_records_dropped"),
        ("late window drops", "late_window_drops"),
        ("state cells spilled", "state_cells_spilled"),
        ("state spilled bytes", "state_spilled_bytes"),
        ("windows dead-lettered", "windows_dead_lettered"),
        ("sink breaker opens", "sink_breaker_opens"),
        ("degradation (final)", "degradation"),
    ]
    rows = [[label, blocked[key], degraded[key]] for label, key in counters]
    return render_table(
        ["counter", "block policy", "shed_oldest + budget + chaos sink"],
        rows,
        title="streaming robustness: 10-batch 2x-overload drives "
        "(80 records, seeded; see repro.streaming.overload)",
    )


def _traced_example(n: int) -> str:
    """One Figure-4-style query mix under the execution tracer.

    Runs in its own traced context so the span tree covers exactly the
    example queries; the rendered tree is the report's worked example
    of reading a trace (operator tags, per-task records, pruning).
    """
    with SparkContext(
        "report-trace", parallelism=4, executor="sequential", tracing=True
    ) as sc:
        pts = clustered_points(n, num_clusters=10, seed=1704)
        rdd = sc.parallelize([(STObject(p), i) for i, p in enumerate(pts)], 8)
        bsp = BSPartitioner.from_rdd(rdd, max_cost_per_partition=max(64, n // 16))
        partitioned = rdd.partition_by(bsp).persist()
        partitioned.count()
        sc.tracer.reset()  # scope the trace to the example queries
        window = STObject("POLYGON ((100 100, 350 100, 350 350, 100 350, 100 100))")
        filter_ops.filter_live_index(partitioned, window, INTERSECTS).count()
        knn(partitioned, STObject("POINT (500 500)"), 10)
        tree = sc.tracer.render()
    return "\n".join(
        [
            f"traced example: live-index filter + kNN over {n:,} points (BSP)",
            "-" * 60,
            tree,
        ]
    )


def generate_report(scale: str = "small", repeats: int = 2, trace: bool = False) -> str:
    """Run every experiment once and render the full text report.

    With ``trace=True`` a traced example query mix is appended, showing
    the execution-span tree of one filter + kNN run.
    """
    sizes = SCALES.get(scale)
    if sizes is None:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    sections = [
        "STARK reproduction -- evaluation report",
        "=" * 44,
        "",
        render_feature_table(),
    ]
    with SparkContext("report", parallelism=4) as sc:
        sections += ["", _figure4(sc, sizes["join"], repeats)]
        sections += ["", _filter_suite(sc, sizes["filter"], repeats)]
        sections += ["", _knn_suite(sc, sizes["filter"], repeats)]
        sections += ["", _clustering_suite(sc, sizes["cluster"], repeats)]
        sections += ["", _partitioning_ablation(sc, sizes["filter"])]
    sections += ["", _streaming_robustness()]
    if trace:
        sections += ["", _traced_example(sizes["join"])]
    return "\n".join(sections)
