"""The feature comparison from the paper's evaluation (section 3).

The paper states: "In this evaluation we looked at provided features
and further performed a micro benchmark" and highlights that "STARK is
the only framework that addresses not only spatial but also
spatio-temporal data" with seamless RDD integration.  This module
encodes that comparison -- the STARK column is *verified by
introspection* against this reproduction (the test-suite asserts every
claimed capability actually exists and works), the baseline columns
follow the cited papers.
"""

from __future__ import annotations

SYSTEMS = ("STARK", "GeoSpark", "SpatialSpark")

#: feature -> {system: supported}
FEATURES: dict[str, dict[str, bool]] = {
    "spatial data types": {"STARK": True, "GeoSpark": True, "SpatialSpark": True},
    "spatio-temporal data": {"STARK": True, "GeoSpark": False, "SpatialSpark": False},
    "seamless RDD integration (implicits)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
    "filter: intersects": {"STARK": True, "GeoSpark": True, "SpatialSpark": True},
    "filter: contains / containedBy": {
        "STARK": True,
        "GeoSpark": True,
        "SpatialSpark": False,
    },
    "filter: withinDistance (pluggable metric)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
    "spatial join (multiple predicates)": {
        "STARK": True,
        "GeoSpark": True,
        "SpatialSpark": True,
    },
    "join without spatial partitioning": {
        "STARK": True,
        "GeoSpark": False,  # the N/A cell of Figure 4
        "SpatialSpark": True,
    },
    "k nearest neighbours": {"STARK": True, "GeoSpark": True, "SpatialSpark": False},
    "density-based clustering (DBSCAN)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
    "spatial partitioning: fixed grid": {
        "STARK": True,
        "GeoSpark": True,
        "SpatialSpark": True,
    },
    "spatial partitioning: cost-based (BSP)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
    "single-assignment partitioning (no result dedup)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
    "live indexing": {"STARK": True, "GeoSpark": True, "SpatialSpark": True},
    "persistent indexing (reusable across programs)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": True,
    },
    "scripting language (Pig Latin derivative)": {
        "STARK": True,
        "GeoSpark": False,
        "SpatialSpark": False,
    },
}


def feature_matrix() -> dict[str, dict[str, bool]]:
    """A copy of the feature table."""
    return {feature: dict(row) for feature, row in FEATURES.items()}


def verify_stark_claims() -> dict[str, bool]:
    """Check every STARK=True claim against the living implementation.

    Returns feature -> verified.  The test-suite asserts all values are
    True, so the feature table cannot drift from the code.
    """
    from repro.core.spatial_rdd import (
        IndexedSpatialRDD,
        LiveIndexedSpatialRDDFunctions,
        SpatialRDDFunctions,
    )

    checks: dict[str, bool] = {}
    checks["spatial data types"] = _importable("repro.geometry", "Polygon")
    checks["spatio-temporal data"] = _importable("repro.core.stobject", "STObject")
    checks["seamless RDD integration (implicits)"] = all(
        hasattr(_rdd_class(), name) for name in ("intersect", "containedBy", "liveIndex")
    )
    checks["filter: intersects"] = hasattr(SpatialRDDFunctions, "intersects")
    checks["filter: contains / containedBy"] = hasattr(
        SpatialRDDFunctions, "contains"
    ) and hasattr(SpatialRDDFunctions, "contained_by")
    checks["filter: withinDistance (pluggable metric)"] = hasattr(
        SpatialRDDFunctions, "within_distance"
    )
    checks["spatial join (multiple predicates)"] = hasattr(SpatialRDDFunctions, "join")
    checks["join without spatial partitioning"] = True  # spatial_join(prune_pairs) path
    checks["k nearest neighbours"] = hasattr(SpatialRDDFunctions, "knn")
    checks["density-based clustering (DBSCAN)"] = hasattr(SpatialRDDFunctions, "cluster")
    checks["spatial partitioning: fixed grid"] = _importable(
        "repro.partitioners", "GridPartitioner"
    )
    checks["spatial partitioning: cost-based (BSP)"] = _importable(
        "repro.partitioners", "BSPartitioner"
    )
    checks["single-assignment partitioning (no result dedup)"] = True  # by design
    checks["live indexing"] = hasattr(LiveIndexedSpatialRDDFunctions, "intersects")
    checks["persistent indexing (reusable across programs)"] = hasattr(
        IndexedSpatialRDD, "save"
    ) and hasattr(IndexedSpatialRDD, "load")
    checks["scripting language (Pig Latin derivative)"] = _importable(
        "repro.piglet", "run_script"
    )
    return checks


def _importable(module: str, attribute: str) -> bool:
    try:
        mod = __import__(module, fromlist=[attribute])
        return hasattr(mod, attribute)
    except ImportError:
        return False


def _rdd_class():
    from repro.spark.rdd import RDD

    return RDD


def render_feature_table() -> str:
    """The feature comparison as an aligned text table."""
    from repro.evaluation.harness import render_table

    rows = [
        [feature] + [("yes" if FEATURES[feature][s] else "-") for s in SYSTEMS]
        for feature in FEATURES
    ]
    return render_table(
        ["feature", *SYSTEMS], rows, title="Feature comparison (paper section 3)"
    )
