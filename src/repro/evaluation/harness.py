"""Timing helpers shared by the benchmark suite and its standalone runners."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class BenchmarkResult:
    """One benchmark configuration's measurements."""

    label: str
    seconds: list[float] = field(default_factory=list)
    payload: Any = None

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.seconds)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.seconds) if len(self.seconds) > 1 else 0.0


def time_call(
    fn: Callable[[], Any], repeats: int = 1, warmup: int = 0, label: str = ""
) -> BenchmarkResult:
    """Time ``fn()`` with optional warmup runs; keeps the last payload."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    result = BenchmarkResult(label=label or getattr(fn, "__name__", "call"))
    for _ in range(repeats):
        start = time.perf_counter()
        result.payload = fn()
        result.seconds.append(time.perf_counter() - start)
    return result


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned plain-text table (the benchmark report format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
