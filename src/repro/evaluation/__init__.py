"""Evaluation support: the feature comparison (paper section 3) and the
timing harness the benchmark suite is built on."""

from repro.evaluation.features import FEATURES, SYSTEMS, feature_matrix, render_feature_table
from repro.evaluation.harness import BenchmarkResult, render_table, time_call

__all__ = [
    "BenchmarkResult",
    "FEATURES",
    "SYSTEMS",
    "feature_matrix",
    "render_feature_table",
    "render_table",
    "time_call",
]
