"""k-nearest-neighbour search (paper section 2.3).

``knn(rdd, query, k)`` returns the *k* items nearest to the query's
geometry as an ascending ``[(distance, (STObject, V)), ...]`` list.

With a spatial partitioner and the Euclidean metric the search is
two-phase, exploiting partition extents:

1. scan only the query point's *home partition* and take its best k;
2. the k-th local distance bounds the true answer, so only partitions
   whose extent comes within that bound need to be searched; the home
   scan is reused and the rest are pruned.

When the home partition holds fewer than k items, or a custom distance
function makes envelope bounds inadmissible, the search falls back to a
full scan -- correctness over speed.
"""

from __future__ import annotations

import heapq
from typing import Iterator, TypeVar

from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean, resolve
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD, PartitionPruningRDD

V = TypeVar("V")

KnnResult = list[tuple[float, tuple[STObject, V]]]


def _scan(
    rdd: RDD, query: STObject, k: int, fn: DistanceFunction
) -> KnnResult:
    """Exact kNN by scanning every partition of *rdd*."""

    def local_best(it: Iterator[tuple[STObject, V]]) -> KnnResult:
        return heapq.nsmallest(k, ((fn(kv[0].geo, query.geo), kv) for kv in it), key=lambda p: p[0])

    per_partition = rdd.context.run_job(rdd, local_best)
    merged = [pair for best in per_partition for pair in best]
    return heapq.nsmallest(k, merged, key=lambda p: p[0])


def knn(
    rdd: RDD,
    query: STObject,
    k: int,
    distance_fn: str | DistanceFunction = euclidean,
) -> KnnResult:
    """The *k* nearest items to *query*, ascending by distance.

    Ties at the k-th distance are broken arbitrarily (one of the tied
    items is returned), matching the usual kNN contract.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    fn = resolve(distance_fn)

    partitioner = rdd.partitioner
    if not isinstance(partitioner, SpatialPartitioner) or fn is not euclidean:
        return _scan(rdd, query, k, fn)

    centroid = query.geo.centroid()
    home = partitioner.partition_of_point(centroid.x, centroid.y)
    home_best = _scan(PartitionPruningRDD(rdd, [home]), query, k, fn)
    if len(home_best) < k:
        # Not enough local candidates to establish a bound.
        return _scan(rdd, query, k, fn)

    bound = home_best[-1][0]
    candidates = partitioner.partitions_within_distance(
        centroid.x, centroid.y, bound
    )
    others = [pid for pid in candidates if pid != home]
    if not others:
        return home_best
    rest = _scan(PartitionPruningRDD(rdd, others), query, k, fn)
    return heapq.nsmallest(k, home_best + rest, key=lambda p: p[0])


def knn_indexed(
    index_rdd: RDD,
    query: STObject,
    k: int,
    partitioner: SpatialPartitioner | None = None,
) -> KnnResult:
    """kNN over an RDD of per-partition STR-trees (Euclidean metric).

    Each tree answers its local top-k with exact geometry distances via
    branch-and-bound; the driver merges the per-partition lists.  With
    the producing *partitioner*, a home-partition pass bounds the search
    the same way :func:`knn` does.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    centroid = query.geo.centroid()

    def local_best(trees: Iterator) -> KnnResult:
        best: KnnResult = []
        for tree in trees:
            best.extend(
                tree.nearest(
                    centroid.x,
                    centroid.y,
                    k,
                    exact_distance=lambda kv: kv[0].geo.distance(query.geo),
                )
            )
        return heapq.nsmallest(k, best, key=lambda p: p[0])

    base = index_rdd
    if partitioner is not None:
        home = partitioner.partition_of_point(centroid.x, centroid.y)
        home_best = index_rdd.context.run_job(
            PartitionPruningRDD(index_rdd, [home]), local_best
        )[0]
        if len(home_best) == k:
            bound = home_best[-1][0]
            keep = partitioner.partitions_within_distance(
                centroid.x, centroid.y, bound
            )
            others = [pid for pid in keep if pid != home]
            if not others:
                return home_best
            rest_lists = index_rdd.context.run_job(
                PartitionPruningRDD(index_rdd, others), local_best
            )
            merged = home_best + [p for best in rest_lists for p in best]
            return heapq.nsmallest(k, merged, key=lambda p: p[0])

    per_partition = base.context.run_job(base, local_best)
    merged = [pair for best in per_partition for pair in best]
    return heapq.nsmallest(k, merged, key=lambda p: p[0])
