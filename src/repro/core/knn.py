"""k-nearest-neighbour search (paper section 2.3).

``knn(rdd, query, k)`` returns the *k* items nearest to the query's
geometry as an ascending ``[(distance, (STObject, V)), ...]`` list.

With a spatial partitioner and the Euclidean metric the search is
two-phase, exploiting partition extents:

1. scan only the query centroid's *home partition* and take its best k;
2. the k-th local distance bounds the true answer, so only partitions
   whose extent comes within that bound need to be searched; the home
   scan is reused and the rest are pruned.

Distances are exact geometry-to-geometry distances, but the pruning
bound is anchored at the query's *centroid*.  For extended query
geometries (linestrings, polygons) an item can be much closer to the
geometry than to its centroid, so every centroid-based bound is
slackened by the query's **radius** -- the maximum centroid-to-vertex
distance.  For any item ``o``: ``dist(o, centroid) <= dist(o, query) +
radius`` (triangle inequality through the closest query vertex region),
hence a partition holding an item within ``bound`` of the query lies
within ``bound + radius`` of the centroid.  With a point query the
radius is 0 and the classic bound is recovered.

When the home partition holds fewer than k items, the bound cannot be
established; the remaining partitions are scanned (reusing the home
result -- no partition is computed twice).  A custom distance function
makes envelope bounds inadmissible and falls back to a full scan --
correctness over speed.
"""

from __future__ import annotations

import heapq
from typing import Iterator, TypeVar

from repro.core.stobject import STObject
from repro.geometry.base import Geometry
from repro.geometry.distance import DistanceFunction, euclidean, resolve
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD, PartitionPruningRDD

V = TypeVar("V")

KnnResult = list[tuple[float, tuple[STObject, V]]]


def query_radius(geom: Geometry) -> float:
    """The maximum centroid-to-vertex distance of *geom* (0 for points).

    The slack every centroid-anchored kNN bound needs to stay
    admissible for extended query geometries.
    """
    c = geom.centroid()
    return max(
        (((x - c.x) ** 2 + (y - c.y) ** 2) ** 0.5 for x, y in geom.coordinates()),
        default=0.0,
    )


def _scan(
    rdd: RDD, query: STObject, k: int, fn: DistanceFunction
) -> KnnResult:
    """Exact kNN by scanning every partition of *rdd*."""

    def local_best(it: Iterator[tuple[STObject, V]]) -> KnnResult:
        return heapq.nsmallest(k, ((fn(kv[0].geo, query.geo), kv) for kv in it), key=lambda p: p[0])

    per_partition = rdd.context.run_job(rdd, local_best)
    merged = [pair for best in per_partition for pair in best]
    return heapq.nsmallest(k, merged, key=lambda p: p[0])


def knn(
    rdd: RDD,
    query: STObject,
    k: int,
    distance_fn: str | DistanceFunction = euclidean,
) -> KnnResult:
    """The *k* nearest items to *query*, ascending by distance.

    Ties at the k-th distance are broken arbitrarily (one of the tied
    items is returned), matching the usual kNN contract.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    fn = resolve(distance_fn)
    tracer = rdd.context.tracer

    with tracer.span("knn", k=k) as span:
        partitioner = rdd.partitioner
        if not isinstance(partitioner, SpatialPartitioner) or fn is not euclidean:
            span.attrs["strategy"] = "scan"
            return _scan(rdd, query, k, fn)

        centroid = query.geo.centroid()
        radius = query_radius(query.geo)
        home = partitioner.partition_of_point(centroid.x, centroid.y)
        home_best = _scan(
            PartitionPruningRDD(rdd, [home]).set_name("knn.home"), query, k, fn
        )
        if len(home_best) < k:
            # Not enough local candidates to establish a bound: scan the
            # remaining partitions, reusing the home result.
            span.attrs["strategy"] = "two_phase_unbounded"
            others = [pid for pid in range(rdd.num_partitions) if pid != home]
            if not others:
                return home_best
            rest = _scan(
                PartitionPruningRDD(rdd, others).set_name("knn.rest"), query, k, fn
            )
            return heapq.nsmallest(k, home_best + rest, key=lambda p: p[0])

        span.attrs["strategy"] = "two_phase"
        bound = home_best[-1][0]
        # The query radius keeps the centroid-anchored bound admissible
        # for extended query geometries (see module docstring).
        candidates = partitioner.partitions_within_distance(
            centroid.x, centroid.y, bound + radius
        )
        others = [pid for pid in candidates if pid != home]
        if not others:
            return home_best
        rest = _scan(
            PartitionPruningRDD(rdd, others).set_name("knn.rest"), query, k, fn
        )
        return heapq.nsmallest(k, home_best + rest, key=lambda p: p[0])


def knn_indexed(
    index_rdd: RDD,
    query: STObject,
    k: int,
    partitioner: SpatialPartitioner | None = None,
) -> KnnResult:
    """kNN over an RDD of per-partition STR-trees (Euclidean metric).

    Each tree answers its local top-k with exact geometry distances via
    branch-and-bound; the driver merges the per-partition lists.  With
    the producing *partitioner*, a home-partition pass bounds the search
    the same way :func:`knn` does.  All centroid-anchored bounds (the
    in-tree envelope bounds and the partition-extent bound) carry the
    query-radius slack, so extended query geometries stay exact.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    centroid = query.geo.centroid()
    radius = query_radius(query.geo)
    tracer = index_rdd.context.tracer

    def local_best(trees: Iterator) -> KnnResult:
        best: KnnResult = []
        for tree in trees:
            best.extend(
                tree.nearest(
                    centroid.x,
                    centroid.y,
                    k,
                    exact_distance=lambda kv: kv[0].geo.distance(query.geo),
                    bound_slack=radius,
                )
            )
        return heapq.nsmallest(k, best, key=lambda p: p[0])

    with tracer.span("knn.indexed", k=k) as span:
        if partitioner is None:
            span.attrs["strategy"] = "scan"
            per_partition = index_rdd.context.run_job(index_rdd, local_best)
            merged = [pair for best in per_partition for pair in best]
            return heapq.nsmallest(k, merged, key=lambda p: p[0])

        home = partitioner.partition_of_point(centroid.x, centroid.y)
        home_best = index_rdd.context.run_job(
            PartitionPruningRDD(index_rdd, [home]).set_name("knn.home"), local_best
        )[0]
        if len(home_best) == k:
            span.attrs["strategy"] = "two_phase"
            bound = home_best[-1][0]
            keep = partitioner.partitions_within_distance(
                centroid.x, centroid.y, bound + radius
            )
            others = [pid for pid in keep if pid != home]
        else:
            # No bound available; probe every other partition, reusing
            # the home result rather than rescanning it.
            span.attrs["strategy"] = "two_phase_unbounded"
            others = [pid for pid in range(index_rdd.num_partitions) if pid != home]
        if not others:
            return home_best
        rest_lists = index_rdd.context.run_job(
            PartitionPruningRDD(index_rdd, others).set_name("knn.rest"), local_best
        )
        merged = home_best + [p for best in rest_lists for p in best]
        return heapq.nsmallest(k, merged, key=lambda p: p[0])
