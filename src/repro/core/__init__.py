"""STARK's core: the ``STObject`` data type, the combined spatio-
temporal predicate semantics, and the operator suite (filter, join,
kNN, withinDistance, DBSCAN clustering) with transparent spatial
partitioning and the three indexing modes.
"""

from repro.core.colocation import ColocationPattern, colocation_patterns
from repro.core.knn_join import knn_join
from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    STPredicate,
    within_distance_predicate,
)
from repro.core.skyline import SkylineEntry, skyline
from repro.core.spatial_rdd import (
    IndexedSpatialRDD,
    SpatialRDDFunctions,
    install_rdd_integration,
    spatial,
)
from repro.core.stobject import STObject

__all__ = [
    "CONTAINED_BY",
    "CONTAINS",
    "ColocationPattern",
    "INTERSECTS",
    "IndexedSpatialRDD",
    "STObject",
    "STPredicate",
    "SkylineEntry",
    "SpatialRDDFunctions",
    "colocation_patterns",
    "install_rdd_integration",
    "knn_join",
    "skyline",
    "spatial",
    "within_distance_predicate",
]
