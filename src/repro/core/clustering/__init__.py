"""Density-based clustering (paper section 2.3).

STARK implements DBSCAN for Spark inspired by MR-DBSCAN [He et al.]:

1. points within epsilon of a partition border are *replicated* into the
   neighbouring partitions,
2. a local DBSCAN runs per partition in parallel,
3. local clusterings are merged through the replicated points, which may
   connect two local clusters into one.

:func:`~repro.core.clustering.mr_dbscan.dbscan` is the public operator;
:mod:`~repro.core.clustering.dbscan` holds the sequential algorithm it
runs per partition (also the reference implementation the tests compare
against), and :mod:`~repro.core.clustering.union_find` the merge
structure.
"""

from repro.core.clustering.dbscan import NOISE, local_dbscan
from repro.core.clustering.mr_dbscan import dbscan
from repro.core.clustering.union_find import UnionFind

__all__ = ["NOISE", "UnionFind", "dbscan", "local_dbscan"]
