"""Disjoint sets with union by rank and path compression."""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """A disjoint-set forest over arbitrary hashable elements.

    Elements are added implicitly on first use.
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: T) -> None:
        """Register *element* as its own singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def find(self, element: T) -> T:
        """The set representative of *element*, with path compression."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of *a* and *b*; returns the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a

    def connected(self, a: T, b: T) -> bool:
        """True when *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[T, list[T]]:
        """Root -> members mapping for every known element."""
        out: dict[T, list[T]] = {}
        for element in self._parent:
            out.setdefault(self.find(element), []).append(element)
        return out

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: object) -> bool:
        return element in self._parent
