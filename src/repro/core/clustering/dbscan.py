"""Sequential DBSCAN over 2D points.

The per-partition algorithm of the MR-DBSCAN scheme, and the reference
the property tests compare the distributed version against.  Neighbour
queries go through an STR-tree (range query on the epsilon box, refined
by exact distance), so a local run is ``O(n log n)`` for reasonable
epsilon.

DBSCAN definitions used (classic, Ester et al.):

- *core point*: has at least ``min_pts`` points within ``eps``
  (the point itself counts),
- clusters grow from core points through density-reachability,
- non-core points within ``eps`` of a core point join its cluster as
  *border points* (assignment to one of several reachable clusters is
  first-come),
- everything else is *noise* (label :data:`NOISE`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

from repro.geometry.envelope import Envelope
from repro.index.rtree import STRTree
from repro.spark.cancellation import Heartbeat

#: Cluster label for noise points.
NOISE = -1

_UNVISITED = -2

Coord = tuple[float, float]


def local_dbscan(
    points: Sequence[Coord], eps: float, min_pts: int
) -> tuple[list[int], list[bool]]:
    """Cluster *points*; returns (labels, core flags), index-aligned.

    Labels are dense non-negative integers in first-discovery order,
    or :data:`NOISE`.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")

    n = len(points)
    labels = [_UNVISITED] * n
    core = [False] * n
    if n == 0:
        return [], []

    tree: STRTree[int] = STRTree(
        (Envelope.of_point(x, y), i) for i, (x, y) in enumerate(points)
    )

    def neighbours(i: int) -> list[int]:
        x, y = points[i]
        box = Envelope(x - eps, y - eps, x + eps, y + eps)
        return [
            j
            for j in tree.query(box)
            if math.hypot(points[j][0] - x, points[j][1] - y) <= eps
        ]

    # Expansion can touch every point many times on dense data; poll for
    # cancellation so a deadline can stop a runaway partition.
    heartbeat = Heartbeat(every=256)
    next_label = 0
    for seed in range(n):
        heartbeat.beat()
        if labels[seed] != _UNVISITED:
            continue
        seed_neighbours = neighbours(seed)
        if len(seed_neighbours) < min_pts:
            labels[seed] = NOISE  # may later become a border point
            continue
        # Start a new cluster and expand it breadth-first.
        label = next_label
        next_label += 1
        labels[seed] = label
        core[seed] = True
        queue = deque(seed_neighbours)
        while queue:
            heartbeat.beat()
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = label  # border point adoption
            if labels[j] != _UNVISITED:
                continue
            labels[j] = label
            j_neighbours = neighbours(j)
            if len(j_neighbours) >= min_pts:
                core[j] = True
                queue.extend(j_neighbours)
    return labels, core
