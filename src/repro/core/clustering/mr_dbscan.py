"""Distributed DBSCAN: replicate -> local cluster -> merge.

The operator follows the MR-DBSCAN scheme the paper describes: "points
that are within eps-distance from the partition border are replicated
into the respective neighbouring partitions.  In a next step a local
clustering is performed locally and in parallel on each partition.  In
a subsequent merge step, these local clusterings are merged using the
replicated points, which may connect two clusters to a single one."

Correctness sketch (why the result matches a sequential DBSCAN up to
the usual border-point tie-breaking):

- every pair of points within ``eps`` of each other co-occurs in at
  least one partition: if ``p`` lives in partition ``A``, any ``q``
  within ``eps`` of ``p`` is within ``eps`` of ``A``'s bounds and is
  therefore replicated into ``A``;
- consequently a point's neighbourhood is *complete* in its home
  partition, so home-partition core flags are exact (replica core flags
  can only be understated, which is conservative);
- two local clusters merge iff they share a point that is core in at
  least one of them -- precisely DBSCAN's density-connectivity through
  that point; border points shared by two clusters do *not* merge them.

Output labels: dense non-negative integers per final cluster;
:data:`~repro.core.clustering.dbscan.NOISE` (-1) for noise.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator, TypeVar

from repro.core.clustering.dbscan import NOISE, local_dbscan
from repro.core.clustering.union_find import UnionFind
from repro.core.stobject import STObject
from repro.partitioners.base import SpatialPartitioner
from repro.partitioners.bsp import BSPartitioner
from repro.spark.rdd import RDD, _IdentityPartitioner

V = TypeVar("V")


def _default_partitioner(keys: list[STObject], eps: float) -> SpatialPartitioner:
    """A BSP partitioner sized for clustering.

    The cost threshold targets a handful of partitions per available
    core; the granularity floor keeps cells from becoming thinner than
    the replication band (which would only inflate replication volume,
    not break correctness).
    """
    max_cost = max(64, len(keys) // 8)
    return BSPartitioner(keys, max_cost_per_partition=max_cost, side_length=2 * eps)


def dbscan(
    rdd: RDD,
    eps: float,
    min_pts: int,
    partitioner: SpatialPartitioner | None = None,
) -> RDD:
    """Cluster an ``RDD[(STObject, V)]``; geometry centroids are the points.

    Returns an ``RDD[(STObject, (V, label))]`` in which every input row
    appears exactly once.  Rows stay in their home partition, so the
    output remains spatially partitioned.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")

    context = rdd.context
    tracer = context.tracer
    with tracer.span("dbscan", eps=eps, min_pts=min_pts) as dbscan_span:
        if partitioner is None:
            if isinstance(rdd.partitioner, SpatialPartitioner):
                partitioner = rdd.partitioner
            else:
                partitioner = _default_partitioner(rdd.keys().collect(), eps)
        part = partitioner
        num_partitions = part.num_partitions
        return _dbscan_phases(
            context, rdd, eps, min_pts, part, num_partitions, dbscan_span
        )


def _dbscan_phases(
    context, rdd, eps, min_pts, part, num_partitions, dbscan_span
):

    # -- step 0: stable ids, replication assignments -----------------------
    indexed = rdd.zip_with_index()

    def assign(row: tuple[tuple[STObject, V], int]) -> Iterator[tuple[int, tuple]]:
        (key, value), gid = row
        centroid = key.geo.centroid()
        home = part.partition_of_point(centroid.x, centroid.y)
        targets = set(
            part.partitions_within_distance(
                centroid.x, centroid.y, eps, use_extent=False
            )
        )
        targets.add(home)  # a clamped out-of-universe point still needs its home
        shared = len(targets) > 1
        for pid in targets:
            native = pid == home
            payload = (key, value) if native else None
            yield (pid, (gid, centroid.x, centroid.y, native, shared, payload))

    routed = indexed.flat_map(assign).partition_by(
        _IdentityPartitioner(num_partitions)
    )

    # -- step 1: local DBSCAN per partition ---------------------------------
    def run_local(split: int, it: Iterator[tuple[int, tuple]]) -> Iterator[tuple]:
        rows = [record for _pid, record in it]
        points = [(x, y) for _gid, x, y, _n, _s, _p in rows]
        labels, core = local_dbscan(points, eps, min_pts)
        cluster_count = max(labels, default=NOISE) + 1
        yield ("C", split, cluster_count)
        for row, label, is_core in zip(rows, labels, core):
            gid, _x, _y, native, shared, payload = row
            if native:
                yield ("N", gid, split, label, payload)
            if shared:
                yield ("S", gid, split, label, is_core)

    local = routed.map_partitions_with_index(run_local).persist().set_name(
        "dbscan.local"
    )
    tracer = context.tracer
    with tracer.span("dbscan.local", partitions=num_partitions):
        # Materialize the cached local clusterings so their cost is
        # attributed here rather than to the first merge-phase read.
        local.foreach_partition(lambda _it: None)

    # -- step 2: merge on the driver ----------------------------------------
    with tracer.span("dbscan.merge") as merge_span:
        counts = dict(
            local.filter(lambda r: r[0] == "C").map(lambda r: (r[1], r[2])).collect()
        )
        base = [0] * num_partitions
        running = 0
        for pid in range(num_partitions):
            base[pid] = running
            running += counts.get(pid, 0)
        total_clusters = running

        shared_rows = (
            local.filter(lambda r: r[0] == "S").map(lambda r: r[1:]).collect()
        )
        by_gid: dict[int, list[tuple[int, int, bool]]] = defaultdict(list)
        for gid, pid, label, is_core in shared_rows:
            by_gid[gid].append((pid, label, is_core))

        uf = UnionFind(range(total_clusters))
        adoption: dict[int, int] = {}
        for gid, occurrences in by_gid.items():
            clustered = [
                (base[pid] + label, is_core)
                for pid, label, is_core in occurrences
                if label != NOISE
            ]
            # Density connection: occurrences sharing this point merge when
            # the point is core in at least one of the two clusters.
            for i in range(len(clustered)):
                for j in range(i + 1, len(clustered)):
                    if clustered[i][1] or clustered[j][1]:
                        uf.union(clustered[i][0], clustered[j][0])
            if clustered:
                # A point that is noise at home but clustered elsewhere is a
                # border point of that remote cluster: adopt (deterministic
                # pick: smallest preliminary id).
                adoption[gid] = min(g for g, _c in clustered)

        # Dense final labels, stable across runs: roots in ascending order.
        resolution = [uf.find(g) for g in range(total_clusters)]
        dense: dict[int, int] = {}
        for root in resolution:
            if root not in dense:
                dense[root] = len(dense)
        final_of = [dense[root] for root in resolution]
        merge_span.attrs["local_clusters"] = total_clusters
        merge_span.attrs["final_clusters"] = len(dense)
        merge_span.attrs["shared_points"] = len(by_gid)

    final_broadcast = context.broadcast((final_of, adoption, base))

    # -- step 3: relabel native rows ------------------------------------------
    def relabel(row: tuple) -> tuple[STObject, tuple[V, int]]:
        _tag, gid, pid, label, payload = row
        final_of_, adoption_, base_ = final_broadcast.value
        if label != NOISE:
            final = final_of_[base_[pid] + label]
        elif gid in adoption_:
            final = final_of_[adoption_[gid]]
        else:
            final = NOISE
        key, value = payload
        return (key, (value, final))

    result = local.filter(lambda r: r[0] == "N").map(relabel).set_name(
        "dbscan.relabel"
    )
    # Native rows never left their home partition, so the spatial
    # partitioner still describes the layout.
    result.partitioner = part
    return result
