"""Co-location pattern mining (paper section 4).

The demo scenarios include "clustering/co-location" analyses over
event data.  This operator implements the standard participation-index
measure (Shekhar & Huang): for every pair of event categories (A, B),

- a *neighbour pair* is an A-event and a B-event within ``distance`` of
  each other (spatio-temporally, via the combined semantics),
- the participation ratio ``pr(A)`` is the fraction of A-events that
  appear in at least one such pair,
- the participation index ``pi(A, B) = min(pr(A), pr(B))`` -- high when
  *both* categories are usually found together.

Input: ``RDD[(STObject, category)]``.  Output: a driver-side list of
:class:`ColocationPattern`, sorted by participation index, descending.
The neighbour pairs come from a ``withinDistance`` spatial join, so
spatial partitioning of the input speeds this up like any other join.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable

from repro.core.join import spatial_join
from repro.core.predicates import within_distance_predicate
from repro.spark.rdd import RDD


@dataclass(frozen=True)
class ColocationPattern:
    """One category pair's co-location strength."""

    category_a: Hashable
    category_b: Hashable
    participation_a: float
    participation_b: float
    pair_count: int

    @property
    def participation_index(self) -> float:
        """The smaller of the two participation ratios (pattern strength)."""
        return min(self.participation_a, self.participation_b)

    def __repr__(self) -> str:
        return (
            f"ColocationPattern({self.category_a!r}, {self.category_b!r}, "
            f"pi={self.participation_index:.3f}, pairs={self.pair_count})"
        )


def colocation_patterns(
    rdd: RDD,
    distance: float,
    min_participation: float = 0.0,
) -> list[ColocationPattern]:
    """Mine co-located category pairs from ``RDD[(STObject, category)]``.

    Pairs of the *same* category are excluded (auto-co-location is
    trivially high near clusters).  Patterns below ``min_participation``
    are dropped.  Category order within a pattern is normalized
    (``category_a <= category_b`` by string order).
    """
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")

    # Stable per-event identity for participation counting.
    indexed = rdd.zip_with_index().map(
        lambda row: (row[0][0], (row[1], row[0][1]))  # (STObject, (gid, category))
    ).persist()

    totals: dict[Hashable, int] = defaultdict(int)
    for _gid, category in indexed.values().collect():
        totals[category] += 1

    predicate = within_distance_predicate(distance)
    pairs = spatial_join(indexed, indexed, predicate)

    def to_pair_row(match) -> tuple | None:
        (_lk, (lgid, lcat)), (_rk, (rgid, rcat)) = match
        if lgid >= rgid or lcat == rcat:
            return None  # dedupe mirrored pairs; skip same-category
        a, b = sorted((str(lcat), str(rcat)))
        first, second = ((lcat, lgid), (rcat, rgid))
        if str(lcat) > str(rcat):
            first, second = second, first
        return ((a, b), (first[1], second[1]))

    pair_rows = pairs.map(to_pair_row).filter(lambda r: r is not None).collect()

    participants_a: dict[tuple, set] = defaultdict(set)
    participants_b: dict[tuple, set] = defaultdict(set)
    counts: dict[tuple, int] = defaultdict(int)
    for key, (gid_a, gid_b) in pair_rows:
        participants_a[key].add(gid_a)
        participants_b[key].add(gid_b)
        counts[key] += 1

    by_name = {str(cat): cat for cat in totals}
    patterns = []
    for (name_a, name_b), count in counts.items():
        cat_a, cat_b = by_name[name_a], by_name[name_b]
        pr_a = len(participants_a[(name_a, name_b)]) / totals[cat_a]
        pr_b = len(participants_b[(name_a, name_b)]) / totals[cat_b]
        pattern = ColocationPattern(cat_a, cat_b, pr_a, pr_b, count)
        if pattern.participation_index >= min_participation:
            patterns.append(pattern)
    patterns.sort(key=lambda p: (-p.participation_index, str(p.category_a)))
    return patterns
