"""Combined spatio-temporal predicates (paper eqs. (1)-(3)).

The paper defines, for two STObjects ``o`` and ``p`` and a predicate
``phi``::

    phi(o, p) <=> phi_s(s(o), s(p)) and (
        (t(o) = undef and t(p) = undef) or
        (t(o) != undef and t(p) != undef and phi_t(t(o), t(p))))

i.e. the spatial predicate must hold, and either both temporal
components are undefined or both are defined and the temporal predicate
holds as well.  A mixed pair (one timed, one not) never matches.

:class:`STPredicate` bundles the spatial part, the temporal part and
the envelope pre-filter used by indexes and partition pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.stobject import STObject
from repro.geometry import predicates as geo_predicates
from repro.geometry.base import Geometry
from repro.geometry.distance import DistanceFunction, euclidean, resolve
from repro.geometry.envelope import Envelope
from repro.temporal import predicates as t_predicates
from repro.temporal.interval import TemporalExpression

SpatialPredicate = Callable[[Geometry, Geometry], bool]
TemporalPredicate = Callable[[TemporalExpression, TemporalExpression], bool]
EnvelopeTest = Callable[[Envelope, Envelope], bool]


def combine(
    spatial: SpatialPredicate,
    temporal: TemporalPredicate,
    item: STObject,
    query: STObject,
) -> bool:
    """Evaluate the combined semantics for (item, query)."""
    if not spatial(item.geo, query.geo):
        return False  # clause (1) fails
    if item.time is None and query.time is None:
        return True  # clause (2)
    if item.time is not None and query.time is not None:
        return temporal(item.time, query.time)  # clause (3)
    return False  # mixed defined/undefined never matches


def _identity_region(env: Envelope) -> Envelope:
    """Default candidate region: the query envelope itself."""
    return env


@dataclass(frozen=True)
class STPredicate:
    """A named spatio-temporal predicate.

    ``spatial``/``temporal`` are evaluated as ``f(item, query)``.
    ``envelope_test`` is the *necessary* (never sufficient) cheap test on
    envelopes used to collect candidates from an R-tree or to prune
    partitions; candidates always go through :meth:`evaluate` afterwards
    -- the refinement step of the paper's live indexing, where the
    temporal predicate is evaluated as well.

    ``candidate_region`` maps the query envelope to the region an index
    lookup must cover (identity except for distance predicates, which
    buffer it).
    """

    name: str
    spatial: SpatialPredicate
    temporal: TemporalPredicate
    envelope_test: EnvelopeTest
    candidate_region: Callable[[Envelope], Envelope] = field(
        default=_identity_region
    )

    def evaluate(self, item: STObject, query: STObject) -> bool:
        """Full predicate with the combined temporal semantics."""
        return combine(self.spatial, self.temporal, item, query)

    def temporal_clause(self, item: STObject, query: STObject) -> bool:
        """The temporal half of the combined semantics on its own.

        True when both temporal components are undefined, or both are
        defined and the temporal predicate holds; a mixed pair never
        matches.  Evaluating this clause *first* is the planner's
        temporal-first predicate order: for a temporally-selective
        query it rejects most items with two float comparisons before
        any geometry work runs.
        """
        if item.time is None and query.time is None:
            return True
        if item.time is not None and query.time is not None:
            return self.temporal(item.time, query.time)
        return False

    def evaluate_ordered(
        self, item: STObject, query: STObject, temporal_first: bool
    ) -> bool:
        """:meth:`evaluate` with an explicit clause order.

        Both orders compute the same truth value (the clauses are
        independent); the order only decides which side pays for the
        rejections, which is what the cost-based planner optimizes.
        """
        if temporal_first:
            return self.temporal_clause(item, query) and self.spatial(
                item.geo, query.geo
            )
        return combine(self.spatial, self.temporal, item, query)

    def __repr__(self) -> str:
        return f"STPredicate({self.name})"


def _env_intersects(item_env: Envelope, query_env: Envelope) -> bool:
    return item_env.intersects(query_env)


def _env_item_contains_query(item_env: Envelope, query_env: Envelope) -> bool:
    return item_env.contains(query_env)


def _env_query_contains_item(item_env: Envelope, query_env: Envelope) -> bool:
    return query_env.contains(item_env)


#: ``o intersects p``: spatial intersection + temporal intersection.
INTERSECTS = STPredicate(
    "intersects",
    geo_predicates.intersects,
    t_predicates.t_intersects,
    _env_intersects,
)

#: ``o contains p``: the item completely contains the query.
CONTAINS = STPredicate(
    "contains",
    geo_predicates.contains,
    t_predicates.t_contains,
    _env_item_contains_query,
)

#: ``o containedBy p``: the item lies completely within the query
#: (the reverse operation of contains, as the paper defines it).
CONTAINED_BY = STPredicate(
    "containedby",
    lambda item, query: geo_predicates.contains(query, item),
    lambda item_t, query_t: t_predicates.t_contains(query_t, item_t),
    _env_query_contains_item,
)


def within_distance_predicate(
    max_distance: float,
    distance_fn: str | DistanceFunction = euclidean,
) -> STPredicate:
    """The ``withinDistance`` predicate with a pluggable distance function.

    The temporal part is intersection: two timed events are "within
    distance" when they are near in space and their times overlap.

    Envelope pruning is only *valid* for the Euclidean metric (an
    envelope gap larger than ``max_distance`` proves the geometries are
    farther apart).  For any other function the envelope test degrades
    to always-true, so candidates are complete; the exact function then
    decides.
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    fn = resolve(distance_fn)
    is_euclidean = fn is euclidean

    def spatial(item_geo: Geometry, query_geo: Geometry) -> bool:
        return fn(item_geo, query_geo) <= max_distance

    if is_euclidean:
        def envelope_test(item_env: Envelope, query_env: Envelope) -> bool:
            return item_env.distance(query_env) <= max_distance

        def candidate_region(query_env: Envelope) -> Envelope:
            return query_env.buffer(max_distance)
    else:
        def envelope_test(item_env: Envelope, query_env: Envelope) -> bool:  # noqa: ARG001
            return True

        def candidate_region(query_env: Envelope) -> Envelope:  # noqa: ARG001
            return Envelope(
                float("-inf"), float("-inf"), float("inf"), float("inf")
            )

    return STPredicate(
        f"withindistance({max_distance:g})",
        spatial,
        t_predicates.t_intersects,
        envelope_test,
        candidate_region,
    )


BUILTIN_PREDICATES: dict[str, STPredicate] = {
    "intersects": INTERSECTS,
    "contains": CONTAINS,
    "containedby": CONTAINED_BY,
}


def resolve_predicate(name_or_pred: str | STPredicate) -> STPredicate:
    """Resolve a predicate from its name, or pass an instance through."""
    if isinstance(name_or_pred, STPredicate):
        return name_or_pred
    try:
        return BUILTIN_PREDICATES[name_or_pred.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(BUILTIN_PREDICATES))
        raise ValueError(
            f"unknown predicate {name_or_pred!r}; known: {known}"
        ) from None
