"""Skyline queries over spatio-temporal events.

STARK's follow-up work adds skyline processing to the framework; this
module implements the operator for the reproduction.  Given a query
object, every event is scored on two criteria -- spatial distance to
the query and temporal distance to the query -- and the skyline is the
set of events not *dominated* by any other (an event dominates another
when it is at least as good in both criteria and strictly better in at
least one).

The classic use case from the STARK line of work: "events close to
here and close to that date, with the best trade-offs".

Distributed execution mirrors the usual pattern: a local skyline per
partition (each partition's skyline is a superset of its contribution
to the global one -- dominance is transitive), then a driver-side merge
of the, typically tiny, candidate sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, TypeVar

from repro.core.stobject import STObject
from repro.spark.rdd import RDD

V = TypeVar("V")


@dataclass(frozen=True)
class SkylineEntry:
    """One skyline member with its two criterion values."""

    spatial_distance: float
    temporal_distance: float
    key: STObject
    value: object

    def dominates(self, other: "SkylineEntry") -> bool:
        """At least as good in both criteria, strictly better in one."""
        return (
            self.spatial_distance <= other.spatial_distance
            and self.temporal_distance <= other.temporal_distance
            and (
                self.spatial_distance < other.spatial_distance
                or self.temporal_distance < other.temporal_distance
            )
        )


def _temporal_distance(item: STObject, query: STObject) -> float:
    """Gap between temporal extents; 0 when they overlap.

    Untimed items against a timed query (or vice versa) are treated as
    maximally distant, consistent with the combined semantics where
    mixed pairs never match exactly.
    """
    if item.time is None and query.time is None:
        return 0.0
    if item.time is None or query.time is None:
        return float("inf")
    if item.time.start > query.time.end:
        return item.time.start - query.time.end
    if query.time.start > item.time.end:
        return query.time.start - item.time.end
    return 0.0


def _local_skyline(entries: list[SkylineEntry]) -> list[SkylineEntry]:
    """Sort-based skyline: sort by one criterion, sweep the other."""
    entries = sorted(
        entries, key=lambda e: (e.spatial_distance, e.temporal_distance)
    )
    skyline: list[SkylineEntry] = []
    best_temporal = float("inf")
    for entry in entries:
        # Everything earlier has spatial <= entry's; entry survives only
        # when it improves the temporal criterion (ties on both
        # criteria are kept: neither strictly dominates).
        if (
            not skyline  # the spatially best entry is never dominated
            or entry.temporal_distance < best_temporal
            or (
                entry.spatial_distance == skyline[-1].spatial_distance
                and entry.temporal_distance == skyline[-1].temporal_distance
            )
        ):
            skyline.append(entry)
            best_temporal = min(best_temporal, entry.temporal_distance)
    return skyline


def skyline(rdd: RDD, query: STObject | str) -> list[SkylineEntry]:
    """The skyline of ``RDD[(STObject, V)]`` relative to *query*.

    Returns entries sorted by spatial distance, ascending.  No returned
    entry dominates another; every excluded event is dominated by some
    returned entry.
    """
    query_obj = query if isinstance(query, STObject) else STObject(query)

    def score_partition(it: Iterator[tuple[STObject, V]]) -> list[SkylineEntry]:
        entries = [
            SkylineEntry(
                key.geo.distance(query_obj.geo),
                _temporal_distance(key, query_obj),
                key,
                value,
            )
            for key, value in it
        ]
        return _local_skyline(entries)

    per_partition = rdd.context.run_job(rdd, score_partition)
    merged = [entry for part in per_partition for entry in part]
    return _local_skyline(merged)
