"""Spatio-temporal filter execution (paper sections 2.1-2.2).

A filter evaluates one predicate between every item of an
``RDD[(STObject, V)]`` and a single query ``STObject``.  Execution
composes four independent choices, matching the paper's design plus
the hybrid-index extension:

1. **Partition pruning** -- when the RDD carries a
   :class:`~repro.partitioners.base.SpatialPartitioner`, only the
   partitions whose *extent* can satisfy the predicate are computed at
   all (a :class:`~repro.spark.rdd.PartitionPruningRDD` hides the rest).
   Indexed RDDs additionally prune on recorded *temporal* partition
   extents: a timed query skips partitions whose time range misses.
2. **No indexing** -- every surviving item is checked with the exact
   predicate (after the cheap envelope pre-test).
3. **Live indexing** -- each partition's content is bulk-loaded into a
   partition-local index first (``mode="spatial"`` for the paper's
   STR-tree, ``"temporal"`` for the time-sliced forest, ``"3d"`` for
   the (x, y, t) STR bulk load), the index is queried for candidates,
   and the candidates are refined with the exact spatial *and* temporal
   predicate.
4. **Predicate order** -- refinement evaluates spatial-first (the
   paper's behaviour) or temporal-first (two float comparisons before
   any geometry work), chosen by the cost-based planner.

Attribution: every index probe adds its candidate count to
``metrics.index_candidates`` and the current task span
(``index.candidates``); time-sliced probes additionally record the
slices skipped (``metrics.index_slices_pruned``,
``index.temporal_pruned``), and whole-partition temporal pruning
counts into ``metrics.partitions_pruned_temporal``.
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.index import build_partition_index
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD, PartitionPruningRDD
from repro.temporal.interval import Interval

V = TypeVar("V")


def st_candidates(tree, region, time) -> tuple[list, int]:
    """``(candidates, slices_pruned)`` from any partition-index kind.

    Dispatches on the index's capability: time-aware indexes expose
    ``query_st`` (the forest also reports how many slices it skipped);
    a plain spatial tree answers from envelopes alone and prunes
    nothing in time.
    """
    query_st = getattr(tree, "query_st", None)
    if query_st is None:
        return tree.query(region), 0
    result = query_st(region, time)
    if isinstance(result, tuple):
        return result
    return result, 0


def _note_probe(context, candidates: int, slices_pruned: int) -> None:
    """Attribute one index probe to metrics and the current task span."""
    context.metrics.index_candidates += candidates
    tracer = context.tracer
    if slices_pruned:
        context.metrics.index_slices_pruned += slices_pruned
        if tracer.enabled:
            tracer.add("index.temporal_pruned", slices_pruned)
    if tracer.enabled and candidates:
        tracer.add("index.candidates", candidates)


def prune_partitions(
    rdd: RDD, query: STObject, predicate: STPredicate
) -> RDD:
    """Drop partitions whose extent cannot satisfy *predicate* for *query*.

    Understands spatial partitioners (prune by spatial extent), the
    temporal-range extension (prune by temporal extent) and the
    spatio-temporal product (prune on both axes); a no-op for anything
    else.  Pruning is always conservative: the extent test is necessary
    for a match, never sufficient, so no result can be lost.
    """
    from repro.partitioners.temporal import (
        SpatioTemporalPartitioner,
        TemporalRangePartitioner,
    )

    partitioner = rdd.partitioner
    keep: list[int] | None = None
    if isinstance(partitioner, SpatialPartitioner):
        region = predicate.candidate_region(query.geo.envelope)
        keep = partitioner.partitions_intersecting(region)
    elif isinstance(partitioner, TemporalRangePartitioner):
        # Temporally partitioned data is all timed; a query without a
        # temporal component can never match (eqs. (1)-(3)), so every
        # partition prunes away.
        keep = (
            partitioner.partitions_intersecting(query.time)
            if query.time is not None
            else []
        )
    elif isinstance(partitioner, SpatioTemporalPartitioner):
        if query.time is None:
            keep = []  # all members are timed; an untimed query never matches
        else:
            region = predicate.candidate_region(query.geo.envelope)
            keep = partitioner.partitions_intersecting(region, query.time)
    if keep is None or len(keep) == rdd.num_partitions:
        return rdd
    return PartitionPruningRDD(rdd, keep)


def filter_no_index(
    rdd: RDD,
    query: STObject,
    predicate: STPredicate,
    prune: bool = True,
    temporal_first: bool = False,
) -> RDD:
    """Filter by scanning every item of every surviving partition.

    ``temporal_first`` evaluates the temporal clause before the
    envelope pre-test and spatial predicate -- the cheap rejection for
    temporally-selective queries.
    """
    base = prune_partitions(rdd, query, predicate) if prune else rdd
    query_env = query.geo.envelope

    if temporal_first:

        def keep(kv: tuple[STObject, V]) -> bool:
            key = kv[0]
            return (
                predicate.temporal_clause(key, query)
                and predicate.envelope_test(key.geo.envelope, query_env)
                and predicate.spatial(key.geo, query.geo)
            )

    else:

        def keep(kv: tuple[STObject, V]) -> bool:
            key = kv[0]
            return predicate.envelope_test(
                key.geo.envelope, query_env
            ) and predicate.evaluate(key, query)

    # The name is the operator tag the scheduler stamps on job spans.
    return base.filter(keep).set_name("filter.no_index")


def filter_live_index(
    rdd: RDD,
    query: STObject,
    predicate: STPredicate,
    order: int = 10,
    prune: bool = True,
    mode: str = "spatial",
    time_slices: int | None = None,
    temporal_first: bool = False,
) -> RDD:
    """Filter with live indexing: build, query, refine -- per partition.

    ``mode`` picks the partition-index structure (see
    :func:`repro.index.build_partition_index`); time-aware modes route
    the query's temporal component through the index so temporally-
    pruned candidates are never materialized at all.
    """
    base = prune_partitions(rdd, query, predicate) if prune else rdd
    region = predicate.candidate_region(query.geo.envelope)
    query_time = query.time
    context = rdd.context

    def run_partition(it: Iterator[tuple[STObject, V]]) -> Iterator[tuple[STObject, V]]:
        tree = build_partition_index(list(it), order, mode, time_slices)
        # Candidates match on bounding boxes (and, for time-aware
        # modes, time ranges) only; refinement applies the exact
        # spatial and temporal predicates.
        candidates, slices_pruned = st_candidates(tree, region, query_time)
        _note_probe(context, len(candidates), slices_pruned)
        for kv in candidates:
            if predicate.evaluate_ordered(kv[0], query, temporal_first):
                yield kv

    return base.map_partitions(run_partition, preserves_partitioning=True).set_name(
        "filter.live_index"
    )


def prune_temporal_partitions(
    rdd: RDD,
    query_time,
    temporal_extents: list | None,
) -> RDD:
    """Prune whole partitions whose temporal extent misses *query_time*.

    ``temporal_extents`` holds one ``Interval | None`` per partition
    (``None`` = no timed members) as recorded at index build time; a
    ``None`` list disables the optimization (e.g. an index loaded from
    a pre-extent layout).  Untimed members cannot match a timed query
    under the combined semantics, so a partition is kept only when its
    timed extent intersects.  An untimed query prunes nothing here.
    """
    if query_time is None or temporal_extents is None:
        return rdd
    if len(temporal_extents) != rdd.num_partitions:
        return rdd  # stale metadata; pruning must stay conservative
    keep = [
        pid
        for pid, extent in enumerate(temporal_extents)
        if extent is not None
        and extent.start <= query_time.end
        and query_time.start <= extent.end
    ]
    if len(keep) == rdd.num_partitions:
        return rdd
    pruned = PartitionPruningRDD(rdd, keep)
    context = rdd.context
    dropped = rdd.num_partitions - len(keep)
    context.metrics.partitions_pruned_temporal += dropped
    if context.tracer.enabled:
        context.tracer.add("index.temporal_pruned_partitions", dropped)
    return pruned


def filter_indexed(
    index_rdd: RDD,
    query: STObject,
    predicate: STPredicate,
    partitioner: SpatialPartitioner | None = None,
    temporal_extents: list[Interval | None] | None = None,
    temporal_first: bool = False,
) -> RDD:
    """Filter an RDD of per-partition indexes (persistent index mode).

    ``index_rdd`` holds one partition-local index (STR-tree, time-
    sliced forest or 3D tree) per partition whose entries are
    ``(STObject, V)`` pairs.  When the partitioner that produced the
    indexes is supplied, spatial partition pruning applies before any
    index is opened; with recorded ``temporal_extents``, a timed query
    additionally prunes whole partitions in time.
    """
    region = predicate.candidate_region(query.geo.envelope)
    base = index_rdd
    if partitioner is not None:
        keep = partitioner.partitions_intersecting(region)
        if len(keep) < index_rdd.num_partitions:
            base = PartitionPruningRDD(index_rdd, keep)
            if temporal_extents is not None:
                temporal_extents = [temporal_extents[pid] for pid in keep]
    base = prune_temporal_partitions(base, query.time, temporal_extents)
    query_time = query.time
    context = index_rdd.context

    def run_partition(trees: Iterator) -> Iterator[tuple[STObject, V]]:
        for tree in trees:
            candidates, slices_pruned = st_candidates(tree, region, query_time)
            _note_probe(context, len(candidates), slices_pruned)
            for kv in candidates:
                if predicate.evaluate_ordered(kv[0], query, temporal_first):
                    yield kv

    return base.map_partitions(run_partition, preserves_partitioning=True).set_name(
        "filter.indexed"
    )
