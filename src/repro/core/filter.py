"""Spatio-temporal filter execution (paper sections 2.1-2.2).

A filter evaluates one predicate between every item of an
``RDD[(STObject, V)]`` and a single query ``STObject``.  Execution
composes three independent choices, matching the paper's design:

1. **Partition pruning** -- when the RDD carries a
   :class:`~repro.partitioners.base.SpatialPartitioner`, only the
   partitions whose *extent* can satisfy the predicate are computed at
   all (a :class:`~repro.spark.rdd.PartitionPruningRDD` hides the rest).
2. **No indexing** -- every surviving item is checked with the exact
   predicate (after the cheap envelope pre-test).
3. **Live indexing** -- each partition's content is bulk-loaded into an
   STR-tree first, the tree is queried for candidates whose bounding
   boxes match, and the candidates are refined with the exact spatial
   *and temporal* predicate ("during this candidate pruning step, the
   temporal predicate is evaluated as well").
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.index.rtree import STRTree
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD, PartitionPruningRDD

V = TypeVar("V")


def prune_partitions(
    rdd: RDD, query: STObject, predicate: STPredicate
) -> RDD:
    """Drop partitions whose extent cannot satisfy *predicate* for *query*.

    Understands spatial partitioners (prune by spatial extent), the
    temporal-range extension (prune by temporal extent) and the
    spatio-temporal product (prune on both axes); a no-op for anything
    else.  Pruning is always conservative: the extent test is necessary
    for a match, never sufficient, so no result can be lost.
    """
    from repro.partitioners.temporal import (
        SpatioTemporalPartitioner,
        TemporalRangePartitioner,
    )

    partitioner = rdd.partitioner
    keep: list[int] | None = None
    if isinstance(partitioner, SpatialPartitioner):
        region = predicate.candidate_region(query.geo.envelope)
        keep = partitioner.partitions_intersecting(region)
    elif isinstance(partitioner, TemporalRangePartitioner):
        # Temporally partitioned data is all timed; a query without a
        # temporal component can never match (eqs. (1)-(3)), so every
        # partition prunes away.
        keep = (
            partitioner.partitions_intersecting(query.time)
            if query.time is not None
            else []
        )
    elif isinstance(partitioner, SpatioTemporalPartitioner):
        if query.time is None:
            keep = []  # all members are timed; an untimed query never matches
        else:
            region = predicate.candidate_region(query.geo.envelope)
            keep = partitioner.partitions_intersecting(region, query.time)
    if keep is None or len(keep) == rdd.num_partitions:
        return rdd
    return PartitionPruningRDD(rdd, keep)


def filter_no_index(
    rdd: RDD, query: STObject, predicate: STPredicate, prune: bool = True
) -> RDD:
    """Filter by scanning every item of every surviving partition."""
    base = prune_partitions(rdd, query, predicate) if prune else rdd
    query_env = query.geo.envelope

    def keep(kv: tuple[STObject, V]) -> bool:
        key = kv[0]
        return predicate.envelope_test(
            key.geo.envelope, query_env
        ) and predicate.evaluate(key, query)

    # The name is the operator tag the scheduler stamps on job spans.
    return base.filter(keep).set_name("filter.no_index")


def filter_live_index(
    rdd: RDD,
    query: STObject,
    predicate: STPredicate,
    order: int = 10,
    prune: bool = True,
) -> RDD:
    """Filter with live indexing: build, query, refine -- per partition."""
    base = prune_partitions(rdd, query, predicate) if prune else rdd
    region = predicate.candidate_region(query.geo.envelope)

    def run_partition(it: Iterator[tuple[STObject, V]]) -> Iterator[tuple[STObject, V]]:
        tree: STRTree[tuple[STObject, V]] = STRTree(
            ((kv[0].geo.envelope, kv) for kv in it), node_capacity=order
        )
        # Candidates match on bounding boxes only; refinement applies the
        # exact spatial predicate and the temporal predicate.
        for kv in tree.query(region):
            if predicate.evaluate(kv[0], query):
                yield kv

    return base.map_partitions(run_partition, preserves_partitioning=True).set_name(
        "filter.live_index"
    )


def filter_indexed(
    index_rdd: RDD,
    query: STObject,
    predicate: STPredicate,
    partitioner: SpatialPartitioner | None = None,
) -> RDD:
    """Filter an RDD of per-partition STR-trees (persistent index mode).

    ``index_rdd`` holds one :class:`STRTree` per partition whose entries
    are ``(STObject, V)`` pairs.  When the partitioner that produced the
    trees is supplied, partition pruning applies before any tree is
    opened.
    """
    region = predicate.candidate_region(query.geo.envelope)
    base = index_rdd
    if partitioner is not None:
        keep = partitioner.partitions_intersecting(region)
        if len(keep) < index_rdd.num_partitions:
            base = PartitionPruningRDD(index_rdd, keep)

    def run_partition(trees: Iterator[STRTree]) -> Iterator[tuple[STObject, V]]:
        for tree in trees:
            for kv in tree.query(region):
                if predicate.evaluate(kv[0], query):
                    yield kv

    return base.map_partitions(run_partition, preserves_partitioning=True).set_name(
        "filter.indexed"
    )
