"""Spatio-temporal join (paper section 2.3).

``spatial_join(left, right, predicate)`` emits every pair
``((lk, lv), (rk, rv))`` with ``predicate(lk, rk)`` true.  Execution:

- **Partition-pair enumeration.**  Every (left partition, right
  partition) pair whose *actual extents* (the merged envelopes of the
  partitions' members, computed in one cheap pass) can satisfy the
  predicate becomes one join task.  Without spatial partitioning the
  extents are unconstrained and all ``n x m`` pairs run -- the paper's
  "no partitioning" configuration.  With a good spatial partitioner
  the pair list collapses to near-diagonal, which is exactly where the
  Figure-4 speed-up comes from.
- **Local join.**  Each task bulk-loads the right block into an
  STR-tree (live indexing), probes it with every left item's candidate
  region and refines candidates with the exact predicate.  With
  ``index_order=None`` a nested loop with envelope pre-test runs
  instead.

Because STARK assigns each item to exactly one partition (centroid
assignment, no replication), every qualifying pair is produced by
exactly one task: no duplicate elimination is needed -- one of the
design differences to the replication-based baselines that the
benchmarks ablate.
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.index.rtree import STRTree
from repro.spark.cancellation import Heartbeat
from repro.spark.rdd import RDD

V = TypeVar("V")
W = TypeVar("W")


def _partition_extent(it: Iterator[tuple[STObject, V]]) -> Envelope:
    """One partition's merged envelope via mutable min/max accumulators.

    ``Envelope.merge`` allocates a frozen instance per element; this
    pass runs over *every* member of *every* partition before each
    non-pruned join, so it accumulates four floats instead.  Module
    level (not a closure) so the processes executor ships it by
    reference.
    """
    min_x = min_y = float("inf")
    max_x = max_y = float("-inf")
    for key, _value in it:
        env = key.geo.envelope
        if env.min_x < min_x:
            min_x = env.min_x
        if env.min_y < min_y:
            min_y = env.min_y
        if env.max_x > max_x:
            max_x = env.max_x
        if env.max_y > max_y:
            max_y = env.max_y
    return Envelope(min_x, min_y, max_x, max_y)


def partition_extents(rdd: RDD) -> list[Envelope]:
    """The merged envelope of each partition's member geometries.

    Memoized on the RDD (``_partition_extents``): an RDD's contents are
    immutable -- lineage is fixed at construction and recomputation is
    deterministic -- so the extents can never change and repeated joins
    or filters over the same RDD reuse the first scan.  (``persist`` /
    ``unpersist`` only toggle caching of those same contents, so they
    need no invalidation hook.)
    """
    cached = getattr(rdd, "_partition_extents", None)
    if cached is not None:
        return cached
    extents = rdd.context.run_job(rdd, _partition_extent)
    rdd._partition_extents = extents
    return extents


def candidate_partition_pairs(
    left_extents: list[Envelope],
    right_extents: list[Envelope],
    predicate: STPredicate,
) -> list[tuple[int, int]]:
    """All (i, j) pairs whose extents can hold a qualifying pair.

    The test -- left extent intersects the candidate region of the right
    extent -- is necessary for every supported predicate: intersecting,
    containing or near geometries always have intersecting (or, for
    withinDistance, buffered-intersecting) envelopes, and extents cover
    the members' envelopes.  Empty partitions never pair.
    """
    pairs: list[tuple[int, int]] = []
    regions = [predicate.candidate_region(env) for env in right_extents]
    for i, left_env in enumerate(left_extents):
        if left_env.is_empty:
            continue
        for j, region in enumerate(regions):
            if right_extents[j].is_empty:
                continue
            if left_env.intersects(region):
                pairs.append((i, j))
    return pairs


class SpatialJoinRDD(RDD[tuple]):
    """One partition per surviving (left, right) partition pair.

    With live indexing, the right side's per-partition STR-trees are
    built through a cached tree RDD, so each right partition is indexed
    exactly **once** no matter how many left partitions pair with it --
    the same reuse STARK gets from indexing the right relation before
    the join rather than inside every task.
    """

    def __init__(
        self,
        left: RDD,
        right: RDD,
        predicate: STPredicate,
        pairs: list[tuple[int, int]],
        index_order: int | None,
    ) -> None:
        super().__init__(left.context, [left, right])
        self._left = left
        self._right = right
        self._predicate = predicate
        self._pairs = pairs
        self._index_order = index_order
        if index_order is not None:
            order = index_order

            def build_tree(it: Iterator) -> Iterator[STRTree]:
                yield STRTree(
                    ((kv[0].geo.envelope, kv) for kv in it), node_capacity=order
                )

            self._right_trees = right.map_partitions(
                build_tree, preserves_partitioning=True
            ).persist()
        else:
            self._right_trees = None

    @property
    def num_partitions(self) -> int:
        return len(self._pairs)

    def compute(self, split: int) -> Iterator[tuple]:
        left_split, right_split = self._pairs[split]
        predicate = self._predicate
        # A join partition can evaluate millions of candidate pairs; the
        # heartbeat keeps a cancelled/overdue task from running it out.
        heartbeat = Heartbeat(every=1024)

        if self._right_trees is not None:
            tree: STRTree = next(self._right_trees.iterator(right_split))
            if len(tree) == 0:
                return
            for left_kv in self._left.iterator(left_split):
                region = predicate.candidate_region(left_kv[0].geo.envelope)
                for right_kv in tree.query(region):
                    heartbeat.beat()
                    if predicate.evaluate(left_kv[0], right_kv[0]):
                        yield (left_kv, right_kv)
        else:
            right_block = list(self._right.iterator(right_split))
            if not right_block:
                return
            for left_kv in self._left.iterator(left_split):
                left_env = left_kv[0].geo.envelope
                for right_kv in right_block:
                    heartbeat.beat()
                    if predicate.envelope_test(
                        left_env, right_kv[0].geo.envelope
                    ) and predicate.evaluate(left_kv[0], right_kv[0]):
                        yield (left_kv, right_kv)


def spatial_join(
    left: RDD,
    right: RDD,
    predicate: STPredicate,
    index_order: int | None = 10,
    prune_pairs: bool = True,
) -> RDD:
    """Join two ``RDD[(STObject, V)]`` on a spatio-temporal predicate.

    ``index_order`` enables live indexing of the right blocks (the
    usual mode); ``None`` selects the nested-loop local join.  With
    ``prune_pairs=False`` every partition pair is evaluated regardless
    of extents (the ablation knob for measuring what extent-based pair
    pruning is worth).
    """
    tracer = left.context.tracer
    total = left.num_partitions * right.num_partitions
    with tracer.span("join.plan", prune=prune_pairs) as span:
        if prune_pairs:
            left_extents = partition_extents(left)
            right_extents = (
                left_extents if right is left else partition_extents(right)
            )
            pairs = candidate_partition_pairs(left_extents, right_extents, predicate)
        else:
            pairs = [
                (i, j)
                for i in range(left.num_partitions)
                for j in range(right.num_partitions)
            ]
        span.attrs["pairs"] = len(pairs)
        span.attrs["pairs_pruned"] = total - len(pairs)
    left.context.metrics.partitions_pruned += total - len(pairs)
    if tracer.enabled and total > len(pairs):
        tracer.add("partitions_pruned", total - len(pairs))
    joined = SpatialJoinRDD(left, right, predicate, pairs, index_order)
    return joined.set_name(
        "join.live_index" if index_order is not None else "join.nested_loop"
    )
