"""The kNN join: for every left item, its k nearest right items.

A standard companion operator to the paper's kNN search (and part of
the follow-up STARK work): ``knn_join(left, right, k)`` emits
``((lk, lv), [(distance, (rk, rv)), ...])`` with the k nearest right
rows per left row, ascending by Euclidean distance.

Execution: the right side's per-partition STR-trees are built once
(cached tree RDD, as in the spatial join).  Each left partition then
probes trees in ascending order of partition-extent distance and stops
as soon as the k-th best distance beats the next tree's extent distance
-- the same bound that drives the two-phase kNN search, applied per
probe point.
"""

from __future__ import annotations

import heapq
from typing import Iterator, TypeVar

from repro.core.join import partition_extents
from repro.core.stobject import STObject
from repro.index.rtree import STRTree
from repro.spark.rdd import RDD

V = TypeVar("V")
W = TypeVar("W")


class KnnJoinRDD(RDD[tuple]):
    """One output partition per left partition."""

    def __init__(self, left: RDD, right: RDD, k: int, index_order: int) -> None:
        super().__init__(left.context, [left, right])
        self._left = left
        self._k = k

        def build_tree(it: Iterator) -> Iterator[STRTree]:
            yield STRTree(
                ((kv[0].geo.envelope, kv) for kv in it), node_capacity=index_order
            )

        self._right_trees = right.map_partitions(
            build_tree, preserves_partitioning=True
        ).persist()
        self._right_extents = partition_extents(right)

    @property
    def num_partitions(self) -> int:
        return self._left.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        k = self._k
        candidates = [
            (pid, extent)
            for pid, extent in enumerate(self._right_extents)
            if not extent.is_empty
        ]
        trees: dict[int, STRTree] = {}

        for left_kv in self._left.iterator(split):
            left_geom = left_kv[0].geo
            centroid = left_geom.centroid()
            cx, cy = centroid.x, centroid.y
            # For extended probe geometries the exact distance can
            # undercut envelope-to-centroid bounds by up to the
            # geometry's radius; slacken every bound by it.
            radius = max(
                (
                    ((vx - cx) ** 2 + (vy - cy) ** 2) ** 0.5
                    for vx, vy in left_geom.coordinates()
                ),
                default=0.0,
            )
            # Probe right partitions nearest-extent-first; once the k-th
            # best beats the next extent's lower bound, stop.
            order = sorted(
                candidates, key=lambda pe: pe[1].distance_to_point(cx, cy)
            )
            best: list[tuple[float, tuple]] = []
            for pid, extent in order:
                bound = extent.distance_to_point(cx, cy) - radius
                if len(best) == k and bound > best[-1][0]:
                    break
                tree = trees.get(pid)
                if tree is None:
                    tree = next(self._right_trees.iterator(pid))
                    trees[pid] = tree
                local = tree.nearest(
                    cx,
                    cy,
                    k,
                    exact_distance=lambda kv: kv[0].geo.distance(left_geom),
                    bound_slack=radius,
                )
                best = heapq.nsmallest(k, best + local, key=lambda p: p[0])
            yield (left_kv, best)


def knn_join(
    left: RDD, right: RDD, k: int, index_order: int = 10
) -> RDD:
    """For each row of *left*, the *k* nearest rows of *right*.

    Distances are exact geometry-to-geometry Euclidean distances.  When
    *right* has fewer than *k* rows, each result list is correspondingly
    shorter.  Self-joins include the identity pair (distance 0), like
    every standard kNN-join definition.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # Planning (right-extent computation) runs eagerly in the
    # constructor; the span captures it.  The joined RDD's name tags the
    # probe-side job spans when an action runs.
    with left.context.tracer.span("knn_join.plan", k=k):
        joined = KnnJoinRDD(left, right, k, index_order)
    return joined.set_name("knn_join")
