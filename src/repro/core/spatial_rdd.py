"""The STARK DSL: spatio-temporal operations on plain RDDs.

STARK integrates with Spark through an implicit conversion: any
``RDD[(STObject, V)]`` transparently gains the spatio-temporal
operations (paper section 2.3).  Python has no implicits, so the
reproduction offers the same seamlessness two ways:

- :func:`spatial` wraps an RDD in :class:`SpatialRDDFunctions`
  explicitly (the "helper class" of the paper), and
- :func:`install_rdd_integration` (invoked on package import) attaches
  the operator methods directly to the :class:`~repro.spark.rdd.RDD`
  class, so the paper's examples translate literally::

      events = raw_input.map(lambda r: (STObject(r.wkt, r.time), (r.id, r.category)))
      contain = events.containedBy(qry)
      intersect = events.liveIndex(order=5).intersect(qry)

Both camelCase (paper-faithful) and snake_case spellings exist.

Indexing modes (paper section 2.2) map to:

- *no indexing*      -- call the operators directly,
- *live indexing*    -- ``rdd.liveIndex(order, partitioner)`` then call
  the same operators on the returned handle,
- *persistent*       -- ``rdd.index(order, partitioner)`` returns an
  :class:`IndexedSpatialRDD` of per-partition STR-trees that can be
  queried *and* saved with ``save(path)``, then reloaded in another
  program with :meth:`IndexedSpatialRDD.load` -- no extra run needed
  just to persist, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.core import filter as filter_ops
from repro.core import join as join_ops
from repro.core import knn as knn_ops
from repro.core.clustering.mr_dbscan import dbscan
from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    STPredicate,
    resolve_predicate,
    within_distance_predicate,
)
from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean
from repro.index import INDEX_MODES, build_partition_index, persistence
from repro.index.temporal_forest import temporal_extent_of
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD
from repro.temporal.interval import Interval

V = TypeVar("V")

DEFAULT_INDEX_ORDER = 10


def _as_query(query: STObject | str) -> STObject:
    return query if isinstance(query, STObject) else STObject(query)


class SpatialRDDFunctions:
    """Spatio-temporal operations over an ``RDD[(STObject, V)]``.

    The wrapped RDD's partitioner drives pruning automatically: after
    ``rdd.partition_by(GridPartitioner(...))`` every operation skips
    partitions whose extent cannot contribute.
    """

    def __init__(self, rdd: RDD) -> None:
        self._rdd = rdd

    @property
    def rdd(self) -> RDD:
        """The underlying RDD."""
        return self._rdd

    # -- filters ----------------------------------------------------------

    def intersects(self, query: STObject | str) -> RDD:
        """Items whose spatial/temporal components intersect the query."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), INTERSECTS)

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query object."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), CONTAINS)

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query object."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), CONTAINED_BY)

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query (pluggable metric)."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return filter_ops.filter_no_index(self._rdd, _as_query(query), predicate)

    def filter(self, query: STObject | str, predicate: str | STPredicate) -> RDD:
        """Filter with a predicate given by name or instance."""
        return filter_ops.filter_no_index(
            self._rdd, _as_query(query), resolve_predicate(predicate)
        )

    # -- join / kNN / clustering ---------------------------------------------

    def join(
        self,
        other: "RDD | SpatialRDDFunctions",
        predicate: str | STPredicate = INTERSECTS,
        index_order: int | None = DEFAULT_INDEX_ORDER,
        prune_pairs: bool = True,
    ) -> RDD:
        """Spatio-temporal join; see :func:`repro.core.join.spatial_join`."""
        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return join_ops.spatial_join(
            self._rdd,
            other_rdd,
            resolve_predicate(predicate),
            index_order=index_order,
            prune_pairs=prune_pairs,
        )

    def knn(
        self,
        query: STObject | str,
        k: int,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> knn_ops.KnnResult:
        """The k nearest items, ascending ``[(distance, (STObject, V))]``."""
        return knn_ops.knn(self._rdd, _as_query(query), k, distance_fn)

    def knn_join(
        self,
        other: "RDD | SpatialRDDFunctions",
        k: int,
        index_order: int = DEFAULT_INDEX_ORDER,
    ) -> RDD:
        """For each row, the k nearest rows of *other*;
        see :func:`repro.core.knn_join.knn_join`."""
        from repro.core.knn_join import knn_join as knn_join_op

        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return knn_join_op(self._rdd, other_rdd, k, index_order)

    def cluster(
        self,
        eps: float,
        min_pts: int,
        partitioner: SpatialPartitioner | None = None,
    ) -> RDD:
        """DBSCAN; returns ``RDD[(STObject, (V, cluster_label))]``."""
        return dbscan(self._rdd, eps, min_pts, partitioner)

    def skyline(self, query: STObject | str) -> list:
        """The (spatial, temporal) trade-off front relative to *query*;
        see :func:`repro.core.skyline.skyline`."""
        from repro.core.skyline import skyline as skyline_op

        return skyline_op(self._rdd, _as_query(query))

    def colocation(self, distance: float, min_participation: float = 0.0) -> list:
        """Co-location patterns over ``RDD[(STObject, category)]``;
        see :func:`repro.core.colocation.colocation_patterns`."""
        from repro.core.colocation import colocation_patterns

        return colocation_patterns(self._rdd, distance, min_participation)

    # -- partitioning & indexing ------------------------------------------

    def partition_by(self, partitioner: SpatialPartitioner) -> "SpatialRDDFunctions":
        """Spatially repartition; subsequent operations prune partitions."""
        return SpatialRDDFunctions(self._rdd.partition_by(partitioner))

    def live_index(
        self,
        order: int = DEFAULT_INDEX_ORDER,
        partitioner: SpatialPartitioner | None = None,
        mode: str = "spatial",
        time_slices: int | None = None,
        temporal_first: bool = False,
    ) -> "LiveIndexedSpatialRDDFunctions":
        """Live indexing mode: build an R-tree per partition at query time.

        The optional *partitioner* repartitions the RDD before indexing,
        matching the paper's ``liveIndex(order, partitioner)`` signature.
        *mode* picks the partition-index structure (``"spatial"``,
        ``"temporal"`` or ``"3d"``; see
        :func:`repro.index.build_partition_index`), *time_slices* sizes
        the temporal forest, and *temporal_first* flips the refinement
        clause order -- the knobs the cost-based planner turns.
        """
        if mode not in INDEX_MODES:
            raise ValueError(f"unknown index mode {mode!r}; known: {INDEX_MODES}")
        rdd = self._rdd if partitioner is None else self._rdd.partition_by(partitioner)
        return LiveIndexedSpatialRDDFunctions(
            rdd, order, mode=mode, time_slices=time_slices, temporal_first=temporal_first
        )

    def index(
        self,
        order: int = DEFAULT_INDEX_ORDER,
        partitioner: SpatialPartitioner | None = None,
        mode: str = "spatial",
        time_slices: int | None = None,
    ) -> "IndexedSpatialRDD":
        """Persistent-index mode: materialize one index tree per partition.

        The returned handle answers queries immediately *and* can be
        saved, so no extra run is needed just to persist the index.
        *mode* picks the structure exactly as for :meth:`live_index`.
        """
        if mode not in INDEX_MODES:
            raise ValueError(f"unknown index mode {mode!r}; known: {INDEX_MODES}")
        rdd = self._rdd if partitioner is None else self._rdd.partition_by(partitioner)

        def build(it: Iterator[tuple[STObject, V]]) -> Iterator:
            yield build_partition_index(list(it), order, mode, time_slices)

        tree_rdd = rdd.map_partitions(build, preserves_partitioning=True).persist()
        spatial_part = (
            rdd.partitioner
            if isinstance(rdd.partitioner, SpatialPartitioner)
            else None
        )
        return IndexedSpatialRDD(tree_rdd, spatial_part, order=order, mode=mode)

    # -- cost-based planning ----------------------------------------------

    def plan(
        self, query: STObject | str, predicate: str | STPredicate = INTERSECTS
    ):
        """The cost-based plan for filtering this RDD with *query*.

        Returns a :class:`repro.planner.FilterPlan`; inspect it with
        ``.explain()`` or run it with :meth:`filter_planned`.
        """
        from repro.planner import QueryPlanner

        return QueryPlanner(self._rdd.context).plan_filter(
            self._rdd, _as_query(query), resolve_predicate(predicate)
        )

    def explain(
        self, query: STObject | str, predicate: str | STPredicate = INTERSECTS
    ) -> str:
        """A human-readable rendering of :meth:`plan` for *query*."""
        return self.plan(query, predicate).explain()

    def filter_planned(
        self, query: STObject | str, predicate: str | STPredicate = INTERSECTS
    ) -> RDD:
        """Filter with the execution strategy the cost model picks.

        Equivalent results to the unplanned operators -- the plan only
        decides index mode, predicate order and pruning route.
        """
        from repro.planner import QueryPlanner

        return QueryPlanner(self._rdd.context).execute(
            self._rdd, _as_query(query), resolve_predicate(predicate)
        )

    # camelCase aliases matching the paper's Scala API
    containedBy = contained_by
    withinDistance = within_distance
    kNN = knn
    liveIndex = live_index
    partitionBy = partition_by
    filterPlanned = filter_planned


class LiveIndexedSpatialRDDFunctions:
    """Operations on a live-indexed RDD (paper's ``liveIndex`` handle).

    Nothing is materialized here: each operation builds the per-
    partition trees while it runs, queries them, and refines candidates.
    The handle carries the planner's knobs (index *mode*, forest
    *time_slices*, refinement clause order) so a plan is just a
    configured handle.
    """

    def __init__(
        self,
        rdd: RDD,
        order: int,
        mode: str = "spatial",
        time_slices: int | None = None,
        temporal_first: bool = False,
    ) -> None:
        if order < 2:
            raise ValueError(f"index order must be >= 2, got {order}")
        self._rdd = rdd
        self._order = order
        self._mode = mode
        self._time_slices = time_slices
        self._temporal_first = temporal_first

    @property
    def rdd(self) -> RDD:
        """The underlying (possibly repartitioned) RDD."""
        return self._rdd

    @property
    def mode(self) -> str:
        """The partition-index mode this handle builds."""
        return self._mode

    def _filter(self, query: STObject, predicate: STPredicate) -> RDD:
        return filter_ops.filter_live_index(
            self._rdd,
            query,
            predicate,
            self._order,
            mode=self._mode,
            time_slices=self._time_slices,
            temporal_first=self._temporal_first,
        )

    def intersects(self, query: STObject | str) -> RDD:
        """Items intersecting the query, via a per-partition live index."""
        return self._filter(_as_query(query), INTERSECTS)

    # the paper's example calls this ``intersect`` on the indexed handle
    intersect = intersects

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query, with live indexing."""
        return self._filter(_as_query(query), CONTAINS)

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query, with live indexing."""
        return self._filter(_as_query(query), CONTAINED_BY)

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query, with live indexing."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return self._filter(_as_query(query), predicate)

    def join(
        self,
        other: "RDD | SpatialRDDFunctions",
        predicate: str | STPredicate = INTERSECTS,
        prune_pairs: bool = True,
    ) -> RDD:
        """Spatio-temporal join using this handle's index order."""
        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return join_ops.spatial_join(
            self._rdd,
            other_rdd,
            resolve_predicate(predicate),
            index_order=self._order,
            prune_pairs=prune_pairs,
        )

    containedBy = contained_by
    withinDistance = within_distance


class IndexedSpatialRDD:
    """A materialized index: one index tree per partition (persistent mode).

    Besides the spatial partitioner, the handle tracks each partition's
    *temporal extent* (the covering interval of its timed members).
    A timed query prunes whole partitions whose extent misses before a
    single tree is opened -- the persistent-mode analogue of
    ``TemporalRangePartitioner`` pruning on the unindexed path.
    """

    def __init__(
        self,
        tree_rdd: RDD,
        partitioner: SpatialPartitioner | None = None,
        order: int | None = None,
        mode: str = "spatial",
        temporal_extents: list[Interval | None] | None = None,
    ) -> None:
        self._trees = tree_rdd
        self._partitioner = partitioner
        self._order = order
        self._mode = mode
        self._temporal_extents = temporal_extents

    @property
    def tree_rdd(self) -> RDD:
        """The underlying RDD of per-partition index trees."""
        return self._trees

    @property
    def partitioner(self) -> SpatialPartitioner | None:
        """The spatial partitioner backing pruning, if one was used."""
        return self._partitioner

    @property
    def mode(self) -> str:
        """The partition-index mode the trees were built with."""
        return self._mode

    def temporal_extents(self) -> list[Interval | None]:
        """Per-partition covering intervals of timed members (cached).

        Computed with one job over the stored trees on first use (or
        restored from persisted metadata by :meth:`load`); ``None`` in
        a slot means that partition holds no timed members at all.
        """
        if self._temporal_extents is None:

            def extent_of_partition(trees: Iterator) -> Iterator[Interval | None]:
                lo, hi = float("inf"), float("-inf")
                for tree in trees:
                    extent, _has_untimed = temporal_extent_of(tree)
                    if extent is not None:
                        lo = min(lo, extent.start)
                        hi = max(hi, extent.end)
                yield Interval(lo, hi) if lo <= hi else None

            self._temporal_extents = self._trees.map_partitions(
                extent_of_partition
            ).collect()
        return self._temporal_extents

    def _filter(self, query: STObject, predicate: STPredicate) -> RDD:
        # The extents job runs lazily, and only when a timed query can
        # actually use them for pruning.
        extents = (
            self.temporal_extents() if query.time is not None else self._temporal_extents
        )
        return filter_ops.filter_indexed(
            self._trees,
            query,
            predicate,
            self._partitioner,
            temporal_extents=extents,
        )

    def intersects(self, query: STObject | str) -> RDD:
        """Items intersecting the query, answered from the stored trees."""
        return self._filter(_as_query(query), INTERSECTS)

    intersect = intersects

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query, from the stored trees."""
        return self._filter(_as_query(query), CONTAINS)

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query, from the stored trees."""
        return self._filter(_as_query(query), CONTAINED_BY)

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query, from the stored trees."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return self._filter(_as_query(query), predicate)

    def knn(self, query: STObject | str, k: int) -> knn_ops.KnnResult:
        """The k nearest items, pruned through the stored trees."""
        return knn_ops.knn_indexed(
            self._trees, _as_query(query), k, self._partitioner
        )

    def entries(self) -> RDD:
        """Flatten back to the underlying ``RDD[(STObject, V)]``."""
        flattened = self._trees.flat_map(
            lambda tree: [kv for _env, kv in tree.iter_entries()]
        )
        if self._partitioner is not None:
            flattened.partitioner = self._partitioner
        return flattened

    def save(self, path: str) -> None:
        """Persist the trees, partitioner and temporal partition extents.

        The extents are computed here (one job over the trees) if no
        timed query has already cached them, so a reloaded index prunes
        in time without touching the data again.
        """
        persistence.save_index(
            self._trees,
            path,
            self._partitioner,
            order=self._order,
            temporal_extents=self.temporal_extents(),
            mode=self._mode,
        )

    @staticmethod
    def load(context, path: str) -> "IndexedSpatialRDD":
        """Reload an index written by :meth:`save`.

        Tolerant of damage: corrupt tree parts are rebuilt live from the
        recovery sidecar and corrupt metadata merely disables pruning
        (see :mod:`repro.index.persistence`).  Repeated loads of an
        unchanged path reuse already-deserialized trees from the
        process-level cache.
        """
        tree_rdd, partitioner, extents, mode = persistence.load_index(context, path)
        order = getattr(tree_rdd, "_order", None)
        return IndexedSpatialRDD(
            tree_rdd.persist(),
            partitioner,
            order=order,
            mode=mode or "spatial",
            temporal_extents=extents,
        )

    containedBy = contained_by
    withinDistance = within_distance
    kNN = knn


def spatial(rdd: RDD) -> SpatialRDDFunctions:
    """Wrap an ``RDD[(STObject, V)]`` with the spatio-temporal operations."""
    return SpatialRDDFunctions(rdd)


_INSTALLED = False

#: (RDD method name, SpatialRDDFunctions callable) pairs attached by
#: :func:`install_rdd_integration`.  ``intersect`` is the paper's
#: spelling for the filter.
_RDD_METHODS = {
    "intersect": "intersects",
    "intersects": "intersects",
    "contains": "contains",
    "containedBy": "contained_by",
    "contained_by": "contained_by",
    "withinDistance": "within_distance",
    "within_distance": "within_distance",
    "kNN": "knn",
    "knn": "knn",
    "cluster": "cluster",
    "liveIndex": "live_index",
    "live_index": "live_index",
    "index": "index",
    "spatialJoin": "join",
    "spatial_join": "join",
    "kNNJoin": "knn_join",
    "knn_join": "knn_join",
    "skyline": "skyline",
    "colocation": "colocation",
    "stPlan": "plan",
    "st_plan": "plan",
    "stExplain": "explain",
    "st_explain": "explain",
    "filterPlanned": "filter_planned",
    "filter_planned": "filter_planned",
}


def install_rdd_integration() -> None:
    """Attach the spatio-temporal operators to the RDD class itself.

    The Python stand-in for STARK's implicit conversion: after this
    (idempotent) call, the operators can be invoked directly on any
    RDD whose keys are STObjects, as in the paper's listings.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    for rdd_name, fn_name in _RDD_METHODS.items():
        if hasattr(RDD, rdd_name):
            raise RuntimeError(
                f"RDD already defines {rdd_name!r}; integration would clobber it"
            )

        def make(method: str):
            def call(self: RDD, *args, **kwargs):
                return getattr(SpatialRDDFunctions(self), method)(*args, **kwargs)

            call.__name__ = method
            call.__doc__ = getattr(SpatialRDDFunctions, method).__doc__
            return call

        setattr(RDD, rdd_name, make(fn_name))
    _INSTALLED = True


install_rdd_integration()
