"""The STARK DSL: spatio-temporal operations on plain RDDs.

STARK integrates with Spark through an implicit conversion: any
``RDD[(STObject, V)]`` transparently gains the spatio-temporal
operations (paper section 2.3).  Python has no implicits, so the
reproduction offers the same seamlessness two ways:

- :func:`spatial` wraps an RDD in :class:`SpatialRDDFunctions`
  explicitly (the "helper class" of the paper), and
- :func:`install_rdd_integration` (invoked on package import) attaches
  the operator methods directly to the :class:`~repro.spark.rdd.RDD`
  class, so the paper's examples translate literally::

      events = raw_input.map(lambda r: (STObject(r.wkt, r.time), (r.id, r.category)))
      contain = events.containedBy(qry)
      intersect = events.liveIndex(order=5).intersect(qry)

Both camelCase (paper-faithful) and snake_case spellings exist.

Indexing modes (paper section 2.2) map to:

- *no indexing*      -- call the operators directly,
- *live indexing*    -- ``rdd.liveIndex(order, partitioner)`` then call
  the same operators on the returned handle,
- *persistent*       -- ``rdd.index(order, partitioner)`` returns an
  :class:`IndexedSpatialRDD` of per-partition STR-trees that can be
  queried *and* saved with ``save(path)``, then reloaded in another
  program with :meth:`IndexedSpatialRDD.load` -- no extra run needed
  just to persist, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.core import filter as filter_ops
from repro.core import join as join_ops
from repro.core import knn as knn_ops
from repro.core.clustering.mr_dbscan import dbscan
from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    STPredicate,
    resolve_predicate,
    within_distance_predicate,
)
from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean
from repro.index import persistence
from repro.index.rtree import STRTree
from repro.partitioners.base import SpatialPartitioner
from repro.spark.rdd import RDD

V = TypeVar("V")

DEFAULT_INDEX_ORDER = 10


def _as_query(query: STObject | str) -> STObject:
    return query if isinstance(query, STObject) else STObject(query)


class SpatialRDDFunctions:
    """Spatio-temporal operations over an ``RDD[(STObject, V)]``.

    The wrapped RDD's partitioner drives pruning automatically: after
    ``rdd.partition_by(GridPartitioner(...))`` every operation skips
    partitions whose extent cannot contribute.
    """

    def __init__(self, rdd: RDD) -> None:
        self._rdd = rdd

    @property
    def rdd(self) -> RDD:
        """The underlying RDD."""
        return self._rdd

    # -- filters ----------------------------------------------------------

    def intersects(self, query: STObject | str) -> RDD:
        """Items whose spatial/temporal components intersect the query."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), INTERSECTS)

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query object."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), CONTAINS)

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query object."""
        return filter_ops.filter_no_index(self._rdd, _as_query(query), CONTAINED_BY)

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query (pluggable metric)."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return filter_ops.filter_no_index(self._rdd, _as_query(query), predicate)

    def filter(self, query: STObject | str, predicate: str | STPredicate) -> RDD:
        """Filter with a predicate given by name or instance."""
        return filter_ops.filter_no_index(
            self._rdd, _as_query(query), resolve_predicate(predicate)
        )

    # -- join / kNN / clustering ---------------------------------------------

    def join(
        self,
        other: "RDD | SpatialRDDFunctions",
        predicate: str | STPredicate = INTERSECTS,
        index_order: int | None = DEFAULT_INDEX_ORDER,
        prune_pairs: bool = True,
    ) -> RDD:
        """Spatio-temporal join; see :func:`repro.core.join.spatial_join`."""
        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return join_ops.spatial_join(
            self._rdd,
            other_rdd,
            resolve_predicate(predicate),
            index_order=index_order,
            prune_pairs=prune_pairs,
        )

    def knn(
        self,
        query: STObject | str,
        k: int,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> knn_ops.KnnResult:
        """The k nearest items, ascending ``[(distance, (STObject, V))]``."""
        return knn_ops.knn(self._rdd, _as_query(query), k, distance_fn)

    def knn_join(
        self,
        other: "RDD | SpatialRDDFunctions",
        k: int,
        index_order: int = DEFAULT_INDEX_ORDER,
    ) -> RDD:
        """For each row, the k nearest rows of *other*;
        see :func:`repro.core.knn_join.knn_join`."""
        from repro.core.knn_join import knn_join as knn_join_op

        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return knn_join_op(self._rdd, other_rdd, k, index_order)

    def cluster(
        self,
        eps: float,
        min_pts: int,
        partitioner: SpatialPartitioner | None = None,
    ) -> RDD:
        """DBSCAN; returns ``RDD[(STObject, (V, cluster_label))]``."""
        return dbscan(self._rdd, eps, min_pts, partitioner)

    def skyline(self, query: STObject | str) -> list:
        """The (spatial, temporal) trade-off front relative to *query*;
        see :func:`repro.core.skyline.skyline`."""
        from repro.core.skyline import skyline as skyline_op

        return skyline_op(self._rdd, _as_query(query))

    def colocation(self, distance: float, min_participation: float = 0.0) -> list:
        """Co-location patterns over ``RDD[(STObject, category)]``;
        see :func:`repro.core.colocation.colocation_patterns`."""
        from repro.core.colocation import colocation_patterns

        return colocation_patterns(self._rdd, distance, min_participation)

    # -- partitioning & indexing ------------------------------------------

    def partition_by(self, partitioner: SpatialPartitioner) -> "SpatialRDDFunctions":
        """Spatially repartition; subsequent operations prune partitions."""
        return SpatialRDDFunctions(self._rdd.partition_by(partitioner))

    def live_index(
        self,
        order: int = DEFAULT_INDEX_ORDER,
        partitioner: SpatialPartitioner | None = None,
    ) -> "LiveIndexedSpatialRDDFunctions":
        """Live indexing mode: build an R-tree per partition at query time.

        The optional *partitioner* repartitions the RDD before indexing,
        matching the paper's ``liveIndex(order, partitioner)`` signature.
        """
        rdd = self._rdd if partitioner is None else self._rdd.partition_by(partitioner)
        return LiveIndexedSpatialRDDFunctions(rdd, order)

    def index(
        self,
        order: int = DEFAULT_INDEX_ORDER,
        partitioner: SpatialPartitioner | None = None,
    ) -> "IndexedSpatialRDD":
        """Persistent-index mode: materialize one STR-tree per partition.

        The returned handle answers queries immediately *and* can be
        saved, so no extra run is needed just to persist the index.
        """
        rdd = self._rdd if partitioner is None else self._rdd.partition_by(partitioner)

        def build(it: Iterator[tuple[STObject, V]]) -> Iterator[STRTree]:
            yield STRTree(((kv[0].geo.envelope, kv) for kv in it), node_capacity=order)

        tree_rdd = rdd.map_partitions(build, preserves_partitioning=True).persist()
        spatial_part = (
            rdd.partitioner
            if isinstance(rdd.partitioner, SpatialPartitioner)
            else None
        )
        return IndexedSpatialRDD(tree_rdd, spatial_part, order=order)

    # camelCase aliases matching the paper's Scala API
    containedBy = contained_by
    withinDistance = within_distance
    kNN = knn
    liveIndex = live_index
    partitionBy = partition_by


class LiveIndexedSpatialRDDFunctions:
    """Operations on a live-indexed RDD (paper's ``liveIndex`` handle).

    Nothing is materialized here: each operation builds the per-
    partition trees while it runs, queries them, and refines candidates.
    """

    def __init__(self, rdd: RDD, order: int) -> None:
        if order < 2:
            raise ValueError(f"index order must be >= 2, got {order}")
        self._rdd = rdd
        self._order = order

    @property
    def rdd(self) -> RDD:
        """The underlying (possibly repartitioned) RDD."""
        return self._rdd

    def intersects(self, query: STObject | str) -> RDD:
        """Items intersecting the query, via a per-partition live R-tree."""
        return filter_ops.filter_live_index(
            self._rdd, _as_query(query), INTERSECTS, self._order
        )

    # the paper's example calls this ``intersect`` on the indexed handle
    intersect = intersects

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query, with live indexing."""
        return filter_ops.filter_live_index(
            self._rdd, _as_query(query), CONTAINS, self._order
        )

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query, with live indexing."""
        return filter_ops.filter_live_index(
            self._rdd, _as_query(query), CONTAINED_BY, self._order
        )

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query, with live indexing."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return filter_ops.filter_live_index(
            self._rdd, _as_query(query), predicate, self._order
        )

    def join(
        self,
        other: "RDD | SpatialRDDFunctions",
        predicate: str | STPredicate = INTERSECTS,
        prune_pairs: bool = True,
    ) -> RDD:
        """Spatio-temporal join using this handle's index order."""
        other_rdd = other.rdd if isinstance(other, SpatialRDDFunctions) else other
        return join_ops.spatial_join(
            self._rdd,
            other_rdd,
            resolve_predicate(predicate),
            index_order=self._order,
            prune_pairs=prune_pairs,
        )

    containedBy = contained_by
    withinDistance = within_distance


class IndexedSpatialRDD:
    """A materialized index: one STR-tree per partition (persistent mode)."""

    def __init__(
        self,
        tree_rdd: RDD,
        partitioner: SpatialPartitioner | None = None,
        order: int | None = None,
    ) -> None:
        self._trees = tree_rdd
        self._partitioner = partitioner
        self._order = order

    @property
    def tree_rdd(self) -> RDD:
        """The underlying ``RDD[STRTree]``."""
        return self._trees

    @property
    def partitioner(self) -> SpatialPartitioner | None:
        """The spatial partitioner backing pruning, if one was used."""
        return self._partitioner

    def intersects(self, query: STObject | str) -> RDD:
        """Items intersecting the query, answered from the stored trees."""
        return filter_ops.filter_indexed(
            self._trees, _as_query(query), INTERSECTS, self._partitioner
        )

    intersect = intersects

    def contains(self, query: STObject | str) -> RDD:
        """Items that completely contain the query, from the stored trees."""
        return filter_ops.filter_indexed(
            self._trees, _as_query(query), CONTAINS, self._partitioner
        )

    def contained_by(self, query: STObject | str) -> RDD:
        """Items completely contained by the query, from the stored trees."""
        return filter_ops.filter_indexed(
            self._trees, _as_query(query), CONTAINED_BY, self._partitioner
        )

    def within_distance(
        self,
        query: STObject | str,
        max_distance: float,
        distance_fn: str | DistanceFunction = euclidean,
    ) -> RDD:
        """Items within *max_distance* of the query, from the stored trees."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return filter_ops.filter_indexed(
            self._trees, _as_query(query), predicate, self._partitioner
        )

    def knn(self, query: STObject | str, k: int) -> knn_ops.KnnResult:
        """The k nearest items, pruned through the stored trees."""
        return knn_ops.knn_indexed(
            self._trees, _as_query(query), k, self._partitioner
        )

    def entries(self) -> RDD:
        """Flatten back to the underlying ``RDD[(STObject, V)]``."""
        flattened = self._trees.flat_map(
            lambda tree: [kv for _env, kv in tree.iter_entries()]
        )
        if self._partitioner is not None:
            flattened.partitioner = self._partitioner
        return flattened

    def save(self, path: str) -> None:
        """Persist the trees (and partitioner) for reuse by other programs."""
        persistence.save_index(
            self._trees, path, self._partitioner, order=self._order
        )

    @staticmethod
    def load(context, path: str) -> "IndexedSpatialRDD":
        """Reload an index written by :meth:`save`.

        Tolerant of damage: corrupt tree parts are rebuilt live from the
        recovery sidecar and corrupt metadata merely disables pruning
        (see :mod:`repro.index.persistence`).
        """
        tree_rdd, partitioner = persistence.load_index(context, path)
        order = getattr(tree_rdd, "_order", None)
        return IndexedSpatialRDD(tree_rdd.persist(), partitioner, order=order)

    containedBy = contained_by
    withinDistance = within_distance
    kNN = knn


def spatial(rdd: RDD) -> SpatialRDDFunctions:
    """Wrap an ``RDD[(STObject, V)]`` with the spatio-temporal operations."""
    return SpatialRDDFunctions(rdd)


_INSTALLED = False

#: (RDD method name, SpatialRDDFunctions callable) pairs attached by
#: :func:`install_rdd_integration`.  ``intersect`` is the paper's
#: spelling for the filter.
_RDD_METHODS = {
    "intersect": "intersects",
    "intersects": "intersects",
    "contains": "contains",
    "containedBy": "contained_by",
    "contained_by": "contained_by",
    "withinDistance": "within_distance",
    "within_distance": "within_distance",
    "kNN": "knn",
    "knn": "knn",
    "cluster": "cluster",
    "liveIndex": "live_index",
    "live_index": "live_index",
    "index": "index",
    "spatialJoin": "join",
    "spatial_join": "join",
    "kNNJoin": "knn_join",
    "knn_join": "knn_join",
    "skyline": "skyline",
    "colocation": "colocation",
}


def install_rdd_integration() -> None:
    """Attach the spatio-temporal operators to the RDD class itself.

    The Python stand-in for STARK's implicit conversion: after this
    (idempotent) call, the operators can be invoked directly on any
    RDD whose keys are STObjects, as in the paper's listings.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    for rdd_name, fn_name in _RDD_METHODS.items():
        if hasattr(RDD, rdd_name):
            raise RuntimeError(
                f"RDD already defines {rdd_name!r}; integration would clobber it"
            )

        def make(method: str):
            def call(self: RDD, *args, **kwargs):
                return getattr(SpatialRDDFunctions(self), method)(*args, **kwargs)

            call.__name__ = method
            call.__doc__ = getattr(SpatialRDDFunctions, method).__doc__
            return call

        setattr(RDD, rdd_name, make(fn_name))
    _INSTALLED = True


install_rdd_integration()
