"""The ``STObject`` data type (paper section 2.3).

An ``STObject`` has exactly two fields: ``geo`` -- the spatial
component -- and an optional ``time`` -- the temporal component.  The
time is optional to support spatial-only data.

The constructor mirrors the paper's usage patterns:

>>> STObject("POINT (10 20)")                       # spatial only
STObject(POINT (10 20))
>>> STObject("POINT (10 20)", 1000)                 # instant
STObject(POINT (10 20), Instant(1000))
>>> STObject("POLYGON ((0 0, 1 0, 1 1, 0 0))", 10, 20)  # interval [begin, end]
STObject(POLYGON ((0 0, 1 0, 1 1, 0 0)), Interval(10, 20))

The relation methods :meth:`intersects`, :meth:`contains` and
:meth:`contained_by` implement the combined semantics of the paper's
equations (1)-(3).
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.base import Geometry
from repro.geometry.wkt import parse_wkt
from repro.temporal.interval import Interval, TemporalExpression, make_temporal


class STObject:
    """An immutable spatio-temporal value: geometry plus optional time."""

    __slots__ = ("_geo", "_time")

    def __init__(
        self,
        geo: Geometry | str,
        time=None,
        end=None,
    ) -> None:
        if isinstance(geo, str):
            geo = parse_wkt(geo)
        if not isinstance(geo, Geometry):
            raise TypeError(
                f"geo must be a Geometry or WKT string, got {type(geo).__name__}"
            )
        if geo.is_empty:
            raise ValueError("STObject requires a non-empty geometry")
        if end is not None:
            # STObject(wkt, begin, end) form from the paper's query example.
            time = Interval(float(time), float(end))
        self._geo = geo
        self._time = make_temporal(time)

    @property
    def geo(self) -> Geometry:
        """The spatial component."""
        return self._geo

    @property
    def time(self) -> Optional[TemporalExpression]:
        """The temporal component, or ``None`` for spatial-only objects."""
        return self._time

    @property
    def has_time(self) -> bool:
        """True when the object carries a temporal component."""
        return self._time is not None

    # -- combined spatio-temporal relations (paper eqs. (1)-(3)) ----------

    def intersects(self, other: "STObject") -> bool:
        """Spatial and/or temporal intersection per the combined semantics."""
        from repro.core.predicates import INTERSECTS

        return INTERSECTS.evaluate(self, other)

    def contains(self, other: "STObject") -> bool:
        """True when this object completely contains *other*."""
        from repro.core.predicates import CONTAINS

        return CONTAINS.evaluate(self, other)

    def contained_by(self, other: "STObject") -> bool:
        """The reverse operation of :meth:`contains`."""
        return other.contains(self)

    # camelCase alias matching the paper's API verbatim
    containedBy = contained_by

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STObject):
            return NotImplemented
        return self._geo == other._geo and self._time == other._time

    def __hash__(self) -> int:
        return hash((self._geo, self._time))

    def __getstate__(self) -> tuple:
        return (self._geo, self._time)

    def __setstate__(self, state: tuple) -> None:
        self._geo, self._time = state

    def __repr__(self) -> str:
        if self._time is None:
            return f"STObject({self._geo.wkt()})"
        return f"STObject({self._geo.wkt()}, {self._time!r})"
