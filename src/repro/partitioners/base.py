"""The spatial partitioner base class: bounds, extents, pruning.

STARK's key partitioning decisions (paper section 2.1):

1. A non-point geometry is assigned to **one** partition only, chosen
   by its *centroid* -- no replication, no duplicate pruning.
2. Because members can stick out of their partition's bounds, each
   partition keeps an **extent**: the bounds grown by the min/max of
   every member's envelope.  Query operators check the extent (not the
   bounds) to decide which partitions can contribute, pruning the rest.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Iterable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.spark.partitioner import Partitioner


def geometry_of(key: Any) -> Geometry:
    """Extract the geometry from a partition key.

    Keys are :class:`~repro.core.stobject.STObject` instances in normal
    use, but bare geometries are accepted so the partitioners work on
    spatial-only pipelines too.
    """
    geo = getattr(key, "geo", None)
    if isinstance(geo, Geometry):
        return geo
    if isinstance(key, Geometry):
        return key
    raise TypeError(
        f"spatial partitioner keys must be STObject or Geometry, got {type(key).__name__}"
    )


def _representative_point(geom: Geometry) -> tuple[float, float]:
    """The centroid used for single-partition assignment."""
    c = geom.centroid()
    if c.is_empty:
        raise ValueError("cannot partition an empty geometry")
    return (c.x, c.y)


class SpatialPartitioner(Partitioner):
    """Base class: concrete partitioners define the cells, this class
    manages extents and pruning.

    Subclasses call :meth:`_finish` at the end of their constructor with
    the cell bounds and the sample used to grow extents.
    """

    def __init__(self) -> None:
        self._bounds: list[Envelope] = []
        self._extents: list[Envelope] = []

    # -- subclass contract -----------------------------------------------

    @abstractmethod
    def _partition_of_point(self, x: float, y: float) -> int:
        """The cell containing (or nearest to) a point; total over R^2."""

    # -- Partitioner API ----------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._bounds)

    def get_partition(self, key: Any) -> int:
        x, y = _representative_point(geometry_of(key))
        return self._partition_of_point(x, y)

    def partition_of_point(self, x: float, y: float) -> int:
        """Public point-lookup (used by kNN's home-partition phase)."""
        return self._partition_of_point(x, y)

    # -- bounds / extents ------------------------------------------------

    def partition_bounds(self, pid: int) -> Envelope:
        """The designed region of partition *pid*."""
        return self._bounds[pid]

    def partition_extent(self, pid: int) -> Envelope:
        """The true covering region of *pid*: bounds grown by its members.

        Falls back to the bounds when no member has been observed.
        """
        extent = self._extents[pid]
        return extent if not extent.is_empty else self._bounds[pid]

    def _finish(self, bounds: Sequence[Envelope], sample: Iterable[Any]) -> None:
        """Record cell bounds and grow per-partition extents from *sample*.

        The sample is the data the partitioner was constructed from --
        for exact pruning semantics that is the full dataset, matching
        STARK where partitioning is a full pass anyway (paper: "with a
        single pass over the data, each item is assigned").
        """
        self._bounds = list(bounds)
        self._extents = [env for env in self._bounds]
        for key in sample:
            geom = geometry_of(key)
            if geom.is_empty:
                continue
            pid = self.get_partition(key)
            self._extents[pid] = self._extents[pid].merge(geom.envelope)

    # -- pruning -----------------------------------------------------------

    def partitions_intersecting(
        self, query: Envelope, use_extent: bool = True
    ) -> list[int]:
        """Partition ids whose extent (or bounds) intersects *query*.

        This is the pruning decision from the paper: "we decide which
        partition has to be checked during query execution based on this
        extent information and prune partitions that cannot contribute".
        """
        region = self.partition_extent if use_extent else self.partition_bounds
        return [
            pid
            for pid in range(self.num_partitions)
            if region(pid).intersects(query)
        ]

    def partitions_within_distance(
        self, x: float, y: float, max_distance: float, use_extent: bool = True
    ) -> list[int]:
        """Partition ids whose extent comes within *max_distance* of a point."""
        region = self.partition_extent if use_extent else self.partition_bounds
        return [
            pid
            for pid in range(self.num_partitions)
            if region(pid).distance_to_point(x, y) <= max_distance
        ]

    # -- diagnostics ---------------------------------------------------------

    def imbalance(self, keys: Iterable[Any]) -> float:
        """Max/mean ratio of partition sizes for *keys* (1.0 = perfectly even).

        The statistic behind the paper's motivation: "if the partition
        sizes are not balanced, a single worker node has to perform all
        the work while other nodes idle".
        """
        counts = [0] * self.num_partitions
        total = 0
        for key in keys:
            counts[self.get_partition(key)] += 1
            total += 1
        if total == 0:
            return 1.0
        mean = total / self.num_partitions
        return max(counts) / mean if mean else 1.0

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other._bounds == self._bounds  # type: ignore[attr-defined]
            and other._extents == self._extents  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self), tuple(self._bounds)))
