"""Spatial partitioners (paper section 2.1).

Both partitioners implement the engine's
:class:`~repro.spark.partitioner.Partitioner` contract, so they are
applied with the RDD's ``partition_by`` method exactly as STARK's are
on Spark.  Keys are expected to be
:class:`~repro.core.stobject.STObject` (or bare geometries); extended
geometries are assigned to exactly **one** partition by centroid, and
each partition maintains an **extent** -- its bounds grown to the true
min/max of its members -- used for partition pruning at query time.
"""

from repro.partitioners.base import SpatialPartitioner
from repro.partitioners.bsp import BSPartitioner
from repro.partitioners.grid import GridPartitioner
from repro.partitioners.quadtree import QuadTreePartitioner
from repro.partitioners.temporal import (
    SpatioTemporalPartitioner,
    TemporalRangePartitioner,
)

__all__ = [
    "BSPartitioner",
    "GridPartitioner",
    "QuadTreePartitioner",
    "SpatialPartitioner",
    "SpatioTemporalPartitioner",
    "TemporalRangePartitioner",
]
