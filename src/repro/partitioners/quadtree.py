"""A quadtree spatial partitioner.

GeoSpark's partitioner family includes a quadtree; STARK's evaluation
compares against it, so the reproduction provides one on STARK's own
centroid-assignment model for the partitioner ablation: a region splits
into its four quadrants whenever it holds more than
``max_cost_per_partition`` items (and is still larger than
``min_side_length``), recursing into dense areas like the BSP but with
fixed split geometry (always the center, always 4 ways) instead of
cost-balanced cuts.

The interesting ablation contrast: quadtree splits are cheap and
regular but blind to where the mass actually sits inside a quadrant,
so on skewed data it needs more partitions than BSP for the same
balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.geometry.envelope import Envelope
from repro.partitioners.base import (
    SpatialPartitioner,
    _representative_point,
    geometry_of,
)
from repro.partitioners.grid import _universe_of


@dataclass
class _QuadNode:
    """Internal node: center cut; children in quadrant order SW SE NW NE."""

    cx: float
    cy: float
    children: "list[_QuadNode | int]"


class QuadTreePartitioner(SpatialPartitioner):
    """Recursive 4-way splitting driven by a per-region item budget."""

    def __init__(
        self,
        sample: Iterable[Any],
        max_cost_per_partition: int = 1000,
        max_depth: int = 12,
        universe: Envelope | None = None,
    ) -> None:
        super().__init__()
        if max_cost_per_partition < 1:
            raise ValueError("max_cost_per_partition must be >= 1")
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        keys = list(sample)
        self._max_cost = max_cost_per_partition
        self._max_depth = max_depth
        self._universe = universe or _universe_of(keys)

        points = []
        for key in keys:
            geom = geometry_of(key)
            if not geom.is_empty:
                points.append(_representative_point(geom))

        leaves: list[Envelope] = []
        self._tree = self._build(self._universe, points, 0, leaves)
        self._finish(leaves, keys)

    @staticmethod
    def from_rdd(
        rdd,
        max_cost_per_partition: int = 1000,
        max_depth: int = 12,
        universe: Envelope | None = None,
    ) -> "QuadTreePartitioner":
        return QuadTreePartitioner(
            rdd.keys().collect(), max_cost_per_partition, max_depth, universe
        )

    def _build(
        self,
        region: Envelope,
        points: list[tuple[float, float]],
        depth: int,
        leaves: list[Envelope],
    ) -> "_QuadNode | int":
        degenerate = region.width <= 0 or region.height <= 0
        if len(points) <= self._max_cost or depth >= self._max_depth or degenerate:
            leaves.append(region)
            return len(leaves) - 1
        cx, cy = region.center()
        quadrants = [
            Envelope(region.min_x, region.min_y, cx, cy),  # SW
            Envelope(cx, region.min_y, region.max_x, cy),  # SE
            Envelope(region.min_x, cy, cx, region.max_y),  # NW
            Envelope(cx, cy, region.max_x, region.max_y),  # NE
        ]
        buckets: list[list[tuple[float, float]]] = [[], [], [], []]
        for p in points:
            buckets[self._quadrant_of(p[0], p[1], cx, cy)].append(p)
        node = _QuadNode(cx, cy, [])
        for quadrant, bucket in zip(quadrants, buckets):
            node.children.append(self._build(quadrant, bucket, depth + 1, leaves))
        return node

    @staticmethod
    def _quadrant_of(x: float, y: float, cx: float, cy: float) -> int:
        # Ties on the center lines go to the lower/left quadrant, making
        # assignment a total function consistent with _build's bucketing.
        return (1 if x > cx else 0) + (2 if y > cy else 0)

    def _partition_of_point(self, x: float, y: float) -> int:
        node = self._tree
        while isinstance(node, _QuadNode):
            node = node.children[self._quadrant_of(x, y, node.cx, node.cy)]
        return node

    @property
    def universe(self) -> Envelope:
        return self._universe

    @property
    def max_cost_per_partition(self) -> int:
        return self._max_cost

    def __repr__(self) -> str:
        return (
            f"QuadTreePartitioner(partitions={self.num_partitions}, "
            f"max_cost={self._max_cost})"
        )
