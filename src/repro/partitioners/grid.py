"""The fixed grid partitioner (paper section 2.1).

The data space is divided into ``partitions_per_dimension`` equal
intervals per dimension, producing a grid of rectangular cells.  Cell
bounds are computed first; afterwards a single pass assigns each item
to the cell containing its centroid.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.geometry.envelope import Envelope
from repro.partitioners.base import SpatialPartitioner, geometry_of


def _universe_of(sample: list[Any]) -> Envelope:
    env = Envelope.empty()
    for key in sample:
        env = env.merge(geometry_of(key).envelope)
    if env.is_empty:
        raise ValueError("cannot build a spatial partitioner from empty data")
    return env


class GridPartitioner(SpatialPartitioner):
    """A fixed ``n x n`` grid over the data space.

    ``sample`` is the dataset (keys: STObject/Geometry, or (key, value)
    pairs via ``from_rdd``); the universe defaults to its bounding box.
    Points outside the universe (possible when partitioning data the
    universe was not computed from) are clamped into the border cells.
    """

    def __init__(
        self,
        sample: Iterable[Any],
        partitions_per_dimension: int = 4,
        universe: Envelope | None = None,
    ) -> None:
        super().__init__()
        if partitions_per_dimension < 1:
            raise ValueError("partitions_per_dimension must be >= 1")
        keys = [key for key in sample]
        self._ppd = partitions_per_dimension
        self._universe = universe or _universe_of(keys)
        if self._universe.is_empty:
            raise ValueError("universe envelope is empty")

        ppd = self._ppd
        u = self._universe
        # Guard degenerate (zero-width/height) universes.
        self._cell_w = (u.width / ppd) if u.width > 0 else 1.0
        self._cell_h = (u.height / ppd) if u.height > 0 else 1.0
        bounds = []
        for iy in range(ppd):
            for ix in range(ppd):
                bounds.append(
                    Envelope(
                        u.min_x + ix * self._cell_w,
                        u.min_y + iy * self._cell_h,
                        u.min_x + (ix + 1) * self._cell_w,
                        u.min_y + (iy + 1) * self._cell_h,
                    )
                )
        self._finish(bounds, keys)

    @staticmethod
    def from_rdd(
        rdd, partitions_per_dimension: int = 4, universe: Envelope | None = None
    ) -> "GridPartitioner":
        """Build from an ``RDD[(STObject, V)]`` (collects the keys)."""
        return GridPartitioner(
            rdd.keys().collect(), partitions_per_dimension, universe
        )

    @property
    def partitions_per_dimension(self) -> int:
        return self._ppd

    @property
    def universe(self) -> Envelope:
        return self._universe

    def _partition_of_point(self, x: float, y: float) -> int:
        u = self._universe
        # A subnormal-width universe makes the division overflow to
        # inf for far-away points; treat non-finite ratios as "past the
        # edge" so the clamp below still lands in a border cell.
        fx = (x - u.min_x) / self._cell_w
        fy = (y - u.min_y) / self._cell_h
        ix = int(fx) if math.isfinite(fx) else (0 if fx < 0 else self._ppd - 1)
        iy = int(fy) if math.isfinite(fy) else (0 if fy < 0 else self._ppd - 1)
        # Clamp: the universe's max edge belongs to the last cell, and
        # out-of-universe points go to the nearest border cell.
        ix = min(max(ix, 0), self._ppd - 1)
        iy = min(max(iy, 0), self._ppd - 1)
        return iy * self._ppd + ix

    def __repr__(self) -> str:
        return (
            f"GridPartitioner({self._ppd}x{self._ppd}, universe={self._universe!r})"
        )
