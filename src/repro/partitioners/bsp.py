"""The cost-based binary space partitioner (paper section 2.1).

Based on the partitioning of MR-DBSCAN [He et al. 2014], as cited by
the paper: the space is recursively divided into two partitions of
(nearly) equal *cost*, where cost is the number of contained items.
The recursion stops when a partition's cost no longer exceeds
``max_cost_per_partition`` or the partition has reached the granularity
threshold ``side_length`` (a minimum side length).

Large sparse regions therefore stay whole while dense regions split
repeatedly -- exactly the skew-handling behaviour that separates BSP
from the fixed grid in the evaluation (and in our Figure-4
reproduction).

The implementation builds a fine histogram of item counts at
``side_length`` resolution (with numpy prefix sums for O(1) region
costs), then grows a binary split tree over histogram cells.  Lookups
descend the split tree, so ``get_partition`` is O(depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.geometry.envelope import Envelope
from repro.partitioners.base import (
    SpatialPartitioner,
    _representative_point,
    geometry_of,
)
from repro.partitioners.grid import _universe_of


@dataclass
class _Split:
    """An internal node of the BSP tree: cut at cell index along an axis."""

    axis: int  # 0 = x, 1 = y
    cut: int  # first cell index of the high side
    low: "_Split | int"
    high: "_Split | int"


class BSPartitioner(SpatialPartitioner):
    """Cost-based binary space partitioning.

    Parameters
    ----------
    sample:
        The dataset keys (STObject or Geometry).
    max_cost_per_partition:
        The cost threshold: partitions holding more items keep splitting.
    side_length:
        Granularity threshold: no partition side becomes smaller than
        this (also the histogram resolution).
    universe:
        Optional explicit data space; defaults to the sample's bounding
        box.
    """

    def __init__(
        self,
        sample: Iterable[Any],
        max_cost_per_partition: int = 1000,
        side_length: float | None = None,
        universe: Envelope | None = None,
    ) -> None:
        super().__init__()
        if max_cost_per_partition < 1:
            raise ValueError("max_cost_per_partition must be >= 1")
        keys = list(sample)
        self._max_cost = max_cost_per_partition
        self._universe = universe or _universe_of(keys)
        u = self._universe

        longest_side = max(u.width, u.height)
        if side_length is None:
            # Default granularity: 1/64 of the longest side -- fine
            # enough to separate clusters, coarse enough to keep the
            # histogram small.
            side_length = longest_side / 64.0 if longest_side > 0 else 1.0
        if side_length <= 0:
            raise ValueError("side_length must be positive")
        self._side_length = side_length

        self._nx = max(1, int(np.ceil(u.width / side_length))) if u.width > 0 else 1
        self._ny = max(1, int(np.ceil(u.height / side_length))) if u.height > 0 else 1

        histogram = np.zeros((self._nx, self._ny), dtype=np.int64)
        for key in keys:
            geom = geometry_of(key)
            if geom.is_empty:
                continue
            x, y = _representative_point(geom)
            histogram[self._cell_of(x, y)] += 1
        # 2D prefix sums with a zero border: cost of [x0:x1, y0:y1] is
        # P[x1,y1] - P[x0,y1] - P[x1,y0] + P[x0,y0].
        self._prefix = np.zeros((self._nx + 1, self._ny + 1), dtype=np.int64)
        self._prefix[1:, 1:] = histogram.cumsum(axis=0).cumsum(axis=1)

        leaves: list[tuple[int, int, int, int]] = []
        self._tree = self._build(0, 0, self._nx, self._ny, leaves)
        self._finish([self._region_envelope(*leaf) for leaf in leaves], keys)

    @staticmethod
    def from_rdd(
        rdd,
        max_cost_per_partition: int = 1000,
        side_length: float | None = None,
        universe: Envelope | None = None,
    ) -> "BSPartitioner":
        """Build from an ``RDD[(STObject, V)]`` (collects the keys)."""
        return BSPartitioner(
            rdd.keys().collect(), max_cost_per_partition, side_length, universe
        )

    # -- construction --------------------------------------------------------

    def _region_cost(self, x0: int, y0: int, x1: int, y1: int) -> int:
        p = self._prefix
        return int(p[x1, y1] - p[x0, y1] - p[x1, y0] + p[x0, y0])

    def _build(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        leaves: list[tuple[int, int, int, int]],
    ) -> "_Split | int":
        cost = self._region_cost(x0, y0, x1, y1)
        can_split_x = x1 - x0 >= 2
        can_split_y = y1 - y0 >= 2
        if cost <= self._max_cost or not (can_split_x or can_split_y):
            leaves.append((x0, y0, x1, y1))
            return len(leaves) - 1

        best: tuple[int, int, int] | None = None  # (imbalance, axis, cut)
        if can_split_x:
            for cut in range(x0 + 1, x1):
                low_cost = self._region_cost(x0, y0, cut, y1)
                imbalance = abs(2 * low_cost - cost)
                if best is None or imbalance < best[0]:
                    best = (imbalance, 0, cut)
        if can_split_y:
            for cut in range(y0 + 1, y1):
                low_cost = self._region_cost(x0, y0, x1, cut)
                imbalance = abs(2 * low_cost - cost)
                if best is None or imbalance < best[0]:
                    best = (imbalance, 1, cut)

        assert best is not None
        _imbalance, axis, cut = best
        if axis == 0:
            low = self._build(x0, y0, cut, y1, leaves)
            high = self._build(cut, y0, x1, y1, leaves)
        else:
            low = self._build(x0, y0, x1, cut, leaves)
            high = self._build(x0, cut, x1, y1, leaves)
        return _Split(axis, cut, low, high)

    def _region_envelope(self, x0: int, y0: int, x1: int, y1: int) -> Envelope:
        u = self._universe
        step_x = u.width / self._nx if u.width > 0 else 1.0
        step_y = u.height / self._ny if u.height > 0 else 1.0
        return Envelope(
            u.min_x + x0 * step_x,
            u.min_y + y0 * step_y,
            u.min_x + x1 * step_x if x1 < self._nx else u.max_x,
            u.min_y + y1 * step_y if y1 < self._ny else u.max_y,
        )

    # -- lookup ---------------------------------------------------------------

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        u = self._universe
        step_x = u.width / self._nx if u.width > 0 else 1.0
        step_y = u.height / self._ny if u.height > 0 else 1.0
        ix = int((x - u.min_x) / step_x) if step_x > 0 else 0
        iy = int((y - u.min_y) / step_y) if step_y > 0 else 0
        return (min(max(ix, 0), self._nx - 1), min(max(iy, 0), self._ny - 1))

    def _partition_of_point(self, x: float, y: float) -> int:
        ix, iy = self._cell_of(x, y)
        node = self._tree
        while isinstance(node, _Split):
            coord = ix if node.axis == 0 else iy
            node = node.low if coord < node.cut else node.high
        return node

    # -- diagnostics --------------------------------------------------------

    @property
    def universe(self) -> Envelope:
        return self._universe

    @property
    def max_cost_per_partition(self) -> int:
        return self._max_cost

    @property
    def side_length(self) -> float:
        return self._side_length

    def __repr__(self) -> str:
        return (
            f"BSPartitioner(partitions={self.num_partitions}, "
            f"max_cost={self._max_cost}, side_length={self._side_length:g})"
        )
