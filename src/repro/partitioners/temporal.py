"""Temporal partitioning (the paper's stated future work).

Paper section 2.1: "In its current version, STARK only considers the
spatial component for partitioning."  This module supplies the missing
half as an extension:

- :class:`TemporalRangePartitioner` -- equi-depth time slices (split
  points at sample quantiles, so skewed event streams stay balanced),
  with per-partition temporal *extents* grown by the members' true
  intervals, mirroring the spatial extent mechanism, and
- :class:`SpatioTemporalPartitioner` -- the product of a spatial
  partitioner and a temporal one: partition id = (spatial cell,
  time slice).

Both implement the engine's ``Partitioner`` contract and plug into
``partition_by``; the filter operators prune on their extents just as
they do for spatial partitioners (see ``repro.core.filter``).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from repro.core.stobject import STObject
from repro.partitioners.base import SpatialPartitioner
from repro.spark.partitioner import Partitioner
from repro.temporal.interval import Interval, TemporalExpression


def _temporal_of(key: Any) -> TemporalExpression:
    time = getattr(key, "time", None)
    if time is None:
        raise ValueError(
            "temporal partitioning requires keys with a temporal component; "
            f"got {key!r}"
        )
    return time


class TemporalRangePartitioner(Partitioner):
    """Equi-depth temporal range partitioning over interval start times.

    ``num_partitions`` slices are bounded by the (1/n, 2/n, ...)
    quantiles of the sample's start times.  An item belongs to the
    slice containing its start; its full interval grows that slice's
    *extent*, which is what pruning consults (an interval can stick out
    of its slice exactly like a polygon sticks out of its grid cell).
    """

    def __init__(self, sample: Iterable[Any], num_partitions: int = 4) -> None:
        if num_partitions < 1:
            raise ValueError("need at least 1 partition")
        sample = list(sample)
        starts = sorted(_temporal_of(key).start for key in sample)
        if not starts:
            raise ValueError("cannot build a temporal partitioner from empty data")
        self._bounds_cuts = [
            starts[min(len(starts) - 1, (len(starts) * i) // num_partitions)]
            for i in range(1, num_partitions)
        ]
        self._n = num_partitions
        self._extents: list[Interval | None] = [None] * num_partitions
        for key in sample:
            time = _temporal_of(key)
            pid = self.get_partition(key)
            extent = self._extents[pid]
            member = Interval(time.start, time.end)
            self._extents[pid] = member if extent is None else extent.merge(member)

    @staticmethod
    def from_rdd(rdd, num_partitions: int = 4) -> "TemporalRangePartitioner":
        """Build from an ``RDD[(STObject, V)]`` (collects the keys)."""
        return TemporalRangePartitioner(rdd.keys().collect(), num_partitions)

    @property
    def num_partitions(self) -> int:
        return self._n

    def get_partition(self, key: Any) -> int:
        return bisect.bisect_right(self._bounds_cuts, _temporal_of(key).start)

    def partition_extent(self, pid: int) -> Interval | None:
        """The temporal extent of slice *pid*; None for an empty slice."""
        return self._extents[pid]

    def partitions_intersecting(self, query: TemporalExpression) -> list[int]:
        """Slices whose extent intersects the query's temporal extent."""
        out = []
        for pid, extent in enumerate(self._extents):
            if extent is not None and extent.start <= query.end and query.start <= extent.end:
                out.append(pid)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is TemporalRangePartitioner
            and other._bounds_cuts == self._bounds_cuts
            and other._extents == self._extents
        )

    def __hash__(self) -> int:
        return hash((TemporalRangePartitioner, tuple(self._bounds_cuts)))

    def __repr__(self) -> str:
        return f"TemporalRangePartitioner({self._n} slices)"


class SpatioTemporalPartitioner(Partitioner):
    """The product of a spatial partitioner and a temporal one.

    ``pid = spatial_pid * time_slices + time_slice``.  Queries prune on
    both dimensions independently, so a small window in space *and*
    time touches only the matching (cell, slice) combinations.
    """

    def __init__(
        self,
        spatial: SpatialPartitioner,
        temporal: TemporalRangePartitioner,
    ) -> None:
        self._spatial = spatial
        self._temporal = temporal

    @staticmethod
    def from_rdd(
        rdd,
        spatial_factory,
        time_slices: int = 4,
    ) -> "SpatioTemporalPartitioner":
        """Build both halves from one key collection.

        ``spatial_factory`` maps the key sample to a SpatialPartitioner,
        e.g. ``lambda keys: BSPartitioner(keys, max_cost_per_partition=500)``.
        """
        keys = rdd.keys().collect()
        return SpatioTemporalPartitioner(
            spatial_factory(keys), TemporalRangePartitioner(keys, time_slices)
        )

    @property
    def spatial(self) -> SpatialPartitioner:
        return self._spatial

    @property
    def temporal(self) -> TemporalRangePartitioner:
        return self._temporal

    @property
    def num_partitions(self) -> int:
        return self._spatial.num_partitions * self._temporal.num_partitions

    def get_partition(self, key: Any) -> int:
        spatial_pid = self._spatial.get_partition(key)
        time_pid = self._temporal.get_partition(key)
        return spatial_pid * self._temporal.num_partitions + time_pid

    def partitions_intersecting(
        self, region, time_query: TemporalExpression | None
    ) -> list[int]:
        """Product pruning: spatial extent x temporal extent."""
        spatial_keep = self._spatial.partitions_intersecting(region)
        if time_query is None:
            time_keep = list(range(self._temporal.num_partitions))
        else:
            time_keep = self._temporal.partitions_intersecting(time_query)
        slices = self._temporal.num_partitions
        return [s * slices + t for s in spatial_keep for t in time_keep]

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is SpatioTemporalPartitioner
            and other._spatial == self._spatial
            and other._temporal == self._temporal
        )

    def __hash__(self) -> int:
        return hash((SpatioTemporalPartitioner, self._spatial, self._temporal))

    def __repr__(self) -> str:
        return (
            f"SpatioTemporalPartitioner({self._spatial!r} x {self._temporal!r})"
        )
