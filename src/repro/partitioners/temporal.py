"""Temporal partitioning (the paper's stated future work).

Paper section 2.1: "In its current version, STARK only considers the
spatial component for partitioning."  This module supplies the missing
half as an extension:

- :class:`TemporalRangePartitioner` -- equi-depth time slices (split
  points at sample quantiles, so skewed event streams stay balanced),
  with per-partition temporal *extents* grown by the members' true
  intervals, mirroring the spatial extent mechanism, and
- :class:`SpatioTemporalPartitioner` -- the product of a spatial
  partitioner and a temporal one: partition id = (spatial cell,
  time slice).

Both implement the engine's ``Partitioner`` contract and plug into
``partition_by``; the filter operators prune on their extents just as
they do for spatial partitioners (see ``repro.core.filter``).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from repro.core.stobject import STObject
from repro.partitioners.base import SpatialPartitioner
from repro.spark.partitioner import Partitioner
from repro.temporal.interval import Interval, TemporalExpression


def _temporal_of(key: Any) -> TemporalExpression:
    time = getattr(key, "time", None)
    if time is None:
        raise ValueError(
            "temporal partitioning requires keys with a temporal component; "
            f"got {key!r}"
        )
    return time


class TemporalRangePartitioner(Partitioner):
    """Equi-depth temporal range partitioning over interval start times.

    ``num_partitions`` slices are bounded by the (1/n, 2/n, ...)
    quantiles of the sample's start times.  An item belongs to the
    slice containing its start; its full interval grows that slice's
    *extent*, which is what pruning consults (an interval can stick out
    of its slice exactly like a polygon sticks out of its grid cell).
    """

    def __init__(self, sample: Iterable[Any], num_partitions: int = 4) -> None:
        if num_partitions < 1:
            raise ValueError("need at least 1 partition")
        sample = list(sample)
        starts = sorted(_temporal_of(key).start for key in sample)
        if not starts:
            raise ValueError("cannot build a temporal partitioner from empty data")
        self._bounds_cuts = [
            starts[min(len(starts) - 1, (len(starts) * i) // num_partitions)]
            for i in range(1, num_partitions)
        ]
        self._n = num_partitions
        self._extents: list[Interval | None] = [None] * num_partitions
        for key in sample:
            time = _temporal_of(key)
            pid = self.get_partition(key)
            extent = self._extents[pid]
            member = Interval(time.start, time.end)
            self._extents[pid] = member if extent is None else extent.merge(member)

    #: Sample size ``from_rdd`` aims for when choosing the slice cuts.
    DEFAULT_SAMPLE_TARGET = 2000

    @staticmethod
    def from_rdd(
        rdd, num_partitions: int = 4, sample_target: int | None = None
    ) -> "TemporalRangePartitioner":
        """Build from an ``RDD[(STObject, V)]`` without collecting every key.

        The slice cut points only need *approximate* quantiles, so they
        come from a driver-side sample of roughly *sample_target* keys
        (the whole dataset no longer funnels through the driver).  The
        per-slice extents, however, must be **exact** for pruning to be
        lossless -- one distributed refinement pass grows them with the
        true min/max interval of every member.
        """
        target = sample_target or TemporalRangePartitioner.DEFAULT_SAMPLE_TARGET
        sample = rdd.keys().collect_sample(target)
        part = TemporalRangePartitioner(sample, num_partitions)
        part.refine_extents(rdd)
        return part

    def refine_extents(self, rdd) -> None:
        """Replace the sampled extents with exact ones from *rdd*.

        Each partition reduces its members to a tiny ``pid -> (lo, hi)``
        dict; the driver merges them.  Required after building from a
        sample: an unsampled member's interval can stick out of the
        sampled extent, and pruning on a too-small extent loses results.
        """
        cuts = list(self._bounds_cuts)

        def local_extents(it):
            ext: dict[int, tuple[float, float]] = {}
            for kv in it:
                time = _temporal_of(kv[0])
                pid = bisect.bisect_right(cuts, time.start)
                cur = ext.get(pid)
                if cur is None:
                    ext[pid] = (time.start, time.end)
                else:
                    ext[pid] = (min(cur[0], time.start), max(cur[1], time.end))
            yield ext

        merged: list[tuple[float, float] | None] = [None] * self._n
        for local in rdd.map_partitions(local_extents).collect():
            for pid, (lo, hi) in local.items():
                cur = merged[pid]
                merged[pid] = (
                    (lo, hi) if cur is None else (min(cur[0], lo), max(cur[1], hi))
                )
        self._extents = [
            Interval(pair[0], pair[1]) if pair is not None else None
            for pair in merged
        ]

    @property
    def num_partitions(self) -> int:
        return self._n

    def get_partition(self, key: Any) -> int:
        return bisect.bisect_right(self._bounds_cuts, _temporal_of(key).start)

    def partition_extent(self, pid: int) -> Interval | None:
        """The temporal extent of slice *pid*; None for an empty slice."""
        return self._extents[pid]

    def partitions_intersecting(self, query: TemporalExpression) -> list[int]:
        """Slices whose extent intersects the query's temporal extent."""
        out = []
        for pid, extent in enumerate(self._extents):
            if extent is not None and extent.start <= query.end and query.start <= extent.end:
                out.append(pid)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is TemporalRangePartitioner
            and other._bounds_cuts == self._bounds_cuts
            and other._extents == self._extents
        )

    def __hash__(self) -> int:
        return hash((TemporalRangePartitioner, tuple(self._bounds_cuts)))

    def __repr__(self) -> str:
        return f"TemporalRangePartitioner({self._n} slices)"


class SpatioTemporalPartitioner(Partitioner):
    """The product of a spatial partitioner and a temporal one.

    ``pid = spatial_pid * time_slices + time_slice``.  Queries prune on
    both dimensions independently, so a small window in space *and*
    time touches only the matching (cell, slice) combinations.
    """

    def __init__(
        self,
        spatial: SpatialPartitioner,
        temporal: TemporalRangePartitioner,
    ) -> None:
        self._spatial = spatial
        self._temporal = temporal

    @staticmethod
    def from_rdd(
        rdd,
        spatial_factory,
        time_slices: int = 4,
        sample_target: int | None = None,
    ) -> "SpatioTemporalPartitioner":
        """Build both halves from one key *sample*, then refine extents.

        ``spatial_factory`` maps the key sample to a SpatialPartitioner,
        e.g. ``lambda keys: BSPartitioner(keys, max_cost_per_partition=500)``.
        Like :meth:`TemporalRangePartitioner.from_rdd`, only the cell /
        slice boundaries come from the sample; one distributed pass then
        grows both the spatial and temporal extents with every true
        member so pruning stays lossless.
        """
        target = sample_target or TemporalRangePartitioner.DEFAULT_SAMPLE_TARGET
        keys = rdd.keys().collect_sample(target)
        part = SpatioTemporalPartitioner(
            spatial_factory(keys), TemporalRangePartitioner(keys, time_slices)
        )
        part.refine_extents(rdd)
        return part

    def refine_extents(self, rdd) -> None:
        """Grow both halves' extents with every member of *rdd* (one pass).

        Needed whenever the partitioner was built from a sample: an
        unsampled member's envelope or interval can stick out of the
        sampled extents, and pruning on a too-small extent loses
        results.  Extents only ever grow, so refining is always safe.
        """
        spatial, temporal = self._spatial, self._temporal

        def local(it):
            s_ext: dict[int, Any] = {}
            t_ext: dict[int, tuple[float, float]] = {}
            for kv in it:
                key = kv[0]
                spid = spatial.get_partition(key)
                env = key.geo.envelope
                cur = s_ext.get(spid)
                s_ext[spid] = env if cur is None else cur.merge(env)
                time = _temporal_of(key)
                tpid = temporal.get_partition(key)
                pair = t_ext.get(tpid)
                if pair is None:
                    t_ext[tpid] = (time.start, time.end)
                else:
                    t_ext[tpid] = (
                        min(pair[0], time.start),
                        max(pair[1], time.end),
                    )
            yield (s_ext, t_ext)

        for s_ext, t_ext in rdd.map_partitions(local).collect():
            for pid, env in s_ext.items():
                spatial._extents[pid] = spatial._extents[pid].merge(env)
            for pid, (lo, hi) in t_ext.items():
                extent = temporal._extents[pid]
                member = Interval(lo, hi)
                temporal._extents[pid] = (
                    member if extent is None else extent.merge(member)
                )

    @property
    def spatial(self) -> SpatialPartitioner:
        return self._spatial

    @property
    def temporal(self) -> TemporalRangePartitioner:
        return self._temporal

    @property
    def num_partitions(self) -> int:
        return self._spatial.num_partitions * self._temporal.num_partitions

    def get_partition(self, key: Any) -> int:
        spatial_pid = self._spatial.get_partition(key)
        time_pid = self._temporal.get_partition(key)
        return spatial_pid * self._temporal.num_partitions + time_pid

    def partitions_intersecting(
        self, region, time_query: TemporalExpression | None
    ) -> list[int]:
        """Product pruning: spatial extent x temporal extent."""
        spatial_keep = self._spatial.partitions_intersecting(region)
        if time_query is None:
            time_keep = list(range(self._temporal.num_partitions))
        else:
            time_keep = self._temporal.partitions_intersecting(time_query)
        slices = self._temporal.num_partitions
        return [s * slices + t for s in spatial_keep for t in time_keep]

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is SpatioTemporalPartitioner
            and other._spatial == self._spatial
            and other._temporal == self._temporal
        )

    def __hash__(self) -> int:
        return hash((SpatioTemporalPartitioner, self._spatial, self._temporal))

    def __repr__(self) -> str:
        return (
            f"SpatioTemporalPartitioner({self._spatial!r} x {self._temporal!r})"
        )
