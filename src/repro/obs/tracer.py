"""Execution tracing: nested spans over jobs, shuffles and tasks.

The observability layer the engine reports itself through.  A
:class:`Tracer` records a tree of :class:`Span` objects:

- the scheduler opens a ``job`` span per :meth:`SparkContext.run_job`
  and a ``task`` span per partition computed, with per-task record
  counts and cache-hit / partition-pruning attribution;
- the shuffle manager opens a ``shuffle`` span around each map side,
  attributing the records written;
- every operator in :mod:`repro.core` opens a tagged ``operator`` span
  (``knn``, ``join.plan``, ``dbscan.merge``, ...), so a single query
  yields a full job → stage/shuffle → task execution trace.

Tracing is **off by default**: contexts start with :data:`NULL_TRACER`,
whose whole API is no-ops, and every hot-path call site additionally
guards on ``tracer.enabled`` so the disabled path costs one attribute
read.  Enable with ``SparkContext(tracing=True)`` or
``sc.enable_tracing()``.

Spans nest through a per-thread stack.  Tasks may run on pool threads;
the scheduler parents their spans to the job span explicitly, and any
nested job a task triggers (e.g. a shuffle map side) lands under that
task's span via the worker thread's own stack -- so the tree reflects
the real execution structure in both executor modes.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One timed node of the trace tree."""

    name: str
    #: Structural role: ``root`` | ``job`` | ``task`` | ``shuffle`` | ``operator``.
    kind: str = "operator"
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds; still-open spans measure up to now."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a counter-style attribute."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def note_failure(self, error: str) -> None:
        """Record one failed attempt: bumps ``failures``, keeps the error.

        The scheduler calls this on task spans as it retries, so a trace
        of a chaos run shows exactly which tasks failed, how often, and
        with what final error.
        """
        self.add("failures", 1)
        self.attrs["last_error"] = error

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (and self) with the given name, pre-order."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready representation of the subtree."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects spans into a tree rooted at :attr:`root`.

    Thread-safe: concurrent tasks append children under a lock, and the
    "current span" is tracked per thread so nesting follows each
    thread's own call structure.
    """

    enabled = True

    def __init__(self) -> None:
        self.root = Span("trace", kind="root", start=time.perf_counter())
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span:
        """The innermost open span on this thread (the root if none)."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    @contextmanager
    def span(
        self, name: str, kind: str = "operator", parent: Span | None = None, **attrs
    ):
        """Open a child span of *parent* (default: this thread's current).

        Passing *parent* explicitly is how the scheduler attaches task
        spans running on pool threads to the driver's job span.
        """
        node = Span(name, kind=kind, attrs=dict(attrs), start=time.perf_counter())
        target = parent if parent is not None else self.current()
        with self._lock:
            target.children.append(node)
        stack = self._stack()
        stack.append(node)
        try:
            yield node
        finally:
            stack.pop()
            node.end = time.perf_counter()

    # -- attribution -------------------------------------------------------

    def annotate(self, **attrs) -> None:
        """Set attributes on the current span."""
        self.current().attrs.update(attrs)

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a counter attribute on the current span."""
        with self._lock:
            self.current().add(key, amount)

    def add_to(self, span: Span, key: str, amount: int = 1) -> None:
        """Increment a counter on a specific span (cross-thread safe)."""
        with self._lock:
            span.add(key, amount)

    def attach(self, parent: Span, span: Span) -> None:
        """Graft an externally built span subtree under *parent*.

        The processes executor records task spans inside the worker,
        ships them home and re-parents them under the job span here.
        """
        with self._lock:
            parent.children.append(span)

    # -- export ------------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded spans and restart the clock."""
        self.root = Span("trace", kind="root", start=time.perf_counter())
        self._local = threading.local()

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict()

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def export(self, path: str) -> None:
        """Write the trace as JSON to *path*."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    def render(self) -> str:
        """The human-readable tree report (see :mod:`repro.obs.report`)."""
        from repro.obs.report import render_trace

        return render_trace(self)


class _NullSpan(Span):
    """The span no-op tracing hands out: accepts writes, keeps nothing."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", kind="null")

    def add(self, key: str, amount: int = 1) -> None:
        pass

    @property
    def attrs(self) -> dict:  # type: ignore[override]
        return {}

    @attrs.setter
    def attrs(self, value) -> None:
        pass

    @property
    def children(self) -> list:  # type: ignore[override]
        return []

    @children.setter
    def children(self, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """A reusable, allocation-free context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: same API as :class:`Tracer`, all no-ops.

    Call sites on hot paths should still guard on :attr:`enabled` to
    skip argument construction entirely.
    """

    enabled = False

    @property
    def root(self) -> Span:
        return _NULL_SPAN

    def current(self) -> Span:
        return _NULL_SPAN

    def span(self, name: str, kind: str = "operator", parent=None, **attrs):
        return _NULL_CONTEXT

    def annotate(self, **attrs) -> None:
        pass

    def add(self, key: str, amount: int = 1) -> None:
        pass

    def add_to(self, span, key: str, amount: int = 1) -> None:
        pass

    def attach(self, parent, span) -> None:
        pass

    def reset(self) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {}

    def to_json(self, indent: int | None = 2) -> str:
        return "{}"

    def render(self) -> str:
        return "(tracing disabled)"


#: The shared disabled tracer every context starts with.
NULL_TRACER = NullTracer()


def shift_spans(span: Span, delta: float) -> Span:
    """Shift a span subtree's clock by *delta* seconds, in place.

    Worker processes have their own ``perf_counter`` epoch, so task
    spans are rebased to task-relative time before shipping and shifted
    onto the driver's clock (the attempt's start) when re-attached.
    """
    span.start += delta
    if span.end is not None:
        span.end += delta
    for child in span.children:
        shift_spans(child, delta)
    return span
