"""Human-readable rendering of a trace tree.

One line per span: indentation mirrors nesting, durations are printed
in the most readable unit, and attributes follow as ``key=value``
pairs.  A ``job`` line over a pruned RDD shows ``partitions_pruned``
directly, so a report of a filter/kNN run *is* the pruning story::

    knn 4.1ms strategy=two_phase k=3 partitions_pruned=21
      job 2.0ms op=knn.home tasks=1 partitions_pruned=15
        task 1.9ms split=0 records_in=57
      job 1.6ms op=knn.rest tasks=2 partitions_pruned=14
        task 0.8ms split=0 records_in=44
        task 0.7ms split=1 records_in=61
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span, Tracer


def format_duration(seconds: float) -> str:
    """Render a duration with a unit matched to its magnitude."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(str(v) for v in value) + "]"
    return str(value)


def _is_troubled(span: "Span") -> bool:
    """Spans that failed, aborted, timed out, were cancelled or fell back."""
    return bool(
        span.attrs.get("failures")
        or span.attrs.get("aborted")
        or span.attrs.get("timeout")
        or span.attrs.get("cancelled")
        or span.name.endswith(".fallback")
    )


def render_span(span: "Span", indent: int = 0) -> list[str]:
    """Render one span and its subtree as indented text lines.

    Spans that failed, aborted, or degraded (task retries, job aborts,
    index fallbacks) are prefixed with ``!`` so a chaos run's trace
    shows its fault story at a glance.
    """
    attrs = " ".join(f"{k}={_format_attr(v)}" for k, v in span.attrs.items())
    marker = "! " if _is_troubled(span) else ""
    line = "  " * indent + f"{marker}{span.name} {format_duration(span.duration)}"
    if attrs:
        line += f" {attrs}"
    lines = [line]
    for child in span.children:
        lines.extend(render_span(child, indent + 1))
    return lines


def collect_failures(tracer: "Tracer") -> list["Span"]:
    """All spans in the trace that failed, aborted or fell back."""
    return [span for span in tracer.root.walk() if _is_troubled(span)]


def render_trace(tracer: "Tracer") -> str:
    """Render a tracer's whole tree (top-level spans, no synthetic root)."""
    lines: list[str] = []
    for top in tracer.root.children:
        lines.extend(render_span(top))
    return "\n".join(lines) if lines else "(no spans recorded)"
