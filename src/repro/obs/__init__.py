"""Observability: execution tracing for jobs, shuffles, tasks and operators.

See :mod:`repro.obs.tracer` for the span model and
:mod:`repro.obs.report` for the text rendering.
"""

from repro.obs.report import (
    collect_failures,
    format_duration,
    render_span,
    render_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "collect_failures",
    "format_duration",
    "render_span",
    "render_trace",
]
