"""Built-in scalar functions and aggregates for Piglet expressions.

Scalar functions are plain Python callables evaluated per row; the
spatio-temporal constructors and predicates expose the STARK layer
inside the scripting language.  Aggregates apply to grouped bags
(lists of tuples) in ``FOREACH (GROUP ...) GENERATE`` position.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.stobject import STObject
from repro.geometry.base import Geometry
from repro.geometry.point import Point
from repro.geometry.wkt import parse_wkt


class PigletRuntimeError(RuntimeError):
    """Raised when a script fails during execution (bad types, unknown
    functions, malformed data)."""


def _as_stobject(value: Any, fn: str) -> STObject:
    if isinstance(value, STObject):
        return value
    if isinstance(value, Geometry):
        return STObject(value)
    if isinstance(value, str):
        return STObject(value)
    raise PigletRuntimeError(
        f"{fn} expects an STObject / geometry / WKT string, got {type(value).__name__}"
    )


def _stobject(*args: Any) -> STObject:
    if not 1 <= len(args) <= 3:
        raise PigletRuntimeError("STOBJECT takes (wkt|geometry[, time[, end]])")
    geo = args[0]
    if isinstance(geo, STObject):
        geo = geo.geo
    if len(args) == 1:
        return STObject(geo)
    if len(args) == 2:
        return STObject(geo, args[1])
    return STObject(geo, args[1], args[2])


def _point(x: Any, y: Any) -> Point:
    return Point(float(x), float(y))


def _geometry(wkt: Any) -> Geometry:
    if isinstance(wkt, Geometry):
        return wkt
    return parse_wkt(str(wkt))


def _intersects(a: Any, b: Any) -> bool:
    return _as_stobject(a, "INTERSECTS").intersects(_as_stobject(b, "INTERSECTS"))


def _contains(a: Any, b: Any) -> bool:
    return _as_stobject(a, "CONTAINS").contains(_as_stobject(b, "CONTAINS"))


def _containedby(a: Any, b: Any) -> bool:
    return _as_stobject(a, "CONTAINEDBY").contained_by(_as_stobject(b, "CONTAINEDBY"))


def _touches(a: Any, b: Any) -> bool:
    return _as_stobject(a, "TOUCHES").geo.touches(_as_stobject(b, "TOUCHES").geo)


def _overlaps(a: Any, b: Any) -> bool:
    return _as_stobject(a, "OVERLAPS").geo.overlaps(_as_stobject(b, "OVERLAPS").geo)


def _crosses(a: Any, b: Any) -> bool:
    return _as_stobject(a, "CROSSES").geo.crosses(_as_stobject(b, "CROSSES").geo)


def _withindistance(a: Any, b: Any, max_distance: Any) -> bool:
    sa = _as_stobject(a, "WITHINDISTANCE")
    sb = _as_stobject(b, "WITHINDISTANCE")
    from repro.core.predicates import within_distance_predicate

    return within_distance_predicate(float(max_distance)).evaluate(sa, sb)


def _distance(a: Any, b: Any) -> float:
    return _as_stobject(a, "DISTANCE").geo.distance(_as_stobject(b, "DISTANCE").geo)


def _wkt(value: Any) -> str:
    return _as_stobject(value, "WKT").geo.wkt()


def _centroid_x(value: Any) -> float:
    return _as_stobject(value, "CENTROIDX").geo.centroid().x


def _centroid_y(value: Any) -> float:
    return _as_stobject(value, "CENTROIDY").geo.centroid().y


def _area(value: Any) -> float:
    geo = _as_stobject(value, "AREA").geo
    area = getattr(geo, "area", None)
    if area is None:
        raise PigletRuntimeError(f"AREA undefined for {geo.geom_type}")
    return area


def _length(value: Any) -> float:
    geo = _as_stobject(value, "LENGTH").geo
    length = getattr(geo, "length", None)
    if length is None:
        raise PigletRuntimeError(f"LENGTH undefined for {geo.geom_type}")
    return length


def _simplify(value: Any, tolerance: Any) -> Geometry:
    from repro.geometry.ops import simplify

    return simplify(_as_stobject(value, "SIMPLIFY").geo, float(tolerance))


def _convexhull(value: Any) -> Geometry:
    from repro.geometry.ops import convex_hull_of

    return convex_hull_of(_as_stobject(value, "CONVEXHULL").geo)


def _time_start(value: Any) -> float:
    st = _as_stobject(value, "TIMESTART")
    if st.time is None:
        raise PigletRuntimeError("TIMESTART: object has no temporal component")
    return st.time.start


def _time_end(value: Any) -> float:
    st = _as_stobject(value, "TIMEEND")
    if st.time is None:
        raise PigletRuntimeError("TIMEEND: object has no temporal component")
    return st.time.end


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "STOBJECT": _stobject,
    "POINT": _point,
    "GEOMETRY": _geometry,
    "INTERSECTS": _intersects,
    "CONTAINS": _contains,
    "CONTAINEDBY": _containedby,
    "TOUCHES": _touches,
    "OVERLAPS": _overlaps,
    "CROSSES": _crosses,
    "WITHINDISTANCE": _withindistance,
    "DISTANCE": _distance,
    "WKT": _wkt,
    "CENTROIDX": _centroid_x,
    "CENTROIDY": _centroid_y,
    "AREA": _area,
    "LENGTH": _length,
    "SIMPLIFY": _simplify,
    "CONVEXHULL": _convexhull,
    "TIMESTART": _time_start,
    "TIMEEND": _time_end,
    "ABS": lambda v: abs(v),
    "ROUND": lambda v: round(v),
    "FLOOR": lambda v: math.floor(v),
    "CEIL": lambda v: math.ceil(v),
    "SQRT": lambda v: math.sqrt(v),
    "LOWER": lambda s: str(s).lower(),
    "UPPER": lambda s: str(s).upper(),
    "CONCAT": lambda *parts: "".join(str(p) for p in parts),
    "STRLEN": lambda s: len(str(s)),
}

#: Predicate functions the planner may route through index execution.
SPATIAL_PREDICATE_FUNCTIONS = {
    "INTERSECTS",
    "CONTAINS",
    "CONTAINEDBY",
    "WITHINDISTANCE",
}


def _bag_values(bag: Any, column: int | None) -> list[Any]:
    if not isinstance(bag, list):
        raise PigletRuntimeError("aggregate applied to a non-bag value")
    if column is None:
        return bag
    return [row[column] for row in bag]


AGGREGATE_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "COUNT": lambda values: len(values),
    "SUM": lambda values: sum(values),
    "AVG": lambda values: (sum(values) / len(values)) if values else None,
    "MIN": lambda values: min(values) if values else None,
    "MAX": lambda values: max(values) if values else None,
}
