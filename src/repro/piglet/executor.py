"""The Piglet interpreter: statements to RDD programs.

A :class:`PigletRuntime` holds the alias environment.  Relations carry
their schema (field names) and, after ``SPATIAL_PARTITION`` or
``LIVEINDEX``, a spatially keyed twin RDD that the planner's fast
filter path and ``SPATIAL_JOIN`` operate on.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.core import filter as filter_ops
from repro.core import join as join_ops
from repro.core import knn as knn_ops
from repro.core.clustering.mr_dbscan import dbscan
from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    within_distance_predicate,
)
from repro.core.stobject import STObject
from repro.io.readers import parse_event_line
from repro.partitioners.bsp import BSPartitioner
from repro.partitioners.grid import GridPartitioner
from repro.piglet import ast_nodes as ast
from repro.piglet import planner
from repro.piglet.builtins import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    PigletRuntimeError,
)
from repro.piglet.parser import parse
from repro.spark.context import SparkContext
from repro.spark.rdd import RDD

_TYPE_CASTS: dict[str, Callable[[str], Any]] = {
    "int": int,
    "long": int,
    "float": float,
    "double": float,
    "chararray": str,
    "bytearray": str,
}


@dataclass
class Relation:
    """A named dataset: rows (tuples) plus field names.

    ``keyed`` mirrors the rows as ``(STObject, row)`` pairs, spatially
    partitioned; ``spatial_key`` names the field that is the key;
    ``index_order`` marks a live-indexed relation.  ``bags`` maps
    bag-valued fields (from GROUP) to their inner schemas.
    """

    rdd: RDD
    schema: tuple[str, ...]
    keyed: Optional[RDD] = None
    spatial_key: Optional[str] = None
    index_order: Optional[int] = None
    bags: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def field_index(self, name: str) -> int:
        try:
            return self.schema.index(name)
        except ValueError:
            raise PigletRuntimeError(
                f"unknown field {name!r}; schema is {list(self.schema)}"
            ) from None


class _Evaluator:
    """Row-expression evaluation against a relation's schema."""

    def __init__(self, relation: Relation) -> None:
        self._schema = relation.schema
        self._indices = {name: i for i, name in enumerate(relation.schema)}
        self._bags = relation.bags

    def __call__(self, expr: ast.Expr, row: tuple) -> Any:
        return self._eval(expr, row)

    def _eval(self, expr: ast.Expr, row: tuple) -> Any:
        if isinstance(expr, ast.NumberLit):
            return int(expr.value) if expr.is_integral else expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.FieldRef):
            index = self._indices.get(expr.name)
            if index is None:
                raise PigletRuntimeError(
                    f"unknown field {expr.name!r}; schema is {list(self._schema)}"
                )
            return row[index]
        if isinstance(expr, ast.PositionalRef):
            if expr.index >= len(row):
                raise PigletRuntimeError(
                    f"positional field ${expr.index} out of range for {len(row)}-tuple"
                )
            return row[expr.index]
        if isinstance(expr, ast.DottedRef):
            bag = self._eval(ast.FieldRef(expr.bag), row)
            inner = self._bags.get(expr.bag)
            if inner is None:
                raise PigletRuntimeError(f"{expr.bag!r} is not a grouped bag")
            try:
                column = inner.index(expr.field)
            except ValueError:
                raise PigletRuntimeError(
                    f"bag {expr.bag!r} has no field {expr.field!r}"
                ) from None
            return [inner_row[column] for inner_row in bag]
        if isinstance(expr, ast.FuncCall):
            return self._call(expr, row)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, row)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                return -self._eval(expr.operand, row)
            return not _truthy(self._eval(expr.operand, row))
        raise PigletRuntimeError(f"cannot evaluate {expr!r}")

    def _call(self, expr: ast.FuncCall, row: tuple) -> Any:
        if expr.name in AGGREGATE_FUNCTIONS:
            if len(expr.args) != 1:
                raise PigletRuntimeError(f"{expr.name} takes exactly one argument")
            values = self._eval(expr.args[0], row)
            if not isinstance(values, list):
                raise PigletRuntimeError(
                    f"{expr.name} applies to grouped bags; got {type(values).__name__}"
                )
            return AGGREGATE_FUNCTIONS[expr.name](values)
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise PigletRuntimeError(f"unknown function {expr.name!r}")
        return fn(*(self._eval(a, row) for a in expr.args))

    def _binop(self, expr: ast.BinOp, row: tuple) -> Any:
        if expr.op == "AND":
            return _truthy(self._eval(expr.left, row)) and _truthy(
                self._eval(expr.right, row)
            )
        if expr.op == "OR":
            return _truthy(self._eval(expr.left, row)) or _truthy(
                self._eval(expr.right, row)
            )
        left = self._eval(expr.left, row)
        right = self._eval(expr.right, row)
        ops: dict[str, Callable[[Any, Any], Any]] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "%": lambda a, b: a % b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return ops[expr.op](left, right)


def _truthy(value: Any) -> bool:
    return bool(value)


_EMPTY_EVALUATOR_RELATION = Relation(rdd=None, schema=())  # type: ignore[arg-type]


def eval_constant(expr: ast.Expr) -> Any:
    """Evaluate an expression that references no fields."""
    return _Evaluator(_EMPTY_EVALUATOR_RELATION)(expr, ())


class PigletRuntime:
    """Executes Piglet programs against a :class:`SparkContext`.

    With ``cost_based_planning=True``, spatial filters on keyed
    relations go through :class:`repro.planner.QueryPlanner` instead of
    the fixed live-index/scan routing: the planner picks the index mode
    and predicate order per query, and ``EXPLAIN`` shows the decision.
    Results are identical either way -- only the execution route moves.
    """

    def __init__(
        self,
        context: SparkContext,
        output=None,
        cost_based_planning: bool = False,
    ) -> None:
        self.context = context
        self.relations: dict[str, Relation] = {}
        self._output = output  # file-like sink for DUMP/DESCRIBE; None = stdout
        self.cost_based_planning = cost_based_planning
        #: alias -> FilterPlan chosen when that alias was filtered.
        self.filter_plans: dict[str, Any] = {}

    # -- public API ----------------------------------------------------------

    def run(self, script: str) -> dict[str, Relation]:
        """Parse and execute a script; returns the alias environment."""
        program = parse(script)
        for statement in program.statements:
            self.execute(statement)
        return self.relations

    def dump_to_string(self, script: str) -> str:
        """Run a script capturing DUMP/DESCRIBE output (for tests/demos)."""
        sink = io.StringIO()
        previous = self._output
        self._output = sink
        try:
            self.run(script)
        finally:
            self._output = previous
        return sink.getvalue()

    def relation(self, alias: str) -> Relation:
        rel = self.relations.get(alias)
        if rel is None:
            raise PigletRuntimeError(f"unknown relation {alias!r}")
        return rel

    # -- statements ----------------------------------------------------------

    def execute(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Assign):
            self.relations[statement.alias] = self._relation_op(
                statement.alias, statement.op
            )
            return
        if isinstance(statement, ast.Dump):
            rel = self.relation(statement.rel)
            for row in rel.rdd.collect():
                self._print(_render_row(row))
            return
        if isinstance(statement, ast.Describe):
            rel = self.relation(statement.rel)
            self._print(f"{statement.rel}: ({', '.join(rel.schema)})")
            return
        if isinstance(statement, ast.Store):
            rel = self.relation(statement.rel)
            rel.rdd.map(_render_row).save_as_text_file(statement.path)
            return
        if isinstance(statement, ast.Explain):
            self._explain(statement.rel)
            return
        raise PigletRuntimeError(f"unknown statement {statement!r}")

    def _explain(self, alias: str) -> None:
        """Print the execution-relevant facts about a relation."""
        rel = self.relation(alias)
        self._print(f"{alias}: ({', '.join(rel.schema)})")
        if rel.spatial_key is not None:
            partitioner = rel.keyed.partitioner if rel.keyed is not None else None
            kind = type(partitioner).__name__ if partitioner else "unpartitioned"
            self._print(f"  spatial key: {rel.spatial_key} [{kind}]")
            if rel.index_order is not None:
                self._print(f"  live index: order {rel.index_order}")
            self._print(
                "  FILTER with a constant spatio-temporal predicate on the "
                "key uses the pruned/indexed path"
            )
        else:
            self._print("  no spatial metadata: filters evaluate row-by-row")
        chosen = self.filter_plans.get(alias)
        if chosen is not None:
            self._print("  cost-based plan:")
            for line in chosen.explain().splitlines():
                self._print(f"    {line}")
        self._print("  lineage:")
        for line in rel.rdd.to_debug_string().splitlines():
            self._print(f"    {line}")

    def _print(self, text: str) -> None:
        if self._output is None:
            print(text)
        else:
            self._output.write(text + "\n")

    # -- relation operators ---------------------------------------------------

    def _relation_op(self, alias: str, op: ast.RelationOp) -> Relation:
        handler = getattr(self, f"_op_{type(op).__name__.lower()}", None)
        if handler is None:
            raise PigletRuntimeError(f"unsupported operator {type(op).__name__}")
        return handler(alias, op)

    def _op_load(self, alias: str, op: ast.Load) -> Relation:
        lines = self.context.text_file(op.path)
        if op.using in ("EventStorage", "EVENTSTORAGE"):
            delimiter = op.using_args[0] if op.using_args else ";"

            def parse_line(line: str) -> tuple:
                return parse_event_line(line, delimiter)

            rdd = lines.filter(lambda l: l.strip()).map(parse_line)
            return Relation(rdd, ("id", "category", "time", "wkt"))

        if op.using not in (None, "PigStorage", "PIGSTORAGE"):
            raise PigletRuntimeError(f"unknown loader {op.using!r}")
        delimiter = op.using_args[0] if op.using_args else ","
        schema = op.schema
        if not schema:
            return Relation(
                lines.filter(lambda l: l.strip()).map(lambda l: (l,)), ("line",)
            )
        casts = [_TYPE_CASTS.get(f.type, str) for f in schema]
        names = tuple(f.name for f in schema)

        def parse_row(line: str) -> tuple:
            parts = line.split(delimiter)
            if len(parts) != len(casts):
                raise PigletRuntimeError(
                    f"expected {len(casts)} fields, got {len(parts)}: {line!r}"
                )
            return tuple(cast(part.strip()) for cast, part in zip(casts, parts))

        return Relation(lines.filter(lambda l: l.strip()).map(parse_row), names)

    def _op_foreach(self, alias: str, op: ast.Foreach) -> Relation:
        source = self.relation(op.rel)
        evaluate = _Evaluator(source)
        names = []
        for i, item in enumerate(op.items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.FieldRef):
                names.append(item.expr.name)
            else:
                names.append(f"f{i}")
        items = op.items

        def generate(row: tuple) -> tuple:
            return tuple(evaluate(item.expr, row) for item in items)

        return Relation(source.rdd.map(generate), tuple(names))

    def _op_filter(self, alias: str, op: ast.Filter) -> Relation:
        source = self.relation(op.rel)
        plan = planner.match_spatial_filter(
            op.condition, source.spatial_key, eval_constant
        )
        if plan is not None and source.keyed is not None:
            if self.cost_based_planning:
                filtered = self._filter_cost_based(alias, source, plan)
            elif source.index_order is not None:
                filtered = filter_ops.filter_live_index(
                    source.keyed, plan.query, plan.predicate, source.index_order
                )
            else:
                filtered = filter_ops.filter_no_index(
                    source.keyed, plan.query, plan.predicate
                )
            return replace(source, rdd=filtered.values(), keyed=filtered)
        evaluate = _Evaluator(source)
        condition = op.condition
        return replace(
            source,
            rdd=source.rdd.filter(lambda row: _truthy(evaluate(condition, row))),
            keyed=None,
            spatial_key=None,
            index_order=None,
        )

    def _filter_cost_based(
        self, alias: str, source: Relation, plan: "planner.SpatialFilterPlan"
    ) -> RDD:
        """Route one matched spatial filter through the cost-based planner.

        The chosen :class:`repro.planner.FilterPlan` is remembered under
        *alias* so a later ``EXPLAIN alias`` can show the decision.
        """
        from repro.planner import QueryPlanner

        query_planner = QueryPlanner(
            self.context,
            index_order=source.index_order or 10,
        )
        chosen = query_planner.plan_filter(source.keyed, plan.query, plan.predicate)
        self.filter_plans[alias] = chosen
        return query_planner.execute(
            source.keyed, plan.query, plan.predicate, plan=chosen
        )

    def _op_group(self, alias: str, op: ast.Group) -> Relation:
        source = self.relation(op.rel)
        evaluate = _Evaluator(source)
        keys = op.keys

        def key_of(row: tuple) -> Any:
            if len(keys) == 1:
                return evaluate(keys[0], row)
            return tuple(evaluate(k, row) for k in keys)

        grouped = source.rdd.group_by(key_of).map(lambda kv: (kv[0], kv[1]))
        return Relation(
            grouped,
            ("group", op.rel),
            bags={op.rel: source.schema},
        )

    def _op_equijoin(self, alias: str, op: ast.EquiJoin) -> Relation:
        left = self.relation(op.left)
        right = self.relation(op.right)
        eval_left = _Evaluator(left)
        eval_right = _Evaluator(right)
        lk, rk = op.left_key, op.right_key
        joined = (
            left.rdd.key_by(lambda row: eval_left(lk, row))
            .join(right.rdd.key_by(lambda row: eval_right(rk, row)))
            .map(lambda kv: kv[1][0] + kv[1][1])
        )
        return Relation(joined, _merge_schemas(op.left, left, op.right, right))

    def _op_spatialjoin(self, alias: str, op: ast.SpatialJoin) -> Relation:
        left = self.relation(op.left)
        right = self.relation(op.right)
        predicate = self._resolve_join_predicate(op)
        left_keyed = self._keyed_for(left, op.left_key)
        right_keyed = (
            left_keyed
            if op.right == op.left and op.right_key == op.left_key
            else self._keyed_for(right, op.right_key)
        )
        pairs = join_ops.spatial_join(left_keyed, right_keyed, predicate)
        rows = pairs.map(lambda pair: pair[0][1] + pair[1][1])
        return Relation(rows, _merge_schemas(op.left, left, op.right, right))

    def _resolve_join_predicate(self, op: ast.SpatialJoin):
        if op.predicate == "INTERSECTS":
            return INTERSECTS
        if op.predicate == "CONTAINS":
            return CONTAINS
        if op.predicate == "CONTAINEDBY":
            return CONTAINED_BY
        if op.predicate == "WITHINDISTANCE":
            if len(op.predicate_args) != 1:
                raise PigletRuntimeError(
                    "WITHINDISTANCE join needs one argument: the distance"
                )
            return within_distance_predicate(
                float(eval_constant(op.predicate_args[0]))
            )
        raise PigletRuntimeError(f"unknown join predicate {op.predicate!r}")

    def _keyed_for(self, relation: Relation, key: ast.Expr) -> RDD:
        """The (STObject, row) twin, reusing a partitioned one if the key matches."""
        if (
            relation.keyed is not None
            and isinstance(key, ast.FieldRef)
            and key.name == relation.spatial_key
        ):
            return relation.keyed
        evaluate = _Evaluator(relation)
        return relation.rdd.map(lambda row: (_to_stobject(evaluate(key, row)), row))

    def _op_spatialpartition(self, alias: str, op: ast.SpatialPartition) -> Relation:
        source = self.relation(op.rel)
        keyed = self._keyed_for(source, op.key)
        args = [eval_constant(a) for a in op.args]
        if op.method == "GRID":
            ppd = int(args[0]) if args else 4
            partitioner = GridPartitioner.from_rdd(keyed, ppd)
        else:  # BSP
            max_cost = int(args[0]) if args else 1000
            side = float(args[1]) if len(args) > 1 else None
            partitioner = BSPartitioner.from_rdd(keyed, max_cost, side)
        partitioned = keyed.partition_by(partitioner)
        spatial_key = op.key.name if isinstance(op.key, ast.FieldRef) else None
        return replace(
            source,
            rdd=partitioned.values(),
            keyed=partitioned,
            spatial_key=spatial_key,
            index_order=None,
        )

    def _op_liveindex(self, alias: str, op: ast.LiveIndex) -> Relation:
        source = self.relation(op.rel)
        keyed = self._keyed_for(source, op.key)
        spatial_key = op.key.name if isinstance(op.key, ast.FieldRef) else None
        return replace(
            source,
            keyed=keyed,
            spatial_key=spatial_key,
            index_order=op.order,
        )

    def _op_cluster(self, alias: str, op: ast.Cluster) -> Relation:
        source = self.relation(op.rel)
        keyed = self._keyed_for(source, op.key)
        eps = float(eval_constant(op.eps))
        min_pts = int(eval_constant(op.min_pts))
        clustered = dbscan(keyed, eps, min_pts)
        rows = clustered.map(lambda kv: kv[1][0] + (kv[1][1],))
        return Relation(rows, source.schema + (op.label_alias,))

    def _op_knn(self, alias: str, op: ast.Knn) -> Relation:
        source = self.relation(op.rel)
        keyed = self._keyed_for(source, op.key)
        query = _to_stobject(eval_constant(op.query))
        k = int(eval_constant(op.k))
        nearest = knn_ops.knn(keyed, query, k)
        rows = [kv[1] + (distance,) for distance, kv in nearest]
        return Relation(
            self.context.parallelize(rows, max(1, min(len(rows), 4))),
            source.schema + ("knn_distance",),
        )

    def _op_distinct(self, alias: str, op: ast.Distinct) -> Relation:
        source = self.relation(op.rel)
        return replace(
            source, rdd=source.rdd.distinct(), keyed=None, spatial_key=None
        )

    def _op_limit(self, alias: str, op: ast.Limit) -> Relation:
        source = self.relation(op.rel)
        rows = source.rdd.take(op.count)
        return replace(
            source,
            rdd=self.context.parallelize(rows, max(1, min(len(rows), 4))),
            keyed=None,
            spatial_key=None,
        )

    def _op_orderby(self, alias: str, op: ast.OrderBy) -> Relation:
        source = self.relation(op.rel)
        evaluate = _Evaluator(source)
        key = op.key
        return replace(
            source,
            rdd=source.rdd.sort_by(
                lambda row: evaluate(key, row), ascending=not op.descending
            ),
            keyed=None,
            spatial_key=None,
        )

    def _op_unionop(self, alias: str, op: ast.UnionOp) -> Relation:
        left = self.relation(op.left)
        right = self.relation(op.right)
        if len(left.schema) != len(right.schema):
            raise PigletRuntimeError(
                f"UNION schema mismatch: {list(left.schema)} vs {list(right.schema)}"
            )
        return Relation(left.rdd.union(right.rdd), left.schema)

    def _op_sample(self, alias: str, op: ast.Sample) -> Relation:
        source = self.relation(op.rel)
        return replace(
            source,
            rdd=source.rdd.sample(op.fraction, seed=op.seed),
            keyed=None,
            spatial_key=None,
        )

    def _op_skyline(self, alias: str, op: ast.Skyline) -> Relation:
        from repro.core.skyline import skyline

        source = self.relation(op.rel)
        keyed = self._keyed_for(source, op.key)
        query = _to_stobject(eval_constant(op.query))
        entries = skyline(keyed, query)
        rows = [
            entry.value + (entry.spatial_distance, entry.temporal_distance)
            for entry in entries
        ]
        return Relation(
            self.context.parallelize(rows, max(1, min(len(rows), 4))),
            source.schema + ("spatial_distance", "temporal_distance"),
        )

    def _op_crossop(self, alias: str, op: ast.CrossOp) -> Relation:
        left = self.relation(op.left)
        right = self.relation(op.right)
        crossed = left.rdd.cartesian(right.rdd).map(lambda pair: pair[0] + pair[1])
        return Relation(crossed, _merge_schemas(op.left, left, op.right, right))


def _to_stobject(value: Any) -> STObject:
    if isinstance(value, STObject):
        return value
    return STObject(value)


def _merge_schemas(
    left_name: str, left: Relation, right_name: str, right: Relation
) -> tuple[str, ...]:
    """Concatenate schemas, disambiguating collisions.

    Pig uses ``rel::field``; our expression grammar has no ``::`` token,
    so collisions become ``rel_field`` -- referenceable as plain names.
    """
    collisions = set(left.schema) & set(right.schema)
    left_fields = [
        f"{left_name}_{f}" if f in collisions else f for f in left.schema
    ]
    right_fields = [
        f"{right_name}_{f}" if f in collisions else f for f in right.schema
    ]
    return tuple(left_fields + right_fields)


def _render_row(row: tuple) -> str:
    return "(" + ",".join(str(v) for v in row) + ")"


def run_script(
    context: SparkContext, script: str, output=None
) -> dict[str, Relation]:
    """One-shot convenience: run a Piglet script, return its relations."""
    return PigletRuntime(context, output).run(script)
