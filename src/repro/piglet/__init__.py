"""Piglet: the Pig Latin derivative with spatio-temporal extensions.

The paper (section 4, and [4] Hagedorn & Sattler, WWW 2016) offers an
"easy to learn scripting language" route to STARK's operators: Pig
Latin extended with the spatio-temporal data types and operators.  This
package implements that language for the reproduction:

- the classic Pig Latin core: ``LOAD``, ``FOREACH ... GENERATE``,
  ``FILTER ... BY``, ``GROUP ... BY``, ``JOIN ... BY``, ``DISTINCT``,
  ``LIMIT``, ``ORDER ... BY``, ``UNION``, ``DUMP``, ``STORE``,
  ``DESCRIBE``, with an expression language (arithmetic, comparisons,
  boolean logic, positional ``$0`` and named fields, function calls,
  aggregates over grouped bags);
- the spatio-temporal extension: the ``STOBJECT``/geometry constructors
  and predicate functions usable in any expression, plus the dedicated
  statements ``SPATIAL_JOIN``, ``SPATIAL_PARTITION`` (GRID / BSP),
  ``LIVEINDEX``, ``CLUSTER ... USING DBSCAN`` and ``KNN``;
- a small planner that recognizes ``FILTER rel BY <predicate>(key,
  <constant query>)`` over spatially partitioned / indexed relations
  and routes it through the pruned & indexed execution paths instead of
  a row-by-row scan.

Example::

    ev  = LOAD 'events.csv' USING EventStorage();
    st  = FOREACH ev GENERATE STOBJECT(wkt, time) AS obj, id, category;
    prt = SPATIAL_PARTITION st BY obj USING BSP(200);
    hit = FILTER prt BY CONTAINEDBY(obj, STOBJECT('POLYGON ((...))', 0, 1000));
    grp = GROUP hit BY category;
    cnt = FOREACH grp GENERATE group, COUNT(hit);
    DUMP cnt;
"""

from repro.piglet.executor import PigletRuntime, run_script
from repro.piglet.lexer import PigletSyntaxError, tokenize
from repro.piglet.parser import parse

__all__ = [
    "PigletRuntime",
    "PigletSyntaxError",
    "parse",
    "run_script",
    "tokenize",
]
