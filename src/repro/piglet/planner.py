"""The Piglet planner: routing filters through spatial execution paths.

Pig Latin filters are row-wise by default.  When a relation has been
spatially partitioned or live-indexed, a ``FILTER rel BY
<predicate>(<spatial key>, <constant query>)`` can instead run through
:mod:`repro.core.filter` -- gaining partition pruning and per-partition
R-trees.  This module recognizes that pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    STPredicate,
    within_distance_predicate,
)
from repro.core.stobject import STObject
from repro.piglet import ast_nodes as ast
from repro.piglet.builtins import SPATIAL_PREDICATE_FUNCTIONS


@dataclass(frozen=True)
class SpatialFilterPlan:
    """A filter rewritten to the spatial execution path."""

    predicate: STPredicate
    query: STObject


def is_constant(expr: ast.Expr) -> bool:
    """True when *expr* references no row fields (evaluable once)."""
    if isinstance(expr, (ast.NumberLit, ast.StringLit)):
        return True
    if isinstance(expr, (ast.FieldRef, ast.PositionalRef, ast.DottedRef)):
        return False
    if isinstance(expr, ast.FuncCall):
        return all(is_constant(a) for a in expr.args)
    if isinstance(expr, ast.BinOp):
        return is_constant(expr.left) and is_constant(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return is_constant(expr.operand)
    return False


#: predicate name -> (STPredicate when args are (item_field, query_const),
#:                    STPredicate when args are (query_const, item_field))
_DIRECT = {
    "INTERSECTS": (INTERSECTS, INTERSECTS),
    "CONTAINS": (CONTAINS, CONTAINED_BY),
    "CONTAINEDBY": (CONTAINED_BY, CONTAINS),
}


def match_spatial_filter(
    condition: ast.Expr,
    spatial_key: Optional[str],
    eval_constant,
) -> Optional[SpatialFilterPlan]:
    """Try to rewrite a filter condition into a spatial plan.

    ``eval_constant`` evaluates a constant expression to its value.
    Returns ``None`` when the pattern does not apply (the executor then
    falls back to the row-wise filter, which is always correct).
    """
    if spatial_key is None or not isinstance(condition, ast.FuncCall):
        return None
    name = condition.name
    if name not in SPATIAL_PREDICATE_FUNCTIONS:
        return None

    args = condition.args
    if name == "WITHINDISTANCE":
        if len(args) != 3 or not is_constant(args[2]):
            return None
        key_arg, query_arg, distance_arg = args
        distance = float(eval_constant(distance_arg))
        # withinDistance is symmetric: either argument order matches.
        for item, query in ((key_arg, query_arg), (query_arg, key_arg)):
            if _is_key(item, spatial_key) and is_constant(query):
                return SpatialFilterPlan(
                    within_distance_predicate(distance),
                    _as_query(eval_constant(query)),
                )
        return None

    if len(args) != 2:
        return None
    first, second = args
    if _is_key(first, spatial_key) and is_constant(second):
        return SpatialFilterPlan(
            _DIRECT[name][0], _as_query(eval_constant(second))
        )
    if _is_key(second, spatial_key) and is_constant(first):
        return SpatialFilterPlan(
            _DIRECT[name][1], _as_query(eval_constant(first))
        )
    return None


def _is_key(expr: ast.Expr, spatial_key: str) -> bool:
    return isinstance(expr, ast.FieldRef) and expr.name == spatial_key


def _as_query(value) -> STObject:
    if isinstance(value, STObject):
        return value
    return STObject(value)
