"""Tokenizer for Piglet scripts."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "LOAD", "USING", "AS", "FOREACH", "GENERATE", "FILTER", "BY", "GROUP",
    "JOIN", "DUMP", "STORE", "INTO", "LIMIT", "ORDER", "DESC", "ASC",
    "DISTINCT", "AND", "OR", "NOT", "SPATIAL_JOIN", "SPATIAL_PARTITION",
    "CLUSTER", "KNN", "QUERY", "K", "LIVEINDEX", "DESCRIBE", "UNION",
    "ON", "SAMPLE", "CROSS", "EXPLAIN", "SKYLINE",
}


class PigletSyntaxError(ValueError):
    """Raised for lexical or syntactic errors, with line/column info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | NAME | NUMBER | STRING | OP | DOLLAR | EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*|/\*.*?\*/)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<dollar>\$\d+)
  | (?P<op>==|!=|<=|>=|[=<>+\-*/%(),;.:])
  | (?P<ws>[ \t\r\n]+)
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize a Piglet script.  Comments are ``--`` and ``/* */``."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise PigletSyntaxError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup or ""
        value = m.group()
        column = pos - line_start + 1
        if kind == "name":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, column))
            else:
                tokens.append(Token("NAME", value, line, column))
        elif kind == "number":
            tokens.append(Token("NUMBER", value, line, column))
        elif kind == "string":
            raw = value[1:-1]
            unescaped = raw.replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("STRING", unescaped, line, column))
        elif kind == "dollar":
            tokens.append(Token("DOLLAR", value[1:], line, column))
        elif kind == "op":
            tokens.append(Token("OP", value, line, column))
        # comments and whitespace: track line numbers, emit nothing
        if kind in ("ws", "comment", "string"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rfind("\n") + 1
        pos = m.end()
    tokens.append(Token("EOF", "", line, len(text) - line_start + 1))
    return tokens
