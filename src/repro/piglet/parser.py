"""Recursive-descent parser for Piglet scripts."""

from __future__ import annotations

from repro.piglet import ast_nodes as ast
from repro.piglet.lexer import PigletSyntaxError, Token, tokenize

_SPATIAL_PREDICATES = {"INTERSECTS", "CONTAINS", "CONTAINEDBY", "WITHINDISTANCE"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _error(self, message: str) -> PigletSyntaxError:
        tok = self._peek()
        return PigletSyntaxError(f"{message}, found {tok.value!r}", tok.line, tok.column)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise self._error(f"expected {want}")
        return self._next()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self._peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self._next()
        return None

    def _keyword(self, word: str) -> Token:
        return self._expect("KEYWORD", word)

    def _accept_keyword(self, word: str) -> bool:
        return self._accept("KEYWORD", word) is not None

    # -- program ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements: list[ast.Statement] = []
        while self._peek().kind != "EOF":
            statements.append(self._statement())
            self._expect("OP", ";")
        return ast.Program(tuple(statements))

    def _statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value == "DUMP":
            self._next()
            return ast.Dump(self._expect("NAME").value)
        if tok.kind == "KEYWORD" and tok.value == "DESCRIBE":
            self._next()
            return ast.Describe(self._expect("NAME").value)
        if tok.kind == "KEYWORD" and tok.value == "EXPLAIN":
            self._next()
            return ast.Explain(self._expect("NAME").value)
        if tok.kind == "KEYWORD" and tok.value == "STORE":
            self._next()
            rel = self._expect("NAME").value
            self._keyword("INTO")
            path = self._expect("STRING").value
            return ast.Store(rel, path)
        if tok.kind == "NAME":
            alias = self._next().value
            self._expect("OP", "=")
            return ast.Assign(alias, self._relation_op())
        raise self._error("expected a statement")

    # -- relation operators ------------------------------------------------------

    def _relation_op(self) -> ast.RelationOp:
        tok = self._peek()
        if tok.kind != "KEYWORD":
            raise self._error("expected a relational operator")
        handlers = {
            "LOAD": self._load,
            "FOREACH": self._foreach,
            "FILTER": self._filter,
            "GROUP": self._group,
            "JOIN": self._join,
            "SPATIAL_JOIN": self._spatial_join,
            "SPATIAL_PARTITION": self._spatial_partition,
            "LIVEINDEX": self._liveindex,
            "CLUSTER": self._cluster,
            "KNN": self._knn,
            "DISTINCT": self._distinct,
            "LIMIT": self._limit,
            "ORDER": self._order,
            "UNION": self._union,
            "SAMPLE": self._sample,
            "CROSS": self._cross,
            "SKYLINE": self._skyline,
        }
        handler = handlers.get(tok.value)
        if handler is None:
            raise self._error("expected a relational operator")
        self._next()
        return handler()

    def _load(self) -> ast.Load:
        path = self._expect("STRING").value
        using = None
        using_args: tuple[str, ...] = ()
        if self._accept_keyword("USING"):
            using = self._expect("NAME").value
            self._expect("OP", "(")
            args = []
            while not self._accept("OP", ")"):
                args.append(self._expect("STRING").value)
                self._accept("OP", ",")
            using_args = tuple(args)
        schema: tuple[ast.SchemaField, ...] = ()
        if self._accept_keyword("AS"):
            schema = self._schema()
        return ast.Load(path, using, using_args, schema)

    def _schema(self) -> tuple[ast.SchemaField, ...]:
        self._expect("OP", "(")
        fields = []
        while True:
            name = self._expect("NAME").value
            type_name = "bytearray"
            if self._accept("OP", ":"):
                type_name = self._expect("NAME").value.lower()
            fields.append(ast.SchemaField(name, type_name))
            if self._accept("OP", ")"):
                break
            self._expect("OP", ",")
        return tuple(fields)

    def _foreach(self) -> ast.Foreach:
        rel = self._expect("NAME").value
        self._keyword("GENERATE")
        items = [self._generate_item()]
        while self._accept("OP", ","):
            items.append(self._generate_item())
        return ast.Foreach(rel, tuple(items))

    def _generate_item(self) -> ast.GenerateItem:
        expr = self.expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect("NAME").value
        return ast.GenerateItem(expr, alias)

    def _filter(self) -> ast.Filter:
        rel = self._expect("NAME").value
        self._keyword("BY")
        return ast.Filter(rel, self.expression())

    def _group(self) -> ast.Group:
        rel = self._expect("NAME").value
        self._keyword("BY")
        keys = [self.expression()]
        while self._accept("OP", ","):
            keys.append(self.expression())
        return ast.Group(rel, tuple(keys))

    def _join(self) -> ast.EquiJoin:
        left = self._expect("NAME").value
        self._keyword("BY")
        left_key = self.expression()
        self._expect("OP", ",")
        right = self._expect("NAME").value
        self._keyword("BY")
        right_key = self.expression()
        return ast.EquiJoin(left, left_key, right, right_key)

    def _spatial_join(self) -> ast.SpatialJoin:
        left = self._expect("NAME").value
        self._keyword("BY")
        left_key = self.expression()
        self._expect("OP", ",")
        right = self._expect("NAME").value
        self._keyword("BY")
        right_key = self.expression()
        self._keyword("ON")
        predicate = self._expect("NAME").value.upper()
        if predicate not in _SPATIAL_PREDICATES:
            raise self._error(
                f"unknown spatial predicate {predicate!r}; "
                f"known: {sorted(_SPATIAL_PREDICATES)}"
            )
        args: tuple[ast.Expr, ...] = ()
        if self._accept("OP", "("):
            arg_list = []
            while not self._accept("OP", ")"):
                arg_list.append(self.expression())
                self._accept("OP", ",")
            args = tuple(arg_list)
        return ast.SpatialJoin(left, left_key, right, right_key, predicate, args)

    def _spatial_partition(self) -> ast.SpatialPartition:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        self._keyword("USING")
        method = self._expect("NAME").value.upper()
        if method not in ("GRID", "BSP"):
            raise self._error(f"unknown partitioner {method!r}; known: GRID, BSP")
        args: list[ast.Expr] = []
        self._expect("OP", "(")
        while not self._accept("OP", ")"):
            args.append(self.expression())
            self._accept("OP", ",")
        return ast.SpatialPartition(rel, key, method, tuple(args))

    def _liveindex(self) -> ast.LiveIndex:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        order = 10
        if self._accept_keyword("ORDER"):
            order = int(self._expect("NUMBER").value)
        return ast.LiveIndex(rel, key, order)

    def _cluster(self) -> ast.Cluster:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        self._keyword("USING")
        name = self._expect("NAME").value.upper()
        if name != "DBSCAN":
            raise self._error(f"unknown clustering algorithm {name!r}; known: DBSCAN")
        self._expect("OP", "(")
        eps = self.expression()
        self._expect("OP", ",")
        min_pts = self.expression()
        self._expect("OP", ")")
        label = "cluster_id"
        if self._accept_keyword("AS"):
            label = self._expect("NAME").value
        return ast.Cluster(rel, key, eps, min_pts, label)

    def _knn(self) -> ast.Knn:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        self._keyword("QUERY")
        query = self.expression()
        self._keyword("K")
        k = self.expression()
        return ast.Knn(rel, key, query, k)

    def _distinct(self) -> ast.Distinct:
        return ast.Distinct(self._expect("NAME").value)

    def _limit(self) -> ast.Limit:
        rel = self._expect("NAME").value
        count = int(self._expect("NUMBER").value)
        return ast.Limit(rel, count)

    def _order(self) -> ast.OrderBy:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderBy(rel, key, descending)

    def _union(self) -> ast.UnionOp:
        left = self._expect("NAME").value
        self._expect("OP", ",")
        right = self._expect("NAME").value
        return ast.UnionOp(left, right)

    def _sample(self) -> ast.Sample:
        rel = self._expect("NAME").value
        fraction = float(self._expect("NUMBER").value)
        return ast.Sample(rel, fraction)

    def _cross(self) -> ast.CrossOp:
        left = self._expect("NAME").value
        self._expect("OP", ",")
        right = self._expect("NAME").value
        return ast.CrossOp(left, right)

    def _skyline(self) -> ast.Skyline:
        rel = self._expect("NAME").value
        self._keyword("BY")
        key = self.expression()
        self._keyword("QUERY")
        query = self.expression()
        return ast.Skyline(rel, key, query)

    # -- expressions ---------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        expr = self._and_expr()
        while self._accept_keyword("OR"):
            expr = ast.BinOp("OR", expr, self._and_expr())
        return expr

    def _and_expr(self) -> ast.Expr:
        expr = self._not_expr()
        while self._accept_keyword("AND"):
            expr = ast.BinOp("AND", expr, self._not_expr())
        return expr

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        expr = self._additive()
        tok = self._peek()
        if tok.kind == "OP" and tok.value in ("==", "!=", "<", "<=", ">", ">="):
            op = self._next().value
            return ast.BinOp(op, expr, self._additive())
        return expr

    def _additive(self) -> ast.Expr:
        expr = self._multiplicative()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("+", "-"):
                op = self._next().value
                expr = ast.BinOp(op, expr, self._multiplicative())
            else:
                return expr

    def _multiplicative(self) -> ast.Expr:
        expr = self._unary()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("*", "/", "%"):
                op = self._next().value
                expr = ast.BinOp(op, expr, self._unary())
            else:
                return expr

    def _unary(self) -> ast.Expr:
        if self._accept("OP", "-"):
            return ast.UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._next()
            return ast.NumberLit(float(tok.value))
        if tok.kind == "STRING":
            self._next()
            return ast.StringLit(tok.value)
        if tok.kind == "DOLLAR":
            self._next()
            return ast.PositionalRef(int(tok.value))
        if tok.kind == "KEYWORD" and tok.value == "K":
            # allow K as a field name outside the KNN clause context
            self._next()
            return ast.FieldRef("K")
        if tok.kind == "KEYWORD" and tok.value == "GROUP":
            # "group" is the implicit key field of a grouped relation
            self._next()
            return ast.FieldRef("group")
        if tok.kind == "NAME":
            self._next()
            name = tok.value
            if self._accept("OP", "("):
                args = []
                while not self._accept("OP", ")"):
                    args.append(self.expression())
                    if not self._accept("OP", ","):
                        self._expect("OP", ")")
                        break
                return ast.FuncCall(name.upper(), tuple(args))
            if self._accept("OP", "."):
                field = self._expect("NAME").value
                return ast.DottedRef(name, field)
            return ast.FieldRef(name)
        if self._accept("OP", "("):
            expr = self.expression()
            self._expect("OP", ")")
            return expr
        raise self._error("expected an expression")


def parse(text: str) -> ast.Program:
    """Parse a Piglet script into its AST."""
    return _Parser(tokenize(text)).parse_program()
