"""Piglet command-line runner.

Execute a Piglet script file against a fresh engine context::

    python -m repro.piglet path/to/script.pig [--parallelism N]

DUMP/DESCRIBE output goes to stdout; STORE statements write relative to
the current working directory.
"""

from __future__ import annotations

import argparse
import sys

from repro.piglet.executor import PigletRuntime
from repro.piglet.lexer import PigletSyntaxError
from repro.spark.context import SparkContext


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.piglet", description=__doc__
    )
    parser.add_argument("script", help="path to a Piglet script file")
    parser.add_argument("--parallelism", type=int, default=4)
    args = parser.parse_args(argv)

    with open(args.script) as f:
        text = f.read()

    with SparkContext("piglet-cli", parallelism=args.parallelism) as sc:
        runtime = PigletRuntime(sc)
        try:
            runtime.run(text)
        except PigletSyntaxError as error:
            print(f"syntax error: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
