"""AST node definitions for Piglet."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    value: float

    @property
    def is_integral(self) -> bool:
        return float(self.value).is_integer()


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class FieldRef:
    """A named field of the current row."""

    name: str


@dataclass(frozen=True)
class PositionalRef:
    """``$N``: the N-th field of the current row."""

    index: int


@dataclass(frozen=True)
class DottedRef:
    """``bag.field``: a column projected out of a grouped bag."""

    bag: str
    field: str


@dataclass(frozen=True)
class FuncCall:
    name: str  # upper-cased
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / % == != < <= > >= AND OR
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # - NOT
    operand: "Expr"


Expr = Union[NumberLit, StringLit, FieldRef, PositionalRef, DottedRef, FuncCall, BinOp, UnaryOp]


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class SchemaField:
    name: str
    type: str = "bytearray"  # int | long | float | double | chararray | bytearray


@dataclass(frozen=True)
class Load:
    path: str
    using: Optional[str] = None  # e.g. "EventStorage"
    using_args: tuple[str, ...] = ()
    schema: tuple[SchemaField, ...] = ()


@dataclass(frozen=True)
class GenerateItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class Foreach:
    rel: str
    items: tuple[GenerateItem, ...]


@dataclass(frozen=True)
class Filter:
    rel: str
    condition: Expr


@dataclass(frozen=True)
class Group:
    rel: str
    keys: tuple[Expr, ...]


@dataclass(frozen=True)
class EquiJoin:
    left: str
    left_key: Expr
    right: str
    right_key: Expr


@dataclass(frozen=True)
class SpatialJoin:
    left: str
    left_key: Expr
    right: str
    right_key: Expr
    predicate: str  # INTERSECTS | CONTAINS | CONTAINEDBY | WITHINDISTANCE
    predicate_args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SpatialPartition:
    rel: str
    key: Expr
    method: str  # GRID | BSP
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class LiveIndex:
    rel: str
    key: Expr
    order: int = 10


@dataclass(frozen=True)
class Cluster:
    rel: str
    key: Expr
    eps: Expr
    min_pts: Expr
    label_alias: str = "cluster_id"


@dataclass(frozen=True)
class Knn:
    rel: str
    key: Expr
    query: Expr
    k: Expr


@dataclass(frozen=True)
class Distinct:
    rel: str


@dataclass(frozen=True)
class Limit:
    rel: str
    count: int


@dataclass(frozen=True)
class OrderBy:
    rel: str
    key: Expr
    descending: bool = False


@dataclass(frozen=True)
class UnionOp:
    left: str
    right: str


@dataclass(frozen=True)
class Sample:
    rel: str
    fraction: float
    seed: int = 17


@dataclass(frozen=True)
class Skyline:
    rel: str
    key: Expr
    query: Expr


@dataclass(frozen=True)
class CrossOp:
    left: str
    right: str


RelationOp = Union[
    Load, Foreach, Filter, Group, EquiJoin, SpatialJoin, SpatialPartition,
    LiveIndex, Cluster, Knn, Distinct, Limit, OrderBy, UnionOp, Sample, CrossOp,
    Skyline,
]


@dataclass(frozen=True)
class Assign:
    alias: str
    op: RelationOp


@dataclass(frozen=True)
class Dump:
    rel: str


@dataclass(frozen=True)
class Store:
    rel: str
    path: str


@dataclass(frozen=True)
class Describe:
    rel: str


@dataclass(frozen=True)
class Explain:
    rel: str


Statement = Union[Assign, Dump, Store, Describe, Explain]


@dataclass(frozen=True)
class Program:
    statements: tuple[Statement, ...] = field(default_factory=tuple)
