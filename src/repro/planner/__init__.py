"""Cost-based query planning for spatio-temporal operations.

STARK picks its execution strategy manually: the program author decides
whether to index, which partitioner to use, and the predicate order is
fixed (spatial first).  This package closes that gap with a small
optimizer in three layers:

- :mod:`~repro.planner.stats` -- reservoir-sampled dataset statistics
  (cardinality, spatial extent and skew, temporal extent and
  selectivity, per-partition cardinalities) collected with one cheap
  job,
- :mod:`~repro.planner.cost` -- an analytical cost model comparing the
  candidate strategies: plain scan vs live index in each mode
  (``spatial`` / ``temporal`` / ``3d``), spatial-first vs
  temporal-first refinement,
- :mod:`~repro.planner.planner` -- :class:`QueryPlanner`, which turns
  statistics + cost estimates into executable :class:`FilterPlan`s
  (plus advisory join/kNN plans and partitioner recommendations), each
  carrying a human-readable ``explain()``.

Entry points: ``spatial(rdd).plan(query)``, ``.explain(query)`` and
``.filter_planned(query)`` on any spatial RDD, and
``PigletRuntime(sc, cost_based_planning=True)`` for scripts.
"""

from repro.planner.cost import CostConstants, CostModel, PlanEstimate
from repro.planner.planner import (
    FilterPlan,
    JoinPlan,
    KnnPlan,
    PartitionerHint,
    QueryPlanner,
)
from repro.planner.stats import DatasetStatistics, collect_statistics

__all__ = [
    "CostConstants",
    "CostModel",
    "DatasetStatistics",
    "FilterPlan",
    "JoinPlan",
    "KnnPlan",
    "PartitionerHint",
    "PlanEstimate",
    "QueryPlanner",
    "collect_statistics",
]
