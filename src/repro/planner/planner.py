"""The query planner: statistics + cost model -> executable plans.

:class:`QueryPlanner` is deliberately small: it collects statistics
with one job (:func:`repro.planner.stats.collect_statistics`), asks the
:class:`~repro.planner.cost.CostModel` to rank strategies for the
concrete query, and packages the winner -- with every alternative it
beat -- into a plan object whose ``explain()`` renders the decision the
way ``EXPLAIN`` does in a database.

Plans are *advisory by construction*: every strategy computes identical
results (the index modes and clause orders are equivalence-preserving),
so a wrong cost estimate can only cost time, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core import filter as filter_ops
from repro.core import join as join_ops
from repro.core import knn as knn_ops
from repro.core.predicates import STPredicate
from repro.core.stobject import STObject
from repro.planner.cost import CostModel, PlanEstimate
from repro.planner.stats import DatasetStatistics, collect_statistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext
    from repro.spark.rdd import RDD

#: Below this many rows, index builds never amortize; scan directly.
SMALL_DATASET_ROWS = 64

#: Spatial-skew threshold above which a uniform grid loses to
#: cost-balancing partitioners (0.25 = perfectly uniform sample).
SKEW_THRESHOLD = 0.45

#: A query is "temporally selective" below this estimated selectivity.
TEMPORAL_SELECTIVITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class PartitionerHint:
    """A partitioner recommendation: which kind, and why.

    ``kind`` is one of ``"grid"``, ``"bsp"``, ``"quadtree"``,
    ``"temporal"``, ``"spatio-temporal"`` or ``"none"`` (keep whatever
    partitioning exists).
    """

    kind: str
    reason: str


def recommend_partitioner(
    stats: DatasetStatistics, query_timed: bool, temporal_selectivity: float
) -> PartitionerHint:
    """Pick a partitioner family from the dataset's shape.

    Skewed spatial distributions favor cost-balancing splits (BSP /
    quadtree) over a uniform grid; datasets that are almost entirely
    timed and queried with selective windows favor temporal slicing --
    combined with a spatial split when the data is also skewed.
    """
    if stats.count < SMALL_DATASET_ROWS:
        return PartitionerHint("none", f"only {stats.count} rows; not worth a shuffle")
    skew = stats.spatial_skew()
    mostly_timed = stats.timed_fraction > 0.9
    selective = query_timed and temporal_selectivity < TEMPORAL_SELECTIVITY_THRESHOLD
    if mostly_timed and selective:
        if skew > SKEW_THRESHOLD:
            return PartitionerHint(
                "spatio-temporal",
                f"{stats.timed_fraction:.0%} timed rows, selective window, "
                f"spatial skew {skew:.2f}: split in space and time",
            )
        return PartitionerHint(
            "temporal",
            f"{stats.timed_fraction:.0%} timed rows and a selective time "
            "window: whole slices prune before any task runs",
        )
    if skew > SKEW_THRESHOLD:
        return PartitionerHint(
            "bsp",
            f"spatial skew {skew:.2f} (densest quadrant share): "
            "cost-balanced binary splits beat a uniform grid",
        )
    return PartitionerHint(
        "grid", f"near-uniform distribution (skew {skew:.2f}): grid cells suffice"
    )


def _render_estimate(e: PlanEstimate, chosen: bool) -> str:
    marker = "->" if chosen else "  "
    order = "temporal-first" if e.temporal_first else "spatial-first"
    return (
        f"  {marker} {e.strategy:<14} cost={e.cost:>12.0f}  "
        f"candidates~{e.candidates:>10.0f}  [{order}] {e.detail}"
    )


@dataclass
class FilterPlan:
    """An executable filter strategy chosen by the cost model."""

    query: STObject
    predicate: STPredicate
    estimate: PlanEstimate
    alternatives: list[PlanEstimate]
    stats: DatasetStatistics
    partitioner_hint: PartitionerHint
    spatial_selectivity: float
    temporal_selectivity: float
    index_order: int = 10

    @property
    def strategy(self) -> str:
        """The winning strategy tag (``"scan"`` or ``"live:<mode>"``)."""
        return self.estimate.strategy

    @property
    def mode(self) -> str | None:
        """The index mode for live strategies, else ``None``."""
        return self.estimate.mode

    @property
    def temporal_first(self) -> bool:
        """Whether refinement evaluates the temporal clause first."""
        return self.estimate.temporal_first

    def explain(self) -> str:
        """A human-readable rendering of the decision, EXPLAIN-style."""
        s = self.stats
        lines = [
            f"FilterPlan for {self.predicate!r} on {s.count} rows "
            f"({s.num_partitions} partitions)",
            f"  statistics: timed={s.timed_fraction:.0%}  "
            f"spatial_sel~{self.spatial_selectivity:.3f}  "
            f"temporal_sel~{self.temporal_selectivity:.3f}  "
            f"skew={s.spatial_skew():.2f}",
            "  strategies considered:",
        ]
        lines.append(_render_estimate(self.estimate, chosen=True))
        lines.extend(_render_estimate(e, chosen=False) for e in self.alternatives)
        lines.append(
            f"  partitioner hint: {self.partitioner_hint.kind} "
            f"({self.partitioner_hint.reason})"
        )
        return "\n".join(lines)


@dataclass
class JoinPlan:
    """An advisory join strategy (index order + partitioner family)."""

    index_order: int | None
    partitioner_hint: PartitionerHint
    left_count: int
    right_count: int
    reason: str

    def explain(self) -> str:
        """A human-readable rendering of the join recommendation."""
        indexing = (
            f"live index (order {self.index_order}) on the right side"
            if self.index_order is not None
            else "nested-loop per partition pair (no index)"
        )
        return "\n".join(
            [
                f"JoinPlan over {self.left_count} x {self.right_count} rows",
                f"  indexing: {indexing}",
                f"  reason: {self.reason}",
                f"  partitioner hint: {self.partitioner_hint.kind} "
                f"({self.partitioner_hint.reason})",
            ]
        )


@dataclass
class KnnPlan:
    """An advisory kNN strategy (scan vs persistent index probing)."""

    use_index: bool
    partitioner_hint: PartitionerHint
    count: int
    k: int
    reason: str

    def explain(self) -> str:
        """A human-readable rendering of the kNN recommendation."""
        route = (
            "probe per-partition trees (persistent index)"
            if self.use_index
            else "scan with per-partition top-k"
        )
        return "\n".join(
            [
                f"KnnPlan for k={self.k} over {self.count} rows",
                f"  route: {route}",
                f"  reason: {self.reason}",
                f"  partitioner hint: {self.partitioner_hint.kind} "
                f"({self.partitioner_hint.reason})",
            ]
        )


class QueryPlanner:
    """Plans and executes spatio-temporal operations cost-based.

    One planner instance can serve many queries; statistics are
    collected per ``plan_*`` call (pass ``stats=`` to reuse a
    collection across queries on the same dataset).
    """

    def __init__(
        self,
        context: "SparkContext",
        model: CostModel | None = None,
        sample_target: int = 512,
        index_order: int = 10,
    ) -> None:
        self._context = context
        self._model = model or CostModel()
        self._sample_target = sample_target
        self._index_order = index_order

    @property
    def model(self) -> CostModel:
        """The cost model this planner ranks strategies with."""
        return self._model

    def statistics(self, rdd: "RDD") -> DatasetStatistics:
        """Collect statistics for *rdd* (one job)."""
        return collect_statistics(rdd, self._sample_target)

    def plan_filter(
        self,
        rdd: "RDD",
        query: STObject,
        predicate: STPredicate,
        stats: DatasetStatistics | None = None,
        require_index: bool = False,
        repetitions: int = 1,
    ) -> FilterPlan:
        """Choose the cheapest filter strategy for *query* on *rdd*.

        ``require_index=True`` restricts the choice to the live-index
        strategies -- the question becomes *which index mode*, matching
        a caller that holds (or intends to persist) an indexed handle.
        ``repetitions`` amortizes build cost over that many queries.
        """
        stats = stats or self.statistics(rdd)
        region = predicate.candidate_region(query.geo.envelope)
        ss = stats.spatial_selectivity(region)
        st = stats.temporal_selectivity(query.time)
        query_timed = query.time is not None
        estimates = self._model.filter_estimates(
            stats.count,
            ss,
            st,
            query_timed,
            stats.timed_fraction,
            partitions=stats.num_partitions,
            repetitions=repetitions,
        )
        if require_index:
            live = [e for e in estimates if e.strategy != "scan"]
            rest = [e for e in estimates if e.strategy == "scan"]
            estimates = live + rest
        elif stats.count < SMALL_DATASET_ROWS:
            # Index builds cannot amortize on tiny data regardless of
            # what the asymptotic model says; pin the scan.
            scans = [e for e in estimates if e.strategy == "scan"]
            rest = [e for e in estimates if e.strategy != "scan"]
            estimates = scans + rest
        best, alternatives = estimates[0], estimates[1:]
        return FilterPlan(
            query=query,
            predicate=predicate,
            estimate=best,
            alternatives=alternatives,
            stats=stats,
            partitioner_hint=recommend_partitioner(stats, query_timed, st),
            spatial_selectivity=ss,
            temporal_selectivity=st,
            index_order=self._index_order,
        )

    def execute(
        self,
        rdd: "RDD",
        query: STObject,
        predicate: STPredicate,
        plan: FilterPlan | None = None,
    ) -> "RDD":
        """Run the (given or freshly computed) filter plan on *rdd*."""
        plan = plan or self.plan_filter(rdd, query, predicate)
        tracer = self._context.tracer
        if tracer.enabled:
            tracer.add("planner.strategy." + plan.strategy.replace(":", "_"), 1)
        if plan.strategy == "scan":
            return filter_ops.filter_no_index(
                rdd, plan.query, plan.predicate, temporal_first=plan.temporal_first
            )
        return filter_ops.filter_live_index(
            rdd,
            plan.query,
            plan.predicate,
            plan.index_order,
            mode=plan.mode,
            temporal_first=plan.temporal_first,
        )

    def plan_join(
        self,
        left: "RDD",
        right: "RDD",
        predicate: STPredicate,
        left_stats: DatasetStatistics | None = None,
        right_stats: DatasetStatistics | None = None,
    ) -> JoinPlan:
        """Recommend a join strategy (advisory; join results never change)."""
        left_stats = left_stats or self.statistics(left)
        right_stats = right_stats or self.statistics(right)
        pairs = left_stats.count * right_stats.count
        if pairs < SMALL_DATASET_ROWS * SMALL_DATASET_ROWS:
            order = None
            reason = (
                f"{pairs} candidate pairs: nested loops beat the build cost"
            )
        else:
            order = self._index_order
            reason = (
                f"{pairs} candidate pairs: index the right side once per "
                "partition pair"
            )
        timed = min(left_stats.timed_fraction, right_stats.timed_fraction)
        hint = recommend_partitioner(
            right_stats if right_stats.count > left_stats.count else left_stats,
            query_timed=timed > 0.9,
            temporal_selectivity=0.0 if timed > 0.9 else 1.0,
        )
        return JoinPlan(
            index_order=order,
            partitioner_hint=hint,
            left_count=left_stats.count,
            right_count=right_stats.count,
            reason=reason,
        )

    def execute_join(
        self,
        left: "RDD",
        right: "RDD",
        predicate: STPredicate,
        plan: JoinPlan | None = None,
    ) -> "RDD":
        """Run the (given or freshly computed) join plan."""
        plan = plan or self.plan_join(left, right, predicate)
        return join_ops.spatial_join(
            left, right, predicate, index_order=plan.index_order
        )

    def plan_knn(
        self,
        rdd: "RDD",
        query: STObject,
        k: int,
        stats: DatasetStatistics | None = None,
    ) -> KnnPlan:
        """Recommend a kNN route for *query* over *rdd*."""
        stats = stats or self.statistics(rdd)
        # Index probing pays off when the data dwarfs the result: the
        # tree touches O(log n + k) entries per partition vs n for scan.
        use_index = stats.count > max(
            SMALL_DATASET_ROWS, 50 * max(1, k)
        )
        reason = (
            f"{stats.count} rows >> k={k}: tree descent prunes most entries"
            if use_index
            else f"{stats.count} rows with k={k}: scanning is already cheap"
        )
        return KnnPlan(
            use_index=use_index,
            partitioner_hint=recommend_partitioner(
                stats, query_timed=False, temporal_selectivity=1.0
            ),
            count=stats.count,
            k=k,
            reason=reason,
        )

    def execute_knn(
        self,
        rdd: "RDD",
        query: STObject,
        k: int,
        plan: KnnPlan | None = None,
    ) -> knn_ops.KnnResult:
        """Run the (given or freshly computed) kNN plan."""
        plan = plan or self.plan_knn(rdd, query, k)
        if plan.use_index:
            from repro.core.spatial_rdd import spatial

            return spatial(rdd).index(order=self._index_order).knn(query, k)
        return knn_ops.knn(rdd, query, k)
