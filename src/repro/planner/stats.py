"""Dataset statistics for the cost-based planner.

One distributed job reduces each partition to a tiny summary -- exact
cardinality, spatial/temporal bounds, timed-member count and a
fixed-size **reservoir sample** of its keys -- and the driver merges
them into a :class:`DatasetStatistics`.  Selectivity questions
("what fraction of rows intersects this window?") are then answered
from the sample without touching the data again.

Reservoir sampling keeps the per-partition memory bounded no matter how
large a partition grows; the driver never sees more than
``sample_target`` keys in total (modulo small per-partition minimums).
Sampling is seeded per split, so statistics are deterministic for a
given dataset and seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry.envelope import Envelope
from repro.temporal.interval import Interval, TemporalExpression

#: Default total sample size the collector aims for.
DEFAULT_SAMPLE_TARGET = 512

#: Every partition keeps at least this many keys in its reservoir.
MIN_PARTITION_RESERVOIR = 16


@dataclass
class _PartitionSummary:
    """What one partition reduces to: counts, bounds and a reservoir."""

    count: int
    timed: int
    envelope: Envelope
    t_lo: float
    t_hi: float
    reservoir: list


@dataclass
class DatasetStatistics:
    """Merged dataset statistics backing the planner's cost estimates.

    ``sample`` holds STObject keys drawn (approximately) uniformly; the
    ``*_selectivity`` estimators evaluate predicates against it.  The
    extents and counts are exact.
    """

    count: int
    num_partitions: int
    partition_cardinalities: list[int]
    spatial_extent: Envelope
    temporal_extent: Interval | None
    timed_count: int
    sample: list = field(default_factory=list)

    @property
    def timed_fraction(self) -> float:
        """The exact fraction of rows carrying a temporal component."""
        return self.timed_count / self.count if self.count else 0.0

    def spatial_selectivity(self, region: Envelope) -> float:
        """Estimated fraction of rows whose envelope intersects *region*.

        Falls back to 1.0 (no pruning assumed) when the sample is empty.
        """
        if not self.sample:
            return 1.0
        hits = sum(1 for key in self.sample if key.geo.envelope.intersects(region))
        return hits / len(self.sample)

    def temporal_selectivity(self, time: TemporalExpression | None) -> float:
        """Estimated fraction of rows whose temporal clause can hold.

        Under the combined semantics an untimed query matches only
        untimed rows and a timed query only timed rows whose interval
        intersects -- the estimator mirrors exactly that.
        """
        if not self.sample:
            return 1.0
        if time is None:
            untimed = sum(1 for key in self.sample if key.time is None)
            return untimed / len(self.sample)
        hits = sum(
            1
            for key in self.sample
            if key.time is not None
            and key.time.start <= time.end
            and time.start <= key.time.end
        )
        return hits / len(self.sample)

    def spatial_skew(self) -> float:
        """The sample share of the densest quadrant of the extent.

        0.25 means perfectly uniform; 1.0 means everything clusters in
        one quadrant.  Drives the grid-vs-BSP/quadtree recommendation.
        """
        if not self.sample or self.spatial_extent.is_empty:
            return 0.25
        ext = self.spatial_extent
        mid_x = (ext.min_x + ext.max_x) / 2.0
        mid_y = (ext.min_y + ext.max_y) / 2.0
        quadrants = [0, 0, 0, 0]
        for key in self.sample:
            env = key.geo.envelope
            cx = (env.min_x + env.max_x) / 2.0
            cy = (env.min_y + env.max_y) / 2.0
            quadrants[(cx > mid_x) * 2 + (cy > mid_y)] += 1
        return max(quadrants) / len(self.sample)

    def mean_partition_cardinality(self) -> float:
        """Average rows per partition (0 for an empty dataset)."""
        if not self.partition_cardinalities:
            return 0.0
        return self.count / len(self.partition_cardinalities)


def _summarize_partition(
    split: int, it: Iterator, reservoir_size: int, seed: int
) -> Iterator[_PartitionSummary]:
    """Reduce one partition to a :class:`_PartitionSummary`."""
    rng = random.Random(seed * 1_000_003 + split)
    reservoir: list = []
    count = 0
    timed = 0
    env = Envelope.empty()
    t_lo, t_hi = float("inf"), float("-inf")
    for kv in it:
        key = kv[0]
        count += 1
        env = env.merge(key.geo.envelope)
        if key.time is not None:
            timed += 1
            t_lo = min(t_lo, key.time.start)
            t_hi = max(t_hi, key.time.end)
        if len(reservoir) < reservoir_size:
            reservoir.append(key)
        else:
            j = rng.randrange(count)
            if j < reservoir_size:
                reservoir[j] = key
    yield _PartitionSummary(count, timed, env, t_lo, t_hi, reservoir)


def collect_statistics(
    rdd,
    sample_target: int = DEFAULT_SAMPLE_TARGET,
    seed: int = 17,
) -> DatasetStatistics:
    """Collect :class:`DatasetStatistics` for an ``RDD[(STObject, V)]``.

    Runs exactly one job; each task returns a constant-size summary, so
    the driver-side cost is proportional to the partition count and the
    sample size, never the data size.
    """
    per_partition = max(
        MIN_PARTITION_RESERVOIR,
        -(-sample_target // max(1, rdd.num_partitions)),
    )

    def summarize(split: int, it: Iterator) -> Iterator[_PartitionSummary]:
        return _summarize_partition(split, it, per_partition, seed)

    summaries = rdd.map_partitions_with_index(summarize).collect()
    count = sum(s.count for s in summaries)
    timed = sum(s.timed for s in summaries)
    envelope = Envelope.empty()
    t_lo, t_hi = float("inf"), float("-inf")
    sample: list = []
    for s in summaries:
        envelope = envelope.merge(s.envelope)
        t_lo = min(t_lo, s.t_lo)
        t_hi = max(t_hi, s.t_hi)
        sample.extend(s.reservoir)
    return DatasetStatistics(
        count=count,
        num_partitions=len(summaries),
        partition_cardinalities=[s.count for s in summaries],
        spatial_extent=envelope,
        temporal_extent=Interval(t_lo, t_hi) if t_lo <= t_hi else None,
        timed_count=timed,
        sample=sample,
    )
