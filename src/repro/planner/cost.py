"""The analytical cost model behind the query planner.

Costs are abstract work units, not seconds: each constant is the
*relative* price of one primitive (an envelope overlap test, an exact
geometry predicate, boxing an entry into a tree).  The model only needs
to rank strategies correctly -- absolute calibration does not matter,
which is what keeps it portable across machines.

For a filter over ``n`` rows with estimated spatial selectivity ``ss``
and temporal selectivity ``st`` the candidate strategies are:

- **scan, spatial-first** (the paper's execution): every row pays the
  envelope pre-test, survivors pay the exact spatial then temporal
  predicate;
- **scan, temporal-first**: every row pays the (cheaper) temporal
  clause first -- two float comparisons -- and only temporal survivors
  touch geometry at all;
- **live index per mode**: pay the per-partition build, then only the
  index's candidates reach refinement.  ``spatial`` admits ``n*ss``
  candidates, the time-aware modes admit roughly ``n*ss*st`` (the
  forest at slice granularity, the 3D tree at node granularity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Effective temporal pruning floors: a time-sliced forest prunes at
#: slice granularity, a 3D tree at node granularity, so neither reaches
#: arbitrarily small effective selectivity.
FOREST_SELECTIVITY_FLOOR = 1.0 / 16.0
TREE3D_SELECTIVITY_FLOOR = 1.0 / 32.0


@dataclass(frozen=True)
class CostConstants:
    """Relative prices of the execution primitives (work units)."""

    #: One envelope-vs-envelope overlap test.
    envelope_test: float = 1.0
    #: One temporal-clause evaluation (two float comparisons + None checks).
    temporal_test: float = 0.6
    #: One exact spatial predicate on real geometries.
    spatial_refine: float = 8.0
    #: Boxing one entry during an index bulk load (amortized sort share
    #: is added separately via a log factor).
    index_build_per_item: float = 2.0
    #: Walking the tree per admitted candidate.
    index_probe_per_candidate: float = 1.2
    #: Extra per-item build price of the time-sliced forest (time sort,
    #: slice packing, directory build).
    forest_build_surcharge: float = 0.4
    #: Extra per-item build price of the 3D STR load (third sort pass).
    tree3d_build_surcharge: float = 0.6


@dataclass
class PlanEstimate:
    """One strategy's estimated cost and candidate volume.

    ``strategy`` is ``"scan"`` or ``"live:<mode>"``; ``candidates`` is
    how many rows the model expects to reach exact-predicate
    refinement (for a scan: every row that survives the first clause).
    """

    strategy: str
    temporal_first: bool
    cost: float
    candidates: float
    build_cost: float = 0.0
    detail: str = ""

    @property
    def mode(self) -> str | None:
        """The index mode for live strategies, else ``None``."""
        if self.strategy.startswith("live:"):
            return self.strategy.split(":", 1)[1]
        return None


@dataclass(frozen=True)
class CostModel:
    """Ranks filter strategies from dataset statistics + selectivities."""

    constants: CostConstants = field(default_factory=CostConstants)

    def filter_estimates(
        self,
        n: int,
        spatial_selectivity: float,
        temporal_selectivity: float,
        query_timed: bool,
        timed_fraction: float,
        partitions: int = 1,
        repetitions: int = 1,
    ) -> list[PlanEstimate]:
        """Every candidate strategy's estimate, best (cheapest) first.

        ``temporal_selectivity`` must already follow the combined
        semantics (untimed query -> untimed fraction; timed query ->
        fraction of timed rows intersecting), as
        :meth:`repro.planner.stats.DatasetStatistics.temporal_selectivity`
        computes it.  ``repetitions`` amortizes index build cost over
        that many queries against the same (persisted or cached)
        handle; a scan pays full price every time.
        """
        c = self.constants
        n = max(0, n)
        ss = min(1.0, max(0.0, spatial_selectivity))
        st = min(1.0, max(0.0, temporal_selectivity))
        per_part = max(2.0, n / max(1, partitions))
        log_n = math.log2(per_part) if per_part > 1 else 1.0
        refine = c.spatial_refine + c.temporal_test
        amortize = max(1, repetitions)

        estimates = [
            PlanEstimate(
                strategy="scan",
                temporal_first=False,
                cost=n * (c.envelope_test + ss * refine),
                candidates=float(n),
                detail="envelope pre-test per row, spatial refinement first",
            ),
            PlanEstimate(
                strategy="scan",
                temporal_first=True,
                cost=n * (c.temporal_test + st * (c.envelope_test + c.spatial_refine)),
                candidates=float(n),
                detail="temporal clause per row, geometry only for survivors",
            ),
        ]

        build_spatial = n * c.index_build_per_item * log_n / amortize
        cands_spatial = n * ss
        estimates.append(
            PlanEstimate(
                strategy="live:spatial",
                temporal_first=query_timed and st < ss,
                cost=build_spatial
                + cands_spatial * (c.index_probe_per_candidate + refine),
                candidates=cands_spatial,
                build_cost=build_spatial,
                detail="STR-tree per partition; time left to refinement",
            )
        )

        # Time-aware modes only pay off on timed rows; untimed rows are
        # either all the candidates (untimed query) or pruned wholesale.
        st_forest = max(st, FOREST_SELECTIVITY_FLOOR) if query_timed else st
        cands_forest = n * ss * (st_forest if timed_fraction > 0 else 1.0)
        build_forest = (
            n * (c.index_build_per_item + c.forest_build_surcharge) * log_n / amortize
        )
        estimates.append(
            PlanEstimate(
                strategy="live:temporal",
                temporal_first=False,
                cost=build_forest
                + cands_forest * (c.index_probe_per_candidate + refine),
                candidates=cands_forest,
                build_cost=build_forest,
                detail="time-sliced forest; slices outside the window pruned",
            )
        )

        st_3d = max(st, TREE3D_SELECTIVITY_FLOOR) if query_timed else st
        cands_3d = n * ss * (st_3d if timed_fraction > 0 else 1.0)
        build_3d = (
            n * (c.index_build_per_item + c.tree3d_build_surcharge) * log_n / amortize
        )
        estimates.append(
            PlanEstimate(
                strategy="live:3d",
                temporal_first=False,
                cost=build_3d + cands_3d * (c.index_probe_per_candidate + refine),
                candidates=cands_3d,
                build_cost=build_3d,
                detail="(x, y, t) STR bulk load; pruning inside the tree",
            )
        )

        estimates.sort(key=lambda e: (e.cost, e.strategy))
        return estimates

    def best_filter(self, *args, **kwargs) -> PlanEstimate:
        """The cheapest strategy from :meth:`filter_estimates`."""
        return self.filter_estimates(*args, **kwargs)[0]

    def with_constants(self, **overrides) -> "CostModel":
        """A copy of the model with some constants replaced."""
        return CostModel(constants=replace(self.constants, **overrides))
