"""STARK reproduction: efficient spatio-temporal event processing.

A from-scratch Python reproduction of *"Efficient spatio-temporal event
processing with STARK"* (Hagedorn & Räth, EDBT 2017), including the two
substrates the paper builds on -- a Spark-like RDD engine
(:mod:`repro.spark`) and a JTS-like geometry engine
(:mod:`repro.geometry`) -- plus the STARK layer itself: the
:class:`~repro.core.stobject.STObject` data type, spatio-temporal
filter/join/kNN/clustering operators, spatial partitioning (grid and
cost-based BSP) and the three indexing modes (none / live / persistent).

Quickstart::

    from repro import SparkContext, STObject

    with SparkContext("events") as sc:
        raw = sc.parallelize(rows)
        events = raw.map(lambda r: (STObject(r[3], r[2]), (r[0], r[1])))
        qry = STObject("POLYGON ((...))", begin, end)
        contain = events.containedBy(qry)
        intersect = events.liveIndex(order=5).intersect(qry)
"""

from repro.core import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    IndexedSpatialRDD,
    STObject,
    STPredicate,
    SpatialRDDFunctions,
    spatial,
    within_distance_predicate,
)
from repro.geometry import (
    Envelope,
    Geometry,
    LineString,
    Point,
    Polygon,
    parse_wkt,
)
from repro.partitioners import (
    BSPartitioner,
    GridPartitioner,
    SpatialPartitioner,
    SpatioTemporalPartitioner,
    TemporalRangePartitioner,
)
from repro.spark import RDD, SparkContext
from repro.temporal import Instant, Interval

__version__ = "1.0.0"

__all__ = [
    "BSPartitioner",
    "CONTAINED_BY",
    "CONTAINS",
    "Envelope",
    "Geometry",
    "GridPartitioner",
    "INTERSECTS",
    "IndexedSpatialRDD",
    "Instant",
    "Interval",
    "LineString",
    "Point",
    "Polygon",
    "RDD",
    "STObject",
    "STPredicate",
    "SparkContext",
    "SpatialPartitioner",
    "SpatialRDDFunctions",
    "SpatioTemporalPartitioner",
    "TemporalRangePartitioner",
    "parse_wkt",
    "spatial",
    "within_distance_predicate",
]
