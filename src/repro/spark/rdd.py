"""The RDD abstraction: lazy, partitioned, immutable collections.

An :class:`RDD` is a node in a lineage DAG.  Transformations build new
nodes without computing anything; actions walk the lineage and execute
one task per partition through the context's scheduler.  The subset
implemented here is the one STARK's operators are written against,
plus the usual conveniences (``sortBy``, ``takeOrdered``, ``sample``,
``zipWithIndex``) that the examples and benchmarks use.

Key-value functionality (``reduceByKey``, ``join``, ``partitionBy``,
...) is available on any RDD whose elements are 2-tuples, mirroring
Spark's implicit ``PairRDDFunctions`` conversion.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import random
from abc import ABC, abstractmethod
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    TypeVar,
)

from repro.spark.cancellation import Heartbeat
from repro.spark.partitioner import HashPartitioner, Partitioner

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class RDD(ABC, Generic[T]):
    """Base class for all RDDs.

    Subclasses implement :meth:`compute` (produce one partition's
    elements) and :attr:`num_partitions`.  Everything else -- the full
    transformation/action API, caching, lineage bookkeeping -- lives
    here.
    """

    def __init__(
        self,
        context: "SparkContext",
        parents: Iterable["RDD"] = (),
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        from repro.spark.context import SparkContext  # cycle guard

        # Tasks shipped to worker processes rebuild their lineage against
        # the worker's task context (see repro.spark.worker), which quacks
        # like a SparkContext without being one.
        assert isinstance(context, SparkContext) or getattr(
            context, "is_task_context", False
        )
        self.context = context
        self.id = context._next_rdd_id()
        self.parents = tuple(parents)
        #: The partitioner that co-locates this RDD's keys, if any.
        #: Set for shuffled RDDs and preserved through ``mapValues`` &co.
        self.partitioner = partitioner
        self._cached = False
        self.name: str | None = None

    # -- subclass contract -------------------------------------------------

    @property
    @abstractmethod
    def num_partitions(self) -> int:
        """Number of partitions (a.k.a. splits)."""

    @abstractmethod
    def compute(self, split: int) -> Iterator[T]:
        """Produce the elements of partition *split*."""

    # -- caching -----------------------------------------------------------

    def persist(self) -> "RDD[T]":
        """Mark this RDD's partitions for in-memory caching.

        The first computation of each partition materializes it; later
        computations reuse the cached list.  Matches Spark's
        ``MEMORY_ONLY`` level (the only one a single process needs).
        """
        self._cached = True
        return self

    cache = persist

    def unpersist(self) -> "RDD[T]":
        """Drop this RDD's cached partitions."""
        self._cached = False
        self.context._cache.evict_rdd(self.id)
        return self

    def iterator(self, split: int) -> Iterator[T]:
        """Compute a partition, transparently consulting the cache."""
        if not self._cached:
            return self.compute(split)
        injector = self.context.fault_injector
        if injector is not None:
            # A lost cache block surfaces as a task failure; the retried
            # attempt recomputes the partition from lineage.
            injector.check("cache.get", key=(self.id, split))
        cache = self.context._cache
        hit = cache.get(self.id, split)
        if hit is not None:
            self.context.metrics.cache_hits += 1
            if self.context.tracer.enabled:
                # Attributes the hit to the consuming task's span.
                self.context.tracer.add("cache_hits", 1)
            return iter(hit)
        data = list(self.compute(split))
        cache.put(self.id, split, data)
        return iter(data)

    def set_name(self, name: str) -> "RDD[T]":
        """Attach a debug name (shown in ``toDebugString``)."""
        self.name = name
        return self

    # -- narrow transformations ---------------------------------------------

    def map(self, fn: Callable[[T], U]) -> "RDD[U]":
        """Apply *fn* to every element."""
        return MapPartitionsRDD(self, lambda _split, it: map(fn, it))

    def filter(self, pred: Callable[[T], bool]) -> "RDD[T]":
        """Keep elements for which *pred* is true."""
        return MapPartitionsRDD(
            self, lambda _split, it: filter(pred, it), preserves_partitioning=True
        )

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "RDD[U]":
        """Apply *fn* and flatten the results."""
        return MapPartitionsRDD(
            self, lambda _split, it: itertools.chain.from_iterable(map(fn, it))
        )

    def map_partitions(
        self,
        fn: Callable[[Iterator[T]], Iterable[U]],
        preserves_partitioning: bool = False,
    ) -> "RDD[U]":
        """Apply *fn* once per partition."""
        return MapPartitionsRDD(
            self, lambda _split, it: fn(it), preserves_partitioning
        )

    def map_partitions_with_index(
        self,
        fn: Callable[[int, Iterator[T]], Iterable[U]],
        preserves_partitioning: bool = False,
    ) -> "RDD[U]":
        """Like :meth:`map_partitions` but *fn* also receives the split id."""
        return MapPartitionsRDD(self, fn, preserves_partitioning)

    def glom(self) -> "RDD[list[T]]":
        """Turn each partition into a single list element."""
        return MapPartitionsRDD(self, lambda _split, it: iter([list(it)]))

    def key_by(self, fn: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        """Pair every element with ``fn(element)`` as its key."""
        return self.map(lambda x: (fn(x), x))

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pair every element with its global index (stable order)."""
        counts = self.context.run_job(self, lambda it: sum(1 for _ in it))
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def attach(split: int, it: Iterator[T]) -> Iterator[tuple[T, int]]:
            return ((x, offsets[split] + i) for i, x in enumerate(it))

        return MapPartitionsRDD(self, attach)

    def union(self, other: "RDD[T]") -> "RDD[T]":
        """Concatenate two RDDs (duplicates preserved, like Spark)."""
        return UnionRDD(self.context, [self, other])

    def cartesian(self, other: "RDD[U]") -> "RDD[tuple[T, U]]":
        """All pairs of elements from the two RDDs."""
        return CartesianRDD(self, other)

    def sample(
        self, fraction: float, seed: int = 17, with_replacement: bool = False
    ) -> "RDD[T]":
        """Bernoulli (or Poisson-ish) sample of roughly ``fraction`` of rows."""
        if fraction < 0:
            raise ValueError("fraction must be non-negative")

        def sampler(split: int, it: Iterator[T]) -> Iterator[T]:
            rng = random.Random(seed * 1_000_003 + split)
            if with_replacement:
                whole, rest = int(fraction), fraction - int(fraction)
                for x in it:
                    copies = whole + (1 if rng.random() < rest else 0)
                    for _ in range(copies):
                        yield x
            else:
                for x in it:
                    if rng.random() < fraction:
                        yield x

        return MapPartitionsRDD(self, sampler, preserves_partitioning=True)

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Reduce partition count without a shuffle (grouping adjacent splits)."""
        if num_partitions < 1:
            raise ValueError("need at least 1 partition")
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        """Change partition count via a full shuffle (round-robin)."""
        indexed = self.map_partitions_with_index(
            lambda split, it: (((split + i) % num_partitions, x) for i, x in enumerate(it))
        )
        shuffled = ShuffledRDD(indexed, _IdentityPartitioner(num_partitions))
        return shuffled.values()

    def distinct(self) -> "RDD[T]":
        """Remove duplicates (requires hashable elements)."""
        paired = self.map(lambda x: (x, None))
        return paired.reduce_by_key(lambda a, _b: a).keys()

    def subtract(self, other: "RDD[T]") -> "RDD[T]":
        """Elements of this RDD absent from *other* (duplicates preserved)."""
        tagged = self.map(lambda x: (x, True)).cogroup(
            other.map(lambda x: (x, True))
        )

        def keep(kv: tuple[T, tuple[list, list]]) -> list[T]:
            own_copies, in_other = kv[1]
            if in_other:
                return []
            return [kv[0]] * len(own_copies)

        return tagged.flat_map(keep)

    def intersection(self, other: "RDD[T]") -> "RDD[T]":
        """Distinct elements present in both RDDs."""
        grouped = self.map(lambda x: (x, True)).cogroup(
            other.map(lambda x: (x, True))
        )
        return grouped.flat_map(
            lambda kv: [kv[0]] if kv[1][0] and kv[1][1] else []
        )

    def zip(self, other: "RDD[U]") -> "RDD[tuple[T, U]]":
        """Pair elements positionally; both sides must align exactly.

        Like Spark, requires the same partition count and the same
        number of elements per partition (checked lazily per task).
        """
        if self.num_partitions != other.num_partitions:
            raise ValueError(
                f"cannot zip RDDs with {self.num_partitions} and "
                f"{other.num_partitions} partitions"
            )
        return _ZippedRDD(self, other)

    def sort_by(
        self,
        key_fn: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD[T]":
        """Globally sort by ``key_fn`` using sampled range boundaries."""
        n_out = num_partitions or max(1, self.num_partitions)
        sample = self.map(key_fn).collect_sample(max(n_out * 20, 100))
        sample.sort()
        bounds = [
            sample[int(len(sample) * i / n_out)]
            for i in range(1, n_out)
        ] if sample else []

        part = _RangePartitioner(bounds, ascending)
        keyed = self.map(lambda x: (key_fn(x), x))
        shuffled = ShuffledRDD(keyed, part)

        def sort_partition(it: Iterator[tuple[Any, T]]) -> Iterator[tuple[Any, T]]:
            rows = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return iter(rows)

        return shuffled.map_partitions(sort_partition, True).values()

    def collect_sample(self, target: int) -> list[T]:
        """A cheap sample of up to roughly *target* elements (internal)."""
        total = self.count()
        if total == 0:
            return []
        fraction = min(1.0, target / total)
        sampled = self.sample(fraction).collect()
        return sampled if sampled else self.take(min(total, target))

    # -- pair-RDD transformations -------------------------------------------

    def keys(self) -> "RDD[Any]":
        """The first element of every (key, value) pair."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD[Any]":
        """The second element of every (key, value) pair."""
        return MapPartitionsRDD(
            self, lambda _split, it: (kv[1] for kv in it), preserves_partitioning=False
        )

    def map_values(self, fn: Callable[[V], U]) -> "RDD[tuple[K, U]]":
        """Transform values only; key partitioning is preserved."""
        return MapPartitionsRDD(
            self,
            lambda _split, it: ((k, fn(v)) for k, v in it),
            preserves_partitioning=True,
        )

    def flat_map_values(self, fn: Callable[[V], Iterable[U]]) -> "RDD[tuple[K, U]]":
        """Expand each value to zero or more, keeping its key and
        the key partitioning."""
        return MapPartitionsRDD(
            self,
            lambda _split, it: ((k, u) for k, v in it for u in fn(v)),
            preserves_partitioning=True,
        )

    def partition_by(self, partitioner: Partitioner) -> "RDD[tuple[K, V]]":
        """Redistribute (key, value) pairs according to *partitioner*.

        This is the method STARK's spatial partitioners are applied
        through.  A no-op (no shuffle) when the RDD already carries an
        equal partitioner.
        """
        if self.partitioner is not None and self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def combine_by_key(
        self,
        create_combiner: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        partitioner: Partitioner | None = None,
    ) -> "RDD[tuple[K, U]]":
        """The general shuffle-based aggregation all others reduce to."""
        # Default reduce-side width follows the context's parallelism
        # (Spark's spark.default.parallelism), NOT the parent's partition
        # count: a fine-grained parent (e.g. a 64x64 tile join) must not
        # force thousands of reduce tasks on every downstream shuffle.
        part = partitioner or HashPartitioner(self.context.default_parallelism)
        return ShuffledRDD(
            self,
            part,
            aggregator=_Aggregator(create_combiner, merge_value, merge_combiners),
        )

    def reduce_by_key(
        self, fn: Callable[[V, V], V], partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, V]]":
        """Merge each key's values with an associative *fn* (shuffles)."""
        return self.combine_by_key(lambda v: v, fn, fn, partitioner)

    def aggregate_by_key(
        self,
        zero: U,
        seq_fn: Callable[[U, V], U],
        comb_fn: Callable[[U, U], U],
        partitioner: Partitioner | None = None,
    ) -> "RDD[tuple[K, U]]":
        """Aggregate each key's values from *zero* with distinct
        within-partition (*seq_fn*) and merge (*comb_fn*) steps."""
        import copy

        return self.combine_by_key(
            lambda v: seq_fn(copy.deepcopy(zero), v), seq_fn, comb_fn, partitioner
        )

    def group_by_key(
        self, partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, list[V]]]":
        """Collect each key's values into one list (shuffles)."""
        return self.combine_by_key(
            lambda v: [v],
            lambda acc, v: acc + [v],
            lambda a, b: a + b,
            partitioner,
        )

    def group_by(
        self, key_fn: Callable[[T], K], partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, list[T]]]":
        """Group elements by ``key_fn(element)`` (shuffles)."""
        return self.map(lambda x: (key_fn(x), x)).group_by_key(partitioner)

    def join(
        self, other: "RDD[tuple[K, U]]", partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, tuple[V, U]]]":
        """Inner equi-join on keys."""
        return self.cogroup(other, partitioner).flat_map_values(
            lambda pair: [(v, u) for v in pair[0] for u in pair[1]]
        )

    def left_outer_join(
        self, other: "RDD[tuple[K, U]]", partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, tuple[V, U | None]]]":
        """Equi-join keeping every left key; unmatched pair with None."""
        def expand(pair: tuple[list, list]) -> list:
            left, right = pair
            if not right:
                return [(v, None) for v in left]
            return [(v, u) for v in left for u in right]

        return self.cogroup(other, partitioner).flat_map_values(expand)

    def right_outer_join(
        self, other: "RDD[tuple[K, U]]", partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, tuple[V | None, U]]]":
        """Equi-join keeping every right key; unmatched pair with None."""
        def expand(pair: tuple[list, list]) -> list:
            left, right = pair
            if not left:
                return [(None, u) for u in right]
            return [(v, u) for v in left for u in right]

        return self.cogroup(other, partitioner).flat_map_values(expand)

    def full_outer_join(
        self, other: "RDD[tuple[K, U]]", partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, tuple[V | None, U | None]]]":
        """Equi-join keeping keys from both sides; gaps become None."""
        def expand(pair: tuple[list, list]) -> list:
            left, right = pair
            if not left:
                return [(None, u) for u in right]
            if not right:
                return [(v, None) for v in left]
            return [(v, u) for v in left for u in right]

        return self.cogroup(other, partitioner).flat_map_values(expand)

    def cogroup(
        self, other: "RDD[tuple[K, U]]", partitioner: Partitioner | None = None
    ) -> "RDD[tuple[K, tuple[list[V], list[U]]]]":
        """Group both RDDs' values per key into a pair of lists."""
        part = partitioner or HashPartitioner(self.context.default_parallelism)
        left = self.map_values(lambda v: (0, v))
        right = other.map_values(lambda u: (1, u))
        tagged = left.union(right)

        def create(v: tuple[int, Any]) -> tuple[list, list]:
            groups: tuple[list, list] = ([], [])
            groups[v[0]].append(v[1])
            return groups

        def merge_value(acc: tuple[list, list], v: tuple[int, Any]):
            acc[v[0]].append(v[1])
            return acc

        def merge_combiners(a: tuple[list, list], b: tuple[list, list]):
            a[0].extend(b[0])
            a[1].extend(b[1])
            return a

        return tagged.combine_by_key(create, merge_value, merge_combiners, part)

    # -- actions -------------------------------------------------------------

    def collect(self) -> list[T]:
        """Materialize every element in partition order."""
        chunks = self.context.run_job(self, list)
        return [x for chunk in chunks for x in chunk]

    def count(self) -> int:
        """Number of elements."""
        return sum(self.context.run_job(self, lambda it: sum(1 for _ in it)))

    def is_empty(self) -> bool:
        """True when the RDD has no elements (computes at most one)."""
        return not self.take(1)

    def first(self) -> T:
        """The first element; raises ``ValueError`` on an empty RDD."""
        rows = self.take(1)
        if not rows:
            raise ValueError("RDD is empty")
        return rows[0]

    def take(self, n: int) -> list[T]:
        """The first *n* elements, computing as few partitions as possible.

        Each probed partition runs as a one-task job through the
        context's scheduler (like Spark's incremental ``take`` jobs), so
        job/task accounting, tracing and nested-job detection all see
        the same state as any other action.
        """
        if n <= 0:
            return []
        out: list[T] = []
        for split in range(self.num_partitions):
            needed = n - len(out)
            chunk = self.context.run_job(
                self,
                lambda it: list(itertools.islice(it, needed)),
                partitions=[split],
            )[0]
            out.extend(chunk)
            if len(out) >= n:
                break
        return out

    def top(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        """The *n* largest elements, descending."""
        per_part = self.context.run_job(
            self, lambda it: heapq.nlargest(n, it, key=key)
        )
        return heapq.nlargest(n, itertools.chain.from_iterable(per_part), key=key)

    def take_ordered(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        """The *n* smallest elements, ascending."""
        per_part = self.context.run_job(
            self, lambda it: heapq.nsmallest(n, it, key=key)
        )
        return heapq.nsmallest(n, itertools.chain.from_iterable(per_part), key=key)

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Fold the RDD with an associative *fn*; raises on empty RDDs."""
        def reduce_partition(it: Iterator[T]) -> list[T]:
            it = iter(it)
            try:
                acc = next(it)
            except StopIteration:
                return []
            for x in it:
                acc = fn(acc, x)
            return [acc]

        partials = [
            x for chunk in self.context.run_job(self, reduce_partition) for x in chunk
        ]
        if not partials:
            raise ValueError("reduce of empty RDD")
        acc = partials[0]
        for x in partials[1:]:
            acc = fn(acc, x)
        return acc

    def fold(self, zero: T, fn: Callable[[T, T], T]) -> T:
        """Like :meth:`reduce` but seeded with *zero* per partition,
        so it works on empty RDDs."""
        import copy

        def fold_partition(it: Iterator[T]) -> T:
            acc = copy.deepcopy(zero)
            for x in it:
                acc = fn(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for part in self.context.run_job(self, fold_partition):
            acc = fn(acc, part)
        return acc

    def aggregate(
        self, zero: U, seq_fn: Callable[[U, T], U], comb_fn: Callable[[U, U], U]
    ) -> U:
        """Fold to a different result type: *seq_fn* accumulates within
        a partition, *comb_fn* merges the per-partition accumulators."""
        import copy

        def agg_partition(it: Iterator[T]) -> U:
            acc = copy.deepcopy(zero)
            for x in it:
                acc = seq_fn(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for part in self.context.run_job(self, agg_partition):
            acc = comb_fn(acc, part)
        return acc

    def sum(self) -> Any:
        """Sum of the elements (0 on an empty RDD)."""
        return self.aggregate(0, lambda a, x: a + x, lambda a, b: a + b)

    def stats(self) -> "StatCounter":
        """Count / mean / stdev / min / max of a numeric RDD, one pass."""
        def seq(acc: StatCounter, x) -> StatCounter:
            acc.merge_value(x)
            return acc

        def comb(a: StatCounter, b: StatCounter) -> StatCounter:
            a.merge_counter(b)
            return a

        return self.aggregate(StatCounter(), seq, comb)

    def mean(self) -> float:
        """Arithmetic mean of a numeric RDD."""
        return self.stats().mean

    def stdev(self) -> float:
        """Population standard deviation of a numeric RDD."""
        return self.stats().stdev

    def min(self, key: Callable[[T], Any] | None = None) -> T:
        """Smallest element (by *key* if given); raises when empty."""
        rows = self.take_ordered(1, key=key)
        if not rows:
            raise ValueError("min of empty RDD")
        return rows[0]

    def max(self, key: Callable[[T], Any] | None = None) -> T:
        """Largest element (by *key* if given); raises when empty."""
        rows = self.top(1, key=key)
        if not rows:
            raise ValueError("max of empty RDD")
        return rows[0]

    def count_by_key(self) -> dict[K, int]:
        """Occurrences per key, collected to the driver (no shuffle)."""
        def count_partition(it: Iterator[tuple[K, V]]) -> dict[K, int]:
            counts: dict[K, int] = defaultdict(int)
            for k, _v in it:
                counts[k] += 1
            return dict(counts)

        totals: dict[K, int] = defaultdict(int)
        for partial in self.context.run_job(self, count_partition):
            for k, c in partial.items():
                totals[k] += c
        return dict(totals)

    def count_by_value(self) -> dict[T, int]:
        """Occurrences per distinct element, collected to the driver."""
        return self.map(lambda x: (x, None)).count_by_key()

    def foreach(self, fn: Callable[[T], None]) -> None:
        """Run *fn* on every element for its side effects."""
        self.context.run_job(self, lambda it: [fn(x) for x in it] and None)

    def foreach_partition(self, fn: Callable[[Iterator[T]], None]) -> None:
        """Run *fn* once per partition iterator for its side effects."""
        self.context.run_job(self, lambda it: fn(it))

    def save_as_object_file(self, path: str) -> None:
        """Write each partition as a pickle part-file under *path*.

        The stand-in for ``saveAsObjectFile`` to HDFS that STARK's
        persistent indexing relies on (paper section 2.2).
        """
        from repro.spark import storage

        storage.save_object_file(self, path)

    def save_as_text_file(self, path: str) -> None:
        """Write ``str(element)`` lines, one part-file per partition."""
        from repro.spark import storage

        storage.save_text_file(self, path)

    # -- introspection -------------------------------------------------------

    def to_debug_string(self, _indent: int = 0) -> str:
        """Render the lineage tree, one node per line."""
        label = f"({self.num_partitions}) {type(self).__name__}[{self.id}]"
        if self.name:
            label += f" {self.name}"
        lines = [" " * _indent + label]
        for parent in self.parents:
            lines.append(parent.to_debug_string(_indent + 2))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}[{self.id}] ({self.num_partitions} partitions)"


math_inf = float("inf")


class StatCounter:
    """Welford-style running statistics, mergeable across partitions."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math_inf
        self._max = -math_inf

    def merge_value(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge_counter(self, other: "StatCounter") -> None:
        """Fold another counter in (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        delta = other._mean - self._mean
        total = self.count + other.count
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        """Arithmetic mean; raises when no values were merged."""
        if self.count == 0:
            raise ValueError("mean of empty RDD")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance; raises when no values were merged."""
        if self.count == 0:
            raise ValueError("variance of empty RDD")
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return self.variance ** 0.5

    @property
    def minimum(self) -> float:
        """Smallest merged value; raises when no values were merged."""
        if self.count == 0:
            raise ValueError("min of empty RDD")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest merged value; raises when no values were merged."""
        if self.count == 0:
            raise ValueError("max of empty RDD")
        return self._max

    def __repr__(self) -> str:
        if self.count == 0:
            return "StatCounter(empty)"
        return (
            f"StatCounter(count={self.count}, mean={self._mean:g}, "
            f"stdev={self.stdev:g}, min={self._min:g}, max={self._max:g})"
        )


# ---------------------------------------------------------------------------
# concrete RDDs
# ---------------------------------------------------------------------------


class ParallelCollectionRDD(RDD[T]):
    """An RDD over an in-memory sequence, sliced into N partitions."""

    def __init__(self, context, data: Iterable[T], num_slices: int) -> None:
        super().__init__(context)
        items = list(data)
        if num_slices < 1:
            raise ValueError("need at least 1 slice")
        self._slices: list[list[T]] = [[] for _ in range(num_slices)]
        # Contiguous slicing (like Spark) keeps input order stable.
        n = len(items)
        for i in range(num_slices):
            start = i * n // num_slices
            end = (i + 1) * n // num_slices
            self._slices[i] = items[start:end]

    @property
    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, split: int) -> Iterator[T]:
        return iter(self._slices[split])


class MapPartitionsRDD(RDD[U]):
    """Applies a function to each parent partition (narrow dependency)."""

    def __init__(
        self,
        parent: RDD[T],
        fn: Callable[[int, Iterator[T]], Iterable[U]],
        preserves_partitioning: bool = False,
    ) -> None:
        super().__init__(
            parent.context,
            [parent],
            partitioner=parent.partitioner if preserves_partitioning else None,
        )
        self._fn = fn

    @property
    def num_partitions(self) -> int:
        return self.parents[0].num_partitions

    def compute(self, split: int) -> Iterator[U]:
        return iter(self._fn(split, self.parents[0].iterator(split)))


class UnionRDD(RDD[T]):
    """Concatenation of several RDDs; partitions are stacked in order."""

    def __init__(self, context, rdds: list[RDD[T]]) -> None:
        super().__init__(context, rdds)
        self._offsets: list[tuple[RDD[T], int]] = [
            (rdd, split) for rdd in rdds for split in range(rdd.num_partitions)
        ]

    @property
    def num_partitions(self) -> int:
        return len(self._offsets)

    def compute(self, split: int) -> Iterator[T]:
        rdd, parent_split = self._offsets[split]
        return rdd.iterator(parent_split)


class CartesianRDD(RDD[tuple]):
    """All (left, right) element pairs; one task per partition pair."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, [left, right])
        self._left = left
        self._right = right

    @property
    def num_partitions(self) -> int:
        return self._left.num_partitions * self._right.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        right_n = self._right.num_partitions
        left_split, right_split = divmod(split, right_n)
        left_rows = list(self._left.iterator(left_split))
        # n*m pairs per task; poll so a cancelled task stops promptly.
        heartbeat = Heartbeat(every=1024)
        for right_row in self._right.iterator(right_split):
            for left_row in left_rows:
                heartbeat.beat()
                yield (left_row, right_row)


class _ZippedRDD(RDD[tuple]):
    """Positional zip of two equally-partitioned RDDs."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, [left, right])
        self._left = left
        self._right = right

    @property
    def num_partitions(self) -> int:
        return self._left.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        left_it = self._left.iterator(split)
        right_it = self._right.iterator(split)
        sentinel = object()
        while True:
            left_value = next(left_it, sentinel)
            right_value = next(right_it, sentinel)
            if left_value is sentinel and right_value is sentinel:
                return
            if left_value is sentinel or right_value is sentinel:
                raise ValueError(
                    f"cannot zip: partition {split} has unequal element counts"
                )
            yield (left_value, right_value)


class CoalescedRDD(RDD[T]):
    """Groups adjacent parent partitions without shuffling."""

    def __init__(self, parent: RDD[T], num_partitions: int) -> None:
        super().__init__(parent.context, [parent])
        self._groups: list[list[int]] = [[] for _ in range(min(num_partitions, max(1, parent.num_partitions)))]
        for split in range(parent.num_partitions):
            self._groups[split * len(self._groups) // max(1, parent.num_partitions)].append(split)

    @property
    def num_partitions(self) -> int:
        return len(self._groups)

    def compute(self, split: int) -> Iterator[T]:
        parent = self.parents[0]
        return itertools.chain.from_iterable(
            parent.iterator(s) for s in self._groups[split]
        )


class PartitionPruningRDD(RDD[T]):
    """Exposes only a subset of the parent's partitions.

    This is how STARK's operators skip partitions whose bounds/extent
    cannot contribute to a query: the pruned partitions are never
    computed at all.
    """

    def __init__(self, parent: RDD[T], partition_ids: Iterable[int]) -> None:
        super().__init__(parent.context, [parent])
        self._ids = sorted(set(partition_ids))
        for pid in self._ids:
            if not 0 <= pid < parent.num_partitions:
                raise IndexError(
                    f"partition {pid} out of range 0..{parent.num_partitions - 1}"
                )
        #: How many parent partitions this node hides (trace attribution).
        self.pruned_count = parent.num_partitions - len(self._ids)
        self.context.metrics.partitions_pruned += self.pruned_count
        if self.context.tracer.enabled and self.pruned_count:
            self.context.tracer.add("partitions_pruned", self.pruned_count)

    @property
    def num_partitions(self) -> int:
        return len(self._ids)

    def compute(self, split: int) -> Iterator[T]:
        return self.parents[0].iterator(self._ids[split])


class _Aggregator:
    """Map-side + reduce-side combine logic for :class:`ShuffledRDD`."""

    __slots__ = ("create_combiner", "merge_value", "merge_combiners")

    def __init__(self, create_combiner, merge_value, merge_combiners) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners


class ShuffledRDD(RDD[tuple]):
    """A wide dependency: repartition (key, value) pairs by a partitioner.

    Map outputs are materialized once per shuffle through the context's
    shuffle manager and then served to reduce tasks, mirroring Spark's
    hash shuffle.  With an aggregator, values are combined map-side and
    merged reduce-side (``reduceByKey`` semantics); without one, raw
    pairs pass through (``partitionBy`` semantics).
    """

    def __init__(
        self,
        parent: RDD[tuple],
        partitioner: Partitioner,
        aggregator: _Aggregator | None = None,
    ) -> None:
        super().__init__(parent.context, [parent], partitioner=partitioner)
        self._aggregator = aggregator
        self._shuffle_id = parent.context._shuffle.register(
            parent, partitioner, aggregator
        )

    @property
    def num_partitions(self) -> int:
        assert self.partitioner is not None
        return self.partitioner.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        rows = self.context._shuffle.fetch(self._shuffle_id, split)
        if self._aggregator is None:
            return iter(rows)
        merged: dict = {}
        agg = self._aggregator
        for k, combined in rows:
            if k in merged:
                merged[k] = agg.merge_combiners(merged[k], combined)
            else:
                merged[k] = combined
        return iter(merged.items())


class _IdentityPartitioner(Partitioner):
    """Routes integer keys directly to partitions (internal)."""

    def __init__(self, num_partitions: int) -> None:
        self._n = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._n

    def get_partition(self, key: int) -> int:
        return key % self._n


class _RangePartitioner(Partitioner):
    """Routes ordered keys to partitions by sampled boundaries (sortBy)."""

    def __init__(self, bounds: list, ascending: bool) -> None:
        self._bounds = bounds
        self._ascending = ascending

    @property
    def num_partitions(self) -> int:
        return len(self._bounds) + 1

    def get_partition(self, key) -> int:
        idx = bisect.bisect_right(self._bounds, key)
        if not self._ascending:
            idx = len(self._bounds) - idx
        return idx

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is _RangePartitioner
            and other._bounds == self._bounds
            and other._ascending == self._ascending
        )

    def __hash__(self) -> int:
        return hash((tuple(self._bounds), self._ascending))
