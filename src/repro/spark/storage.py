r"""Object and text file storage -- the HDFS stand-in.

The paper's workflow (Fig. 2) stores partitioned/indexed RDDs as binary
objects on HDFS and reloads them in later programs.  Here a "file" is a
directory of ``part-NNNNN`` files, one per partition, written with
pickle.  Reading an object file restores the exact partitioning, which
is what makes persisted spatial indexes reusable.

Writes are atomic *and durable*, like a Hadoop output committer backed
by a real filesystem: part-files land in a ``path + "._tmp"`` staging
directory, every part, the ``_SUCCESS`` marker and the staging
directory itself are ``fsync``\ ed, and only then is the staging
directory committed with ``os.replace`` and the parent directory
``fsync``\ ed -- so a save that returned cannot vanish on power loss,
and a crashed or aborted save leaves nothing behind at ``path``.  Write
tasks are idempotent (a retried task rewrites its own part-file), and
corrupt part-files surface as :class:`StorageError` naming the
offending path rather than raw pickle internals.

The ``fsync`` calls all route through :func:`fsync_file` /
:func:`fsync_dir`, which consult an installable hook
(:func:`set_fsync_hook`): the chaos crash harness uses it to simulate a
process kill between any two fsyncs, which is how the checkpoint and
recovery layers prove their commit protocols ordered their barriers
correctly.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import threading
from typing import Any, Callable, Iterator, TypeVar

from repro.spark.rdd import RDD

T = TypeVar("T")

_PART_RE = re.compile(r"^part-(\d{5})(\.pkl|\.txt)$")
_SUCCESS_MARKER = "_SUCCESS"
_TMP_SUFFIX = "._tmp"

#: Called as ``hook(label)`` immediately before every fsync this module
#: (and the layers built on it) performs; the chaos crash harness
#: installs a counter here that raises at a chosen ordinal.
_fsync_hook: Callable[[str], None] | None = None
_fsync_hook_lock = threading.Lock()


def set_fsync_hook(hook: Callable[[str], None] | None) -> Callable[[str], None] | None:
    """Install (or clear, with None) the pre-fsync hook; returns the old one.

    The hook runs with the label of the path about to be synced, before
    the actual ``os.fsync``.  Raising from the hook aborts the sync --
    the crash harness raises :class:`~repro.chaos.crash.SimulatedCrash`
    to model a kill at exactly that durability barrier.
    """
    global _fsync_hook
    with _fsync_hook_lock:
        previous = _fsync_hook
        _fsync_hook = hook
    return previous


def fsync_file(path: str) -> None:
    """Flush one file's contents to stable storage (hook-aware).

    Opens the file read-only and fsyncs the descriptor -- the pattern
    for files already closed by their writer.  Callers holding an open
    handle should instead ``flush()`` and fsync the handle's fileno
    (see ``_fsync_handle``); both routes honour the crash-harness hook.
    """
    hook = _fsync_hook
    if hook is not None:
        hook(path)
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Flush one directory's entries to stable storage (hook-aware).

    A rename is durable only once the directory that *names* the file
    is synced; committing a staging directory therefore fsyncs both the
    directory itself (its part-file entries) and, after the rename, the
    parent (the new name).
    """
    hook = _fsync_hook
    if hook is not None:
        hook(path + "/")
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_handle(fh, label: str) -> None:
    """Flush and fsync an open writable handle (hook-aware)."""
    hook = _fsync_hook
    if hook is not None:
        hook(label)
    fh.flush()
    os.fsync(fh.fileno())


def durable_replace(tmp: str, final: str) -> None:
    """Commit *tmp* to *final*: fsync tmp, ``os.replace``, fsync parent.

    The three-step commit protocol every atomic directory (or file)
    write in the system funnels through: contents first, then the
    atomic rename, then the parent directory entry -- after which the
    commit survives power loss.  ``os.replace`` rather than
    ``os.rename`` for cross-platform overwrite semantics.
    """
    if os.path.isdir(tmp):
        fsync_dir(tmp)
    else:
        fsync_file(tmp)
    os.replace(tmp, final)
    parent = os.path.dirname(os.path.abspath(final))
    fsync_dir(parent)


class StorageError(IOError):
    """Raised for malformed or incomplete stored RDD directories."""


def _part_name(split: int, suffix: str) -> str:
    return f"part-{split:05d}{suffix}"


def _list_parts(path: str, suffix: str) -> list[str]:
    if not os.path.isdir(path):
        raise StorageError(f"{path!r} is not a stored-RDD directory")
    if not os.path.exists(os.path.join(path, _SUCCESS_MARKER)):
        raise StorageError(f"{path!r} has no _SUCCESS marker (incomplete write?)")
    parts = sorted(
        name for name in os.listdir(path)
        if (m := _PART_RE.match(name)) and m.group(2) == suffix
    )
    if not parts:
        raise StorageError(f"{path!r} contains no {suffix} part-files")
    return parts


def _commit_write(rdd: RDD[T], path: str, write_partition) -> None:
    """Run the write job against a staging dir, then durably commit.

    ``write_partition(tmp_dir, split, it)`` writes (and fsyncs) one
    part-file into the staging directory.  The commit then fsyncs the
    ``_SUCCESS`` marker, the staging directory, replaces it into place
    and fsyncs the parent -- the full barrier sequence, so a save that
    returned survives power loss.  On any failure the staging directory
    is removed, so the target path stays untouched and a follow-up
    retry of the whole save starts clean.
    """
    if os.path.exists(path):
        raise StorageError(f"output path {path!r} already exists")
    tmp = path + _TMP_SUFFIX
    if os.path.exists(tmp):
        # Stale staging dir from a crashed writer; safe to discard.
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        # Drain through a job so every partition is written exactly once
        # per successful attempt (a retried task rewrites its own part).
        rdd.map_partitions_with_index(
            lambda split, it: write_partition(tmp, split, it)
        ).count()
        marker = os.path.join(tmp, _SUCCESS_MARKER)
        with open(marker, "w") as f:
            _fsync_handle(f, marker)
        durable_replace(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def save_object_file(rdd: RDD[T], path: str) -> None:
    """Write one pickle part-file per partition, then a success marker.

    Refuses to overwrite an existing directory, like Hadoop output
    committers do; partial output from a failed save is rolled back.
    """

    def write_partition(tmp: str, split: int, it: Iterator[T]):
        injector = rdd.context.fault_injector
        if injector is not None:
            injector.check("storage.write", key=(path, split))
        part = os.path.join(tmp, _part_name(split, ".pkl"))
        with open(part, "wb") as f:
            pickle.dump(list(it), f, protocol=pickle.HIGHEST_PROTOCOL)
            _fsync_handle(f, part)
        return iter(())

    _commit_write(rdd, path, write_partition)


def save_text_file(rdd: RDD[T], path: str) -> None:
    """Write ``str(element)`` lines, one part-file per partition."""

    def write_partition(tmp: str, split: int, it: Iterator[T]):
        injector = rdd.context.fault_injector
        if injector is not None:
            injector.check("storage.write", key=(path, split))
        part = os.path.join(tmp, _part_name(split, ".txt"))
        with open(part, "w") as f:
            for row in it:
                f.write(str(row))
                f.write("\n")
            _fsync_handle(f, part)
        return iter(())

    _commit_write(rdd, path, write_partition)


def read_object_part(part: str) -> list:
    """Unpickle one part-file, mapping corruption to :class:`StorageError`.

    Truncated or garbage pickles raise ``UnpicklingError``/``EOFError``
    deep inside the pickle module; callers (and their retry loops) get a
    typed error naming the offending path instead.
    """
    try:
        with open(part, "rb") as f:
            return pickle.load(f)
    except (pickle.UnpicklingError, EOFError) as exc:
        raise StorageError(f"corrupt part-file {part!r}: {exc}") from exc


class ObjectFileRDD(RDD[Any]):
    """Reads a ``save_object_file`` directory; one part-file per partition."""

    def __init__(self, context, path: str) -> None:
        super().__init__(context)
        self._path = path
        self._parts = _list_parts(path, ".pkl")

    @property
    def num_partitions(self) -> int:
        return len(self._parts)

    def compute(self, split: int) -> Iterator[Any]:
        part = os.path.join(self._path, self._parts[split])
        injector = self.context.fault_injector
        if injector is not None:
            injector.check("storage.read", key=(part, split))
        return iter(read_object_part(part))


class TextFileRDD(RDD[str]):
    """Reads a plain text file (or part-file directory) as lines.

    A single file is sliced into ``num_slices`` byte ranges aligned to
    line boundaries; a directory contributes one partition per part.
    """

    def __init__(self, context, path: str, num_slices: int) -> None:
        super().__init__(context)
        self._splits: list[tuple[str, int, int]] = []
        if os.path.isdir(path):
            for name in _list_parts(path, ".txt"):
                full = os.path.join(path, name)
                self._splits.append((full, 0, os.path.getsize(full)))
        else:
            size = os.path.getsize(path)
            num_slices = max(1, num_slices)
            step = max(1, size // num_slices)
            offsets = list(range(0, size, step))[:num_slices]
            for i, start in enumerate(offsets):
                end = offsets[i + 1] if i + 1 < len(offsets) else size
                self._splits.append((path, start, end))

    @property
    def num_partitions(self) -> int:
        return max(1, len(self._splits))

    def compute(self, split: int) -> Iterator[str]:
        if not self._splits:
            return iter(())
        path, start, end = self._splits[split]
        injector = self.context.fault_injector
        if injector is not None:
            injector.check("storage.read", key=(path, split))
        return self._read_range(path, start, end)

    @staticmethod
    def _read_range(path: str, start: int, end: int) -> Iterator[str]:
        # Hadoop-style split semantics: a split owns every line that
        # *starts* within [start, end); the first split also owns the
        # file's first line.
        with open(path, "rb") as f:
            if start > 0:
                f.seek(start - 1)
                f.readline()  # skip the partial line owned by the previous split
            while f.tell() < end:
                line = f.readline()
                if not line:
                    break
                yield line.decode("utf-8").rstrip("\n")


def object_file_rdd(context, path: str) -> RDD[Any]:
    """An RDD over pickle part-files written by :func:`save_object_file`."""
    return ObjectFileRDD(context, path)


def text_file_rdd(context, path: str, num_slices: int) -> RDD[str]:
    """An RDD of lines from a text file or directory of part-files."""
    return TextFileRDD(context, path, num_slices)
