"""Object and text file storage -- the HDFS stand-in.

The paper's workflow (Fig. 2) stores partitioned/indexed RDDs as binary
objects on HDFS and reloads them in later programs.  Here a "file" is a
directory of ``part-NNNNN`` files, one per partition, written with
pickle.  Reading an object file restores the exact partitioning, which
is what makes persisted spatial indexes reusable.

Writes are atomic, like a Hadoop output committer: part-files land in a
``path + "._tmp"`` staging directory that is renamed to ``path`` only
after every task succeeded and the ``_SUCCESS`` marker is in place.  A
crashed or aborted save leaves nothing behind at ``path``, so a retry
is never blocked by its own partial output.  Write tasks are idempotent
(a retried task rewrites its own part-file), and corrupt part-files
surface as :class:`StorageError` naming the offending path rather than
raw pickle internals.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
from typing import Any, Iterator, TypeVar

from repro.spark.rdd import RDD

T = TypeVar("T")

_PART_RE = re.compile(r"^part-(\d{5})(\.pkl|\.txt)$")
_SUCCESS_MARKER = "_SUCCESS"
_TMP_SUFFIX = "._tmp"


class StorageError(IOError):
    """Raised for malformed or incomplete stored RDD directories."""


def _part_name(split: int, suffix: str) -> str:
    return f"part-{split:05d}{suffix}"


def _list_parts(path: str, suffix: str) -> list[str]:
    if not os.path.isdir(path):
        raise StorageError(f"{path!r} is not a stored-RDD directory")
    if not os.path.exists(os.path.join(path, _SUCCESS_MARKER)):
        raise StorageError(f"{path!r} has no _SUCCESS marker (incomplete write?)")
    parts = sorted(
        name for name in os.listdir(path)
        if (m := _PART_RE.match(name)) and m.group(2) == suffix
    )
    if not parts:
        raise StorageError(f"{path!r} contains no {suffix} part-files")
    return parts


def _commit_write(rdd: RDD[T], path: str, write_partition) -> None:
    """Run the write job against a staging dir, then atomically commit.

    ``write_partition(tmp_dir, split, it)`` writes one part-file into
    the staging directory.  On any failure the staging directory is
    removed, so the target path stays untouched and a follow-up retry
    of the whole save starts clean.
    """
    if os.path.exists(path):
        raise StorageError(f"output path {path!r} already exists")
    tmp = path + _TMP_SUFFIX
    if os.path.exists(tmp):
        # Stale staging dir from a crashed writer; safe to discard.
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        # Drain through a job so every partition is written exactly once
        # per successful attempt (a retried task rewrites its own part).
        rdd.map_partitions_with_index(
            lambda split, it: write_partition(tmp, split, it)
        ).count()
        with open(os.path.join(tmp, _SUCCESS_MARKER), "w") as f:
            f.write("")
        os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def save_object_file(rdd: RDD[T], path: str) -> None:
    """Write one pickle part-file per partition, then a success marker.

    Refuses to overwrite an existing directory, like Hadoop output
    committers do; partial output from a failed save is rolled back.
    """

    def write_partition(tmp: str, split: int, it: Iterator[T]):
        injector = rdd.context.fault_injector
        if injector is not None:
            injector.check("storage.write", key=(path, split))
        with open(os.path.join(tmp, _part_name(split, ".pkl")), "wb") as f:
            pickle.dump(list(it), f, protocol=pickle.HIGHEST_PROTOCOL)
        return iter(())

    _commit_write(rdd, path, write_partition)


def save_text_file(rdd: RDD[T], path: str) -> None:
    """Write ``str(element)`` lines, one part-file per partition."""

    def write_partition(tmp: str, split: int, it: Iterator[T]):
        injector = rdd.context.fault_injector
        if injector is not None:
            injector.check("storage.write", key=(path, split))
        with open(os.path.join(tmp, _part_name(split, ".txt")), "w") as f:
            for row in it:
                f.write(str(row))
                f.write("\n")
        return iter(())

    _commit_write(rdd, path, write_partition)


def read_object_part(part: str) -> list:
    """Unpickle one part-file, mapping corruption to :class:`StorageError`.

    Truncated or garbage pickles raise ``UnpicklingError``/``EOFError``
    deep inside the pickle module; callers (and their retry loops) get a
    typed error naming the offending path instead.
    """
    try:
        with open(part, "rb") as f:
            return pickle.load(f)
    except (pickle.UnpicklingError, EOFError) as exc:
        raise StorageError(f"corrupt part-file {part!r}: {exc}") from exc


class ObjectFileRDD(RDD[Any]):
    """Reads a ``save_object_file`` directory; one part-file per partition."""

    def __init__(self, context, path: str) -> None:
        super().__init__(context)
        self._path = path
        self._parts = _list_parts(path, ".pkl")

    @property
    def num_partitions(self) -> int:
        return len(self._parts)

    def compute(self, split: int) -> Iterator[Any]:
        part = os.path.join(self._path, self._parts[split])
        injector = self.context.fault_injector
        if injector is not None:
            injector.check("storage.read", key=(part, split))
        return iter(read_object_part(part))


class TextFileRDD(RDD[str]):
    """Reads a plain text file (or part-file directory) as lines.

    A single file is sliced into ``num_slices`` byte ranges aligned to
    line boundaries; a directory contributes one partition per part.
    """

    def __init__(self, context, path: str, num_slices: int) -> None:
        super().__init__(context)
        self._splits: list[tuple[str, int, int]] = []
        if os.path.isdir(path):
            for name in _list_parts(path, ".txt"):
                full = os.path.join(path, name)
                self._splits.append((full, 0, os.path.getsize(full)))
        else:
            size = os.path.getsize(path)
            num_slices = max(1, num_slices)
            step = max(1, size // num_slices)
            offsets = list(range(0, size, step))[:num_slices]
            for i, start in enumerate(offsets):
                end = offsets[i + 1] if i + 1 < len(offsets) else size
                self._splits.append((path, start, end))

    @property
    def num_partitions(self) -> int:
        return max(1, len(self._splits))

    def compute(self, split: int) -> Iterator[str]:
        if not self._splits:
            return iter(())
        path, start, end = self._splits[split]
        injector = self.context.fault_injector
        if injector is not None:
            injector.check("storage.read", key=(path, split))
        return self._read_range(path, start, end)

    @staticmethod
    def _read_range(path: str, start: int, end: int) -> Iterator[str]:
        # Hadoop-style split semantics: a split owns every line that
        # *starts* within [start, end); the first split also owns the
        # file's first line.
        with open(path, "rb") as f:
            if start > 0:
                f.seek(start - 1)
                f.readline()  # skip the partial line owned by the previous split
            while f.tell() < end:
                line = f.readline()
                if not line:
                    break
                yield line.decode("utf-8").rstrip("\n")


def object_file_rdd(context, path: str) -> RDD[Any]:
    """An RDD over pickle part-files written by :func:`save_object_file`."""
    return ObjectFileRDD(context, path)


def text_file_rdd(context, path: str, num_slices: int) -> RDD[str]:
    """An RDD of lines from a text file or directory of part-files."""
    return TextFileRDD(context, path, num_slices)
