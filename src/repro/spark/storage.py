"""Object and text file storage -- the HDFS stand-in.

The paper's workflow (Fig. 2) stores partitioned/indexed RDDs as binary
objects on HDFS and reloads them in later programs.  Here a "file" is a
directory of ``part-NNNNN`` files, one per partition, written with
pickle.  Reading an object file restores the exact partitioning, which
is what makes persisted spatial indexes reusable.
"""

from __future__ import annotations

import os
import pickle
import re
from typing import Any, Iterator, TypeVar

from repro.spark.rdd import RDD

T = TypeVar("T")

_PART_RE = re.compile(r"^part-(\d{5})(\.pkl|\.txt)$")
_SUCCESS_MARKER = "_SUCCESS"


class StorageError(IOError):
    """Raised for malformed or incomplete stored RDD directories."""


def _part_name(split: int, suffix: str) -> str:
    return f"part-{split:05d}{suffix}"


def _list_parts(path: str, suffix: str) -> list[str]:
    if not os.path.isdir(path):
        raise StorageError(f"{path!r} is not a stored-RDD directory")
    if not os.path.exists(os.path.join(path, _SUCCESS_MARKER)):
        raise StorageError(f"{path!r} has no _SUCCESS marker (incomplete write?)")
    parts = sorted(
        name for name in os.listdir(path)
        if (m := _PART_RE.match(name)) and m.group(2) == suffix
    )
    if not parts:
        raise StorageError(f"{path!r} contains no {suffix} part-files")
    return parts


def save_object_file(rdd: RDD[T], path: str) -> None:
    """Write one pickle part-file per partition, then a success marker.

    Refuses to overwrite an existing directory, like Hadoop output
    committers do.
    """
    if os.path.exists(path):
        raise StorageError(f"output path {path!r} already exists")
    os.makedirs(path)

    def write_partition(split: int, it: Iterator[T]):
        with open(os.path.join(path, _part_name(split, ".pkl")), "wb") as f:
            pickle.dump(list(it), f, protocol=pickle.HIGHEST_PROTOCOL)
        return iter(())

    # Drain through a job so every partition is written exactly once.
    rdd.map_partitions_with_index(write_partition).count()
    with open(os.path.join(path, _SUCCESS_MARKER), "w") as f:
        f.write("")


def save_text_file(rdd: RDD[T], path: str) -> None:
    """Write ``str(element)`` lines, one part-file per partition."""
    if os.path.exists(path):
        raise StorageError(f"output path {path!r} already exists")
    os.makedirs(path)

    def write_partition(split: int, it: Iterator[T]):
        with open(os.path.join(path, _part_name(split, ".txt")), "w") as f:
            for row in it:
                f.write(str(row))
                f.write("\n")
        return iter(())

    rdd.map_partitions_with_index(write_partition).count()
    with open(os.path.join(path, _SUCCESS_MARKER), "w") as f:
        f.write("")


class ObjectFileRDD(RDD[Any]):
    """Reads a ``save_object_file`` directory; one part-file per partition."""

    def __init__(self, context, path: str) -> None:
        super().__init__(context)
        self._path = path
        self._parts = _list_parts(path, ".pkl")

    @property
    def num_partitions(self) -> int:
        return len(self._parts)

    def compute(self, split: int) -> Iterator[Any]:
        with open(os.path.join(self._path, self._parts[split]), "rb") as f:
            return iter(pickle.load(f))


class TextFileRDD(RDD[str]):
    """Reads a plain text file (or part-file directory) as lines.

    A single file is sliced into ``num_slices`` byte ranges aligned to
    line boundaries; a directory contributes one partition per part.
    """

    def __init__(self, context, path: str, num_slices: int) -> None:
        super().__init__(context)
        self._splits: list[tuple[str, int, int]] = []
        if os.path.isdir(path):
            for name in _list_parts(path, ".txt"):
                full = os.path.join(path, name)
                self._splits.append((full, 0, os.path.getsize(full)))
        else:
            size = os.path.getsize(path)
            num_slices = max(1, num_slices)
            step = max(1, size // num_slices)
            offsets = list(range(0, size, step))[:num_slices]
            for i, start in enumerate(offsets):
                end = offsets[i + 1] if i + 1 < len(offsets) else size
                self._splits.append((path, start, end))

    @property
    def num_partitions(self) -> int:
        return max(1, len(self._splits))

    def compute(self, split: int) -> Iterator[str]:
        if not self._splits:
            return iter(())
        path, start, end = self._splits[split]
        return self._read_range(path, start, end)

    @staticmethod
    def _read_range(path: str, start: int, end: int) -> Iterator[str]:
        # Hadoop-style split semantics: a split owns every line that
        # *starts* within [start, end); the first split also owns the
        # file's first line.
        with open(path, "rb") as f:
            if start > 0:
                f.seek(start - 1)
                f.readline()  # skip the partial line owned by the previous split
            while f.tell() < end:
                line = f.readline()
                if not line:
                    break
                yield line.decode("utf-8").rstrip("\n")


def object_file_rdd(context, path: str) -> RDD[Any]:
    return ObjectFileRDD(context, path)


def text_file_rdd(context, path: str, num_slices: int) -> RDD[str]:
    return TextFileRDD(context, path, num_slices)
