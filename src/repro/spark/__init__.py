"""A from-scratch, single-process reproduction of the Spark RDD engine.

This package is the execution substrate the STARK reproduction runs on,
standing in for Apache Spark.  It implements the parts of the RDD model
STARK's algorithms are built against:

- lazy, immutable :class:`~repro.spark.rdd.RDD` lineage graphs with
  narrow (map/filter/mapPartitions/...) and wide
  (groupByKey/reduceByKey/join/partitionBy) transformations,
- the :class:`~repro.spark.partitioner.Partitioner` contract --
  STARK's spatial partitioners plug in exactly like on the JVM,
- a hash shuffle with materialized map outputs,
- partition-level caching (``persist``/``cache``),
- object files (the stand-in for HDFS binary storage used by persistent
  indexing),
- broadcast variables and accumulators,
- a task scheduler executing one task per partition, with metrics
  (tasks launched, records read, shuffle volume) that the test-suite and
  benchmarks use to verify pruning behaviour,
- lineage-based fault tolerance: failed tasks are retried with
  exponential backoff (``max_task_failures`` attempts, recomputing from
  lineage), and exhausted retries abort the job with a typed
  :class:`~repro.spark.errors.JobAbortedError`; see :mod:`repro.chaos`
  for the matching fault-injection harness,
- gray-failure resilience: cooperative cancellation
  (:mod:`repro.spark.cancellation`), per-task/per-job deadlines with
  typed :class:`~repro.spark.errors.TaskTimeoutError`, and speculative
  execution of stragglers (first result wins, loser cancelled).

The engine runs tasks in the driver process (optionally on a thread
pool).  The *algorithmic* costs -- how many partitions a query touches,
how many candidate pairs a join evaluates -- are identical to a
distributed deployment, which is what the paper's evaluation shapes
depend on.
"""

from repro.spark.accumulator import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.cancellation import CancelToken, Heartbeat, TaskCancelledError
from repro.spark.context import SparkContext
from repro.spark.errors import JobAbortedError, TaskError, TaskTimeoutError
from repro.spark.partitioner import HashPartitioner, Partitioner
from repro.spark.rdd import RDD

__all__ = [
    "Accumulator",
    "Broadcast",
    "CancelToken",
    "HashPartitioner",
    "Heartbeat",
    "JobAbortedError",
    "Partitioner",
    "RDD",
    "SparkContext",
    "TaskCancelledError",
    "TaskError",
    "TaskTimeoutError",
]
