"""Broadcast variables.

In a single-process engine a broadcast is a thin read-only wrapper; it
exists so code written against the Spark API (and the baselines' broadcast
joins) keeps its shape, and so the destroyed-broadcast error mode is
reproduced.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value shared across all tasks."""

    __slots__ = ("_value", "_destroyed")

    def __init__(self, value: T) -> None:
        self._value = value
        self._destroyed = False

    @property
    def value(self) -> T:
        if self._destroyed:
            raise RuntimeError("attempted to use a destroyed broadcast variable")
        return self._value

    def destroy(self) -> None:
        """Release the value; later reads raise."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else repr(self._value)
        return f"Broadcast({state})"
