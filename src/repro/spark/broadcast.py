"""Broadcast variables.

Under the ``sequential`` and ``threads`` executors a broadcast is a
thin read-only wrapper sharing one in-memory value; it exists so code
written against the Spark API (and the baselines' broadcast joins)
keeps its shape, and so the destroyed-broadcast error mode is
reproduced.  Under ``processes`` the id gives the driver a stable key
for shipping: the value is pickled once (cached in ``_shipped``) and
sent to each worker process at most once, where it is cached for the
life of the process -- per worker, not per task.
"""

from __future__ import annotations

import itertools
from typing import Generic, TypeVar

T = TypeVar("T")

_broadcast_ids = itertools.count(1)


class Broadcast(Generic[T]):
    """A read-only value shared across all tasks."""

    __slots__ = ("id", "_value", "_destroyed", "_shipped")

    def __init__(self, value: T) -> None:
        self.id = next(_broadcast_ids)
        self._value = value
        self._destroyed = False
        #: Serialized form + collected dependencies, filled lazily by
        #: ``serialization.serialize_task`` so the value pickles once.
        self._shipped = None

    @property
    def value(self) -> T:
        """The broadcast payload; raises after :meth:`destroy`."""
        if self._destroyed:
            raise RuntimeError("attempted to use a destroyed broadcast variable")
        return self._value

    def destroy(self) -> None:
        """Release the value; later reads raise."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]
        self._shipped = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else repr(self._value)
        return f"Broadcast({state})"
