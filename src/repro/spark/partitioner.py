"""The partitioner contract.

A partitioner maps a record *key* to a partition id.  STARK's central
integration point with Spark is exactly this interface (paper section
2.1): its spatial partitioners "implement Spark's Partitioner interface
and can be used to spatially partition an RDD with the RDD's
partitionBy method".  The reproduction keeps that shape.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable


class Partitioner(ABC):
    """Maps keys to partition ids in ``range(num_partitions)``."""

    @property
    @abstractmethod
    def num_partitions(self) -> int:
        """Total number of partitions this partitioner produces."""

    @abstractmethod
    def get_partition(self, key: Any) -> int:
        """The partition id for *key* (must be in ``range(num_partitions)``)."""

    def __eq__(self, other: object) -> bool:
        """Partitioners compare by behaviour class + partition count.

        Two equal partitioners are guaranteed to co-locate equal keys,
        which lets the engine skip a shuffle when an RDD is already
        partitioned compatibly (same optimisation Spark applies).
        Subclasses with parameters must extend this.
        """
        return type(other) is type(self) and other.num_partitions == self.num_partitions  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self), self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default partitioner: ``hash(key) mod n``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"need at least 1 partition, got {num_partitions}")
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def get_partition(self, key: Hashable) -> int:
        return hash(key) % self._num_partitions

    def __repr__(self) -> str:
        return f"HashPartitioner({self._num_partitions})"
