"""The driver context: entry point, scheduler, caches, metrics."""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.obs import NULL_TRACER, Tracer
from repro.spark.accumulator import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.errors import JobAbortedError, TaskError
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import (
    RDD,
    ParallelCollectionRDD,
    PartitionPruningRDD,
    ShuffledRDD,
    _Aggregator,
)

T = TypeVar("T")
U = TypeVar("U")


def _rdd_label(rdd: RDD) -> str:
    """The rdd's scheduler-facing name, e.g. ``MapPartitionsRDD[12]``."""
    return f"{type(rdd).__name__}[{rdd.id}]"


def _lineage_tag(rdd: RDD) -> str:
    """The operator tag of a job: the first named RDD up the lineage.

    Operators name the RDDs they build (``filter.live_index``,
    ``join.nested_loop``, ...); the scheduler stamps that tag on the
    job span so every job in a trace is attributable.  Lineage walking
    stops at shuffle boundaries -- the map side runs as its own job and
    reports its own tag.
    """
    queue, seen = [rdd], {rdd.id}
    while queue:
        node = queue.pop(0)
        if node.name:
            return node.name
        if isinstance(node, ShuffledRDD):
            continue
        for parent in node.parents:
            if parent.id not in seen:
                seen.add(parent.id)
                queue.append(parent)
    return type(rdd).__name__


def _lineage_pruning(rdd: RDD) -> int:
    """Partitions pruned by :class:`PartitionPruningRDD` nodes in *rdd*'s
    lineage (not crossing shuffle boundaries)."""
    pruned = 0
    queue, seen = [rdd], {rdd.id}
    while queue:
        node = queue.pop(0)
        if isinstance(node, PartitionPruningRDD):
            pruned += node.pruned_count
        if isinstance(node, ShuffledRDD):
            continue
        for parent in node.parents:
            if parent.id not in seen:
                seen.add(parent.id)
                queue.append(parent)
    return pruned


class _CountingIterator:
    """Wraps a partition iterator to count the records a task consumed."""

    __slots__ = ("_it", "count")

    def __init__(self, it: Iterator) -> None:
        self._it = iter(it)
        self.count = 0

    def __iter__(self) -> "_CountingIterator":
        return self

    def __next__(self):
        value = next(self._it)
        self.count += 1
        return value


@dataclass
class Metrics:
    """Execution counters the tests and benchmarks assert against.

    ``partitions_pruned`` in particular verifies the paper's claim that
    partition bounds/extents let queries skip partitions entirely.
    """

    tasks_launched: int = 0
    tasks_failed: int = 0
    tasks_retried: int = 0
    jobs_run: int = 0
    jobs_failed: int = 0
    shuffles_executed: int = 0
    shuffle_records_written: int = 0
    cache_hits: int = 0
    partitions_pruned: int = 0
    index_fallbacks: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class _CacheManager:
    """Per-(rdd, partition) in-memory block store."""

    def __init__(self) -> None:
        self._blocks: dict[tuple[int, int], list] = {}
        self._lock = threading.Lock()

    def get(self, rdd_id: int, split: int) -> list | None:
        with self._lock:
            return self._blocks.get((rdd_id, split))

    def put(self, rdd_id: int, split: int, data: list) -> None:
        with self._lock:
            self._blocks[(rdd_id, split)] = data

    def evict_rdd(self, rdd_id: int) -> None:
        with self._lock:
            for key in [k for k in self._blocks if k[0] == rdd_id]:
                del self._blocks[key]

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()


class _ShuffleManager:
    """Materializes and serves map outputs for shuffles.

    Each registered shuffle runs its map side exactly once (on first
    fetch), bucketing every parent partition's records by the target
    partitioner.  With an aggregator, map-side combining happens here --
    the reproduction of Spark's ``mapSideCombine``.
    """

    def __init__(self, context: "SparkContext") -> None:
        self._context = context
        self._ids = itertools.count()
        self._registered: dict[int, tuple[RDD, Partitioner, _Aggregator | None]] = {}
        self._outputs: dict[int, list[list[list]]] = {}
        # Reentrant: a reduce task of one shuffle may trigger the map
        # side of an upstream shuffle on the same thread (nested jobs run
        # inline), so the lock must allow recursion.
        self._lock = threading.RLock()

    def register(
        self, parent: RDD, partitioner: Partitioner, aggregator: _Aggregator | None
    ) -> int:
        shuffle_id = next(self._ids)
        self._registered[shuffle_id] = (parent, partitioner, aggregator)
        return shuffle_id

    def fetch(self, shuffle_id: int, reduce_split: int) -> Iterator[tuple]:
        injector = self._context.fault_injector
        if injector is not None:
            # A failed fetch surfaces in the reduce task, which the
            # scheduler retries; completed map outputs are reused.
            injector.check("shuffle.fetch", key=(shuffle_id, reduce_split))
        outputs = self._ensure_map_outputs(shuffle_id)
        if self._context.shuffle_serialization:
            import pickle

            return itertools.chain.from_iterable(
                pickle.loads(map_out[reduce_split])
                for map_out in outputs
                if reduce_split in map_out
            )
        return itertools.chain.from_iterable(
            map_out.get(reduce_split, ()) for map_out in outputs
        )

    def _ensure_map_outputs(self, shuffle_id: int) -> list[list[list]]:
        # Double-checked locking: reduce tasks may arrive concurrently
        # from the thread pool; only one runs the map side.  A map side
        # that *fails* leaves no entry behind -- ``_outputs`` is only
        # written on success -- so a retried reduce task re-runs it from
        # scratch instead of fetching poisoned buckets.
        ready = self._outputs.get(shuffle_id)
        if ready is not None:
            return ready
        with self._lock:
            ready = self._outputs.get(shuffle_id)
            if ready is not None:
                return ready
            parent, partitioner, aggregator = self._registered[shuffle_id]
            tracer = self._context.tracer
            if tracer.enabled:
                with tracer.span(
                    "shuffle",
                    kind="shuffle",
                    shuffle_id=shuffle_id,
                    map_partitions=parent.num_partitions,
                    reduce_partitions=partitioner.num_partitions,
                    combine=aggregator is not None,
                ) as shuffle_span:
                    outputs = self._run_map_side(
                        parent, partitioner, aggregator, shuffle_span
                    )
            else:
                outputs = self._run_map_side(parent, partitioner, aggregator)
            self._outputs[shuffle_id] = outputs
            self._context.metrics.shuffles_executed += 1
            return outputs

    def _run_map_side(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: _Aggregator | None,
        shuffle_span=None,
    ) -> list[dict[int, list]]:
        metrics = self._context.metrics
        tracer = self._context.tracer

        def map_task(it: Iterator[tuple]) -> dict[int, list]:
            # Buckets are sparse (dict keyed by reduce partition): a map
            # task touching few of the reduce partitions must not pay
            # for the rest, or high-partition-count shuffles (e.g. fine
            # tile grids) would go quadratic.
            buckets: dict[int, list] = {}
            if aggregator is None:
                for kv in it:
                    buckets.setdefault(partitioner.get_partition(kv[0]), []).append(kv)
            else:
                combined: dict[int, dict] = {}
                for k, v in it:
                    bucket = combined.setdefault(partitioner.get_partition(k), {})
                    if k in bucket:
                        bucket[k] = aggregator.merge_value(bucket[k], v)
                    else:
                        bucket[k] = aggregator.create_combiner(v)
                buckets = {pid: list(d.items()) for pid, d in combined.items()}
            written = sum(len(b) for b in buckets.values())
            metrics.shuffle_records_written += written
            if shuffle_span is not None:
                # Map tasks may run concurrently; the tracer serializes
                # the counter update on the shared shuffle span.
                tracer.add_to(shuffle_span, "records_written", written)
            if self._context.shuffle_serialization:
                # Spill through pickle: a real shuffle serializes every
                # record to disk/network.  Reference-passing would hide
                # the very cost that separates replication-based join
                # strategies from STARK's single-assignment design.
                import pickle

                return {
                    pid: pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
                    for pid, rows in buckets.items()
                }
            return buckets

        # The map side is itself a job over the parent RDD.  run_job must
        # not recurse into the pool (deadlock risk), so the context runs
        # nested jobs inline.
        return self._context.run_job(parent, map_task)

    def clear(self) -> None:
        with self._lock:
            self._outputs.clear()
            self._registered.clear()


class SparkContext:
    """The driver: creates RDDs, runs jobs, owns caches and metrics.

    ``parallelism`` controls both the default slice count of
    :meth:`parallelize` and the size of the task thread pool.  With
    ``executor="sequential"`` tasks run inline in deterministic order,
    which the test-suite uses.
    """

    def __init__(
        self,
        app_name: str = "repro",
        parallelism: int = 4,
        executor: str = "threads",
        shuffle_serialization: bool = True,
        tracing: bool = False,
        tracer: Tracer | None = None,
        max_task_failures: int = 4,
        retry_backoff: float = 0.05,
        fault_injector=None,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if executor not in ("threads", "sequential"):
            raise ValueError(f"unknown executor {executor!r}")
        if max_task_failures < 1:
            raise ValueError("max_task_failures must be >= 1")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.app_name = app_name
        self.default_parallelism = parallelism
        self._executor_mode = executor
        #: Serialize shuffled records through pickle (like a real Spark
        #: shuffle).  Keeps the engine's cost model faithful; disable
        #: only for micro-tests where shuffle cost is irrelevant.
        self.shuffle_serialization = shuffle_serialization
        self._rdd_ids = itertools.count()
        self._cache = _CacheManager()
        self._shuffle = _ShuffleManager(self)
        self.metrics = Metrics()
        #: The execution tracer.  Defaults to the shared no-op tracer;
        #: pass ``tracing=True`` (or a :class:`Tracer`) to record spans.
        self.tracer: Tracer = tracer or (Tracer() if tracing else NULL_TRACER)
        #: Attempts a task gets before the job aborts (Spark's
        #: ``spark.task.maxFailures``); each attempt recomputes the
        #: partition from lineage.
        self.max_task_failures = max_task_failures
        #: Base of the exponential retry backoff, in seconds: attempt
        #: *n* sleeps ``retry_backoff * 2**(n-1)`` before re-running.
        self.retry_backoff = retry_backoff
        #: Optional :class:`repro.chaos.FaultInjector`; when set, the
        #: instrumented sites consult it.  Hot paths guard on ``is not
        #: None`` so the disabled case costs one attribute read.
        self.fault_injector = fault_injector
        self._pool: ThreadPoolExecutor | None = None
        self._in_job = threading.local()

    def enable_tracing(self) -> Tracer:
        """Install (or return) a live :class:`Tracer` on this context."""
        if not self.tracer.enabled:
            self.tracer = Tracer()
        return self.tracer

    def install_fault_injector(self, injector):
        """Install a :class:`repro.chaos.FaultInjector` (None to remove)."""
        self.fault_injector = injector
        return injector

    # -- RDD creation --------------------------------------------------------

    def parallelize(self, data: Iterable[T], num_slices: int | None = None) -> RDD[T]:
        """Create an RDD from an in-memory collection."""
        return ParallelCollectionRDD(self, data, num_slices or self.default_parallelism)

    def empty_rdd(self) -> RDD[Any]:
        return ParallelCollectionRDD(self, [], 1)

    def text_file(self, path: str, num_slices: int | None = None) -> RDD[str]:
        """Read a text file (or directory of part-files) as an RDD of lines."""
        from repro.spark import storage

        return storage.text_file_rdd(self, path, num_slices or self.default_parallelism)

    def object_file(self, path: str) -> RDD[Any]:
        """Read a directory written by ``save_as_object_file``.

        Partitioning is preserved: one part-file, one partition.
        """
        from repro.spark import storage

        return storage.object_file_rdd(self, path)

    def broadcast(self, value: T) -> Broadcast[T]:
        """Wrap a read-only value shared by every task."""
        return Broadcast(value)

    def accumulator(self, initial: U, op: Callable[[U, U], U] | None = None) -> Accumulator[U]:
        """A write-only aggregation variable tasks can add to."""
        return Accumulator(initial, op)

    # -- execution -----------------------------------------------------------

    def run_job(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        partitions: Iterable[int] | None = None,
    ) -> list[U]:
        """Run ``fn`` over each requested partition and gather the results.

        The backbone of every action.  Nested jobs (e.g. a shuffle map
        side triggered from inside a reduce task) run inline on the
        calling thread to avoid pool starvation.

        Each task gets :attr:`max_task_failures` attempts, recomputing
        its partition from lineage every time; a task that keeps failing
        aborts the job with :class:`JobAbortedError`.
        """
        num_partitions = rdd.num_partitions
        if partitions is not None:
            splits = list(partitions)
            for split in splits:
                if not 0 <= split < num_partitions:
                    raise ValueError(
                        f"partition index {split} out of range for "
                        f"{_rdd_label(rdd)} with {num_partitions} partitions"
                    )
        else:
            splits = list(range(num_partitions))
        self.metrics.jobs_run += 1
        self.metrics.tasks_launched += len(splits)
        try:
            if self.tracer.enabled:
                return self._run_job_traced(rdd, fn, splits)

            def task(split: int) -> U:
                # Mark this *worker thread* as inside a task so any nested
                # job it triggers (e.g. a shuffle map side) runs inline
                # instead of re-entering the pool and starving it.
                previous = getattr(self._in_job, "active", False)
                self._in_job.active = True
                try:
                    return self._run_task(rdd, fn, split)
                finally:
                    self._in_job.active = previous

            nested = getattr(self._in_job, "active", False)
            if self._executor_mode == "sequential" or nested or len(splits) <= 1:
                return [task(s) for s in splits]
            pool = self._ensure_pool()
            return list(pool.map(task, splits))
        except JobAbortedError:
            self.metrics.jobs_failed += 1
            raise

    def _run_task(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        split: int,
        task_span=None,
    ) -> U:
        """Run one task with retries; the scheduler's fault boundary.

        Every attempt recomputes the partition from lineage (a cached
        block is only reused if a previous attempt fully materialized
        it, so a mid-computation failure never poisons the cache).  A
        :class:`JobAbortedError` from a *nested* job is terminal -- the
        inner job already spent its own retry budget, so re-driving it
        from here would multiply attempts at every nesting level.
        """
        injector = self.fault_injector
        failures: list[TaskError] = []
        attempt = 0
        while True:
            attempt += 1
            try:
                if injector is not None:
                    injector.check("task.compute", key=(rdd.id, split))
                if task_span is None:
                    return fn(rdd.iterator(split))
                counted = _CountingIterator(rdd.iterator(split))
                try:
                    return fn(counted)
                finally:
                    task_span.attrs["records_in"] = counted.count
                    if attempt > 1:
                        task_span.attrs["attempt"] = attempt
            except JobAbortedError:
                raise
            except Exception as exc:
                self.metrics.tasks_failed += 1
                failures.append(TaskError(_rdd_label(rdd), split, attempt, exc))
                if task_span is not None:
                    task_span.note_failure(f"{type(exc).__name__}: {exc}")
                if attempt >= self.max_task_failures:
                    raise JobAbortedError(
                        _rdd_label(rdd), split, attempt, exc, failures
                    ) from exc
                self.metrics.tasks_retried += 1
                if self.retry_backoff > 0:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _run_job_traced(
        self, rdd: RDD[T], fn: Callable[[Iterator[T]], U], splits: list[int]
    ) -> list[U]:
        """The tracing twin of :meth:`run_job`'s execution core.

        Opens a ``job`` span carrying the operator tag and pruning
        attribution of the target lineage, plus one ``task`` span per
        partition with the records it consumed.  Task spans are parented
        to the job span explicitly because tasks may run on pool
        threads; nested jobs a task triggers attach beneath its span
        through the worker thread's stack.  Retried attempts mark their
        task span with ``failures``/``attempt``/``last_error`` attrs,
        and an aborting job is flagged ``aborted``.
        """
        tracer = self.tracer
        attrs: dict = {
            "rdd": _rdd_label(rdd),
            "op": _lineage_tag(rdd),
            "tasks": len(splits),
        }
        pruned = _lineage_pruning(rdd)
        if pruned:
            attrs["partitions_pruned"] = pruned
        with tracer.span("job", kind="job", **attrs) as job_span:

            def task(split: int) -> U:
                previous = getattr(self._in_job, "active", False)
                self._in_job.active = True
                try:
                    with tracer.span(
                        "task", kind="task", parent=job_span, split=split
                    ) as task_span:
                        return self._run_task(rdd, fn, split, task_span)
                finally:
                    self._in_job.active = previous

            try:
                nested = getattr(self._in_job, "active", False)
                if self._executor_mode == "sequential" or nested or len(splits) <= 1:
                    return [task(s) for s in splits]
                pool = self._ensure_pool()
                return list(pool.map(task, splits))
            except JobAbortedError as exc:
                job_span.attrs["aborted"] = True
                job_span.attrs["error"] = f"{type(exc.cause).__name__}: {exc.cause}"
                raise

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.default_parallelism,
                thread_name_prefix=f"{self.app_name}-task",
            )
        return self._pool

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Release the thread pool and drop all cached blocks."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._cache.clear()
        self._shuffle.clear()

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"SparkContext({self.app_name!r}, parallelism={self.default_parallelism})"
