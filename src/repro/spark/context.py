"""The driver context: entry point, scheduler, caches, metrics."""

from __future__ import annotations

import heapq
import itertools
import queue as queue_mod
import math
import statistics
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.obs import NULL_TRACER, Tracer
from repro.obs.tracer import shift_spans
from repro.spark.accumulator import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.cancellation import (
    KIND_ABORT,
    KIND_LOSER,
    KIND_STOP,
    KIND_TIMEOUT,
    CancelToken,
    Heartbeat,
    TaskCancelledError,
    cancellable_sleep,
    current_token,
    task_scope,
)
from repro.spark.errors import JobAbortedError, TaskError, TaskTimeoutError
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import (
    RDD,
    ParallelCollectionRDD,
    PartitionPruningRDD,
    ShuffledRDD,
    _Aggregator,
)

T = TypeVar("T")
U = TypeVar("U")


def _rdd_label(rdd: RDD) -> str:
    """The rdd's scheduler-facing name, e.g. ``MapPartitionsRDD[12]``."""
    return f"{type(rdd).__name__}[{rdd.id}]"


def _lineage_tag(rdd: RDD) -> str:
    """The operator tag of a job: the first named RDD up the lineage.

    Operators name the RDDs they build (``filter.live_index``,
    ``join.nested_loop``, ...); the scheduler stamps that tag on the
    job span so every job in a trace is attributable.  Lineage walking
    stops at shuffle boundaries -- the map side runs as its own job and
    reports its own tag.
    """
    queue, seen = [rdd], {rdd.id}
    while queue:
        node = queue.pop(0)
        if node.name:
            return node.name
        if isinstance(node, ShuffledRDD):
            continue
        for parent in node.parents:
            if parent.id not in seen:
                seen.add(parent.id)
                queue.append(parent)
    return type(rdd).__name__


def _lineage_pruning(rdd: RDD) -> int:
    """Partitions pruned by :class:`PartitionPruningRDD` nodes in *rdd*'s
    lineage (not crossing shuffle boundaries)."""
    pruned = 0
    queue, seen = [rdd], {rdd.id}
    while queue:
        node = queue.pop(0)
        if isinstance(node, PartitionPruningRDD):
            pruned += node.pruned_count
        if isinstance(node, ShuffledRDD):
            continue
        for parent in node.parents:
            if parent.id not in seen:
                seen.add(parent.id)
                queue.append(parent)
    return pruned


class _CountingIterator:
    """Wraps a partition iterator to count the records a task consumed."""

    __slots__ = ("_it", "count")

    def __init__(self, it: Iterator) -> None:
        self._it = iter(it)
        self.count = 0

    def __iter__(self) -> "_CountingIterator":
        return self

    def __next__(self):
        value = next(self._it)
        self.count += 1
        return value


#: The metric counters worker processes may contribute deltas to.  The
#: scheduler counters (tasks_launched, tasks_retried, ...) are owned by
#: the driver loop, which already accounts every attempt it schedules;
#: merging those from workers too would double-count.
WORKER_METRICS = frozenset(
    {
        "cache_hits",
        "cache_evictions",
        "index_fallbacks",
        "index_cache_hits",
        "index_candidates",
        "index_slices_pruned",
        "shuffle_records_written",
        "partitions_pruned",
        "partitions_pruned_temporal",
    }
)


@dataclass
class Metrics:
    """Execution counters the tests and benchmarks assert against.

    ``partitions_pruned`` in particular verifies the paper's claim that
    partition bounds/extents let queries skip partitions entirely.
    """

    tasks_launched: int = 0
    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_speculated: int = 0
    tasks_cancelled: int = 0
    tasks_timed_out: int = 0
    speculation_wins: int = 0
    jobs_run: int = 0
    jobs_failed: int = 0
    shuffles_executed: int = 0
    shuffle_records_written: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    partitions_pruned: int = 0
    partitions_pruned_temporal: int = 0
    index_fallbacks: int = 0
    index_cache_hits: int = 0
    index_candidates: int = 0
    index_slices_pruned: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (a point-in-time copy)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class _CacheManager:
    """Per-(rdd, partition) in-memory block store with an optional LRU cap.

    ``max_entries`` bounds the number of cached partition blocks; when
    exceeded, the least-recently-used block is dropped (and recomputed
    from lineage on next access), with ``metrics.cache_evictions``
    counting the drops.  Unbounded by default, matching Spark's
    behaviour of evicting only under memory pressure.
    """

    def __init__(self, max_entries: int | None = None, metrics: Metrics | None = None) -> None:
        self._blocks: OrderedDict[tuple[int, int], list] = OrderedDict()
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._metrics = metrics

    def get(self, rdd_id: int, split: int) -> list | None:
        with self._lock:
            block = self._blocks.get((rdd_id, split))
            if block is not None and self._max_entries is not None:
                self._blocks.move_to_end((rdd_id, split))
            return block

    def put(self, rdd_id: int, split: int, data: list) -> None:
        with self._lock:
            self._blocks[(rdd_id, split)] = data
            if self._max_entries is not None:
                self._blocks.move_to_end((rdd_id, split))
                while len(self._blocks) > self._max_entries:
                    self._blocks.popitem(last=False)
                    if self._metrics is not None:
                        self._metrics.cache_evictions += 1

    def evict_rdd(self, rdd_id: int) -> None:
        with self._lock:
            for key in [k for k in self._blocks if k[0] == rdd_id]:
                del self._blocks[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()


class _ShuffleManager:
    """Materializes and serves map outputs for shuffles.

    Each registered shuffle runs its map side exactly once (on first
    fetch), bucketing every parent partition's records by the target
    partitioner.  With an aggregator, map-side combining happens here --
    the reproduction of Spark's ``mapSideCombine``.
    """

    def __init__(self, context: "SparkContext") -> None:
        self._context = context
        self._ids = itertools.count()
        self._registered: dict[int, tuple[RDD, Partitioner, _Aggregator | None]] = {}
        self._outputs: dict[int, list[list[list]]] = {}
        # One lock *per shuffle id* so independent shuffles run their map
        # sides concurrently instead of serializing on a single manager
        # lock.  Each is reentrant: a reduce task of one shuffle may
        # trigger the map side of an upstream shuffle on the same thread
        # (nested jobs run inline).  Lock ordering follows the lineage
        # DAG (downstream shuffle -> upstream shuffle), so cross-shuffle
        # acquisition cannot cycle.
        self._manager_lock = threading.Lock()
        self._locks: dict[int, threading.RLock] = {}

    def register(
        self, parent: RDD, partitioner: Partitioner, aggregator: _Aggregator | None
    ) -> int:
        shuffle_id = next(self._ids)
        with self._manager_lock:
            self._registered[shuffle_id] = (parent, partitioner, aggregator)
        return shuffle_id

    def _lock_for(self, shuffle_id: int) -> threading.RLock:
        with self._manager_lock:
            lock = self._locks.get(shuffle_id)
            if lock is None:
                lock = self._locks[shuffle_id] = threading.RLock()
            return lock

    def fetch(self, shuffle_id: int, reduce_split: int) -> Iterator[tuple]:
        injector = self._context.fault_injector
        if injector is not None:
            # A failed fetch surfaces in the reduce task, which the
            # scheduler retries; completed map outputs are reused.
            injector.check("shuffle.fetch", key=(shuffle_id, reduce_split))
        outputs = self._ensure_map_outputs(shuffle_id)
        if self._context.shuffle_serialization:
            import pickle

            return itertools.chain.from_iterable(
                pickle.loads(map_out[reduce_split])
                for map_out in outputs
                if reduce_split in map_out
            )
        return itertools.chain.from_iterable(
            map_out.get(reduce_split, ()) for map_out in outputs
        )

    def _ensure_map_outputs(self, shuffle_id: int) -> list[list[list]]:
        # Double-checked locking: reduce tasks may arrive concurrently
        # from the thread pool; only one runs the map side.  A map side
        # that *fails* leaves no entry behind -- ``_outputs`` is only
        # written on success -- so a retried reduce task re-runs it from
        # scratch instead of fetching poisoned buckets.
        ready = self._outputs.get(shuffle_id)
        if ready is not None:
            return ready
        with self._lock_for(shuffle_id):
            ready = self._outputs.get(shuffle_id)
            if ready is not None:
                return ready
            parent, partitioner, aggregator = self._registered[shuffle_id]
            tracer = self._context.tracer
            if tracer.enabled:
                with tracer.span(
                    "shuffle",
                    kind="shuffle",
                    shuffle_id=shuffle_id,
                    map_partitions=parent.num_partitions,
                    reduce_partitions=partitioner.num_partitions,
                    combine=aggregator is not None,
                ) as shuffle_span:
                    outputs = self._run_map_side(
                        parent, partitioner, aggregator, shuffle_span
                    )
            else:
                outputs = self._run_map_side(parent, partitioner, aggregator)
            self._outputs[shuffle_id] = outputs
            self._context.metrics.shuffles_executed += 1
            return outputs

    def _run_map_side(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: _Aggregator | None,
        shuffle_span=None,
    ) -> list[dict[int, list]]:
        # The map side is itself a job over the parent RDD.  From inside
        # a reduce task, run_job must not recurse into the pool
        # (deadlock risk), so the context runs nested jobs inline; from
        # the driver (processes-backend pre-materialization) it runs as
        # a regular pooled job, so the map task must be a context-free
        # picklable closure -- accounting happens here afterwards.
        map_task = _make_map_task(
            partitioner, aggregator, self._context.shuffle_serialization
        )
        results = self._context.run_job(parent, map_task)
        outputs = [buckets for buckets, _written in results]
        written = sum(w for _buckets, w in results)
        self._context.metrics.shuffle_records_written += written
        if shuffle_span is not None:
            self._context.tracer.add_to(shuffle_span, "records_written", written)
        return outputs

    def ensure(self, shuffle_id: int) -> None:
        """Materialize a shuffle's map outputs now (driver-side).

        The processes backend calls this for every shuffle id reachable
        from a job's payload *before* dispatching tasks, so workers only
        ever fetch ready buckets.  If the map side itself hangs a
        shuffle upstream, the recursion terminates: the map job's own
        payload preparation ensures *its* upstream shuffles first.
        """
        self._ensure_map_outputs(shuffle_id)

    def serve_blocks(self, shuffle_id: int, reduce_split: int) -> tuple[bool, list]:
        """Return one reduce partition's buckets for a worker fetch.

        Shape: ``(serialized, chunks)`` -- one chunk per map output that
        produced records for this partition, each a pickled blob when
        shuffle serialization is on, a raw row list otherwise.  Unlike
        :meth:`fetch`, no chaos check happens here: ``shuffle.fetch``
        faults fire worker-side so they surface inside the task.
        """
        outputs = self._outputs.get(shuffle_id)
        if outputs is None:
            raise RuntimeError(
                f"shuffle {shuffle_id} has no materialized map outputs; "
                "processes jobs must ensure() their shuffles before dispatch"
            )
        return (
            self._context.shuffle_serialization,
            [out[reduce_split] for out in outputs if reduce_split in out],
        )

    def clear(self) -> None:
        with self._manager_lock:
            self._outputs.clear()
            self._registered.clear()
            self._locks.clear()


def _make_map_task(
    partitioner: Partitioner, aggregator: _Aggregator | None, serialize: bool
):
    """Build the map-side task closure for one shuffle.

    Module-level factory so the closure captures only picklable state
    (partitioner, aggregator, a flag) -- never the context, metrics or
    tracer -- and therefore ships to worker processes unchanged.  It
    returns ``(buckets, records_written)``; the shuffle manager does
    the metrics/tracing accounting driver-side.
    """

    def map_task(it: Iterator[tuple]) -> tuple[dict[int, Any], int]:
        # Buckets are sparse (dict keyed by reduce partition): a map
        # task touching few of the reduce partitions must not pay
        # for the rest, or high-partition-count shuffles (e.g. fine
        # tile grids) would go quadratic.
        heartbeat = Heartbeat(every=1024)
        buckets: dict[int, list] = {}
        if aggregator is None:
            for kv in it:
                heartbeat.beat()
                buckets.setdefault(partitioner.get_partition(kv[0]), []).append(kv)
        else:
            combined: dict[int, dict] = {}
            for k, v in it:
                heartbeat.beat()
                bucket = combined.setdefault(partitioner.get_partition(k), {})
                if k in bucket:
                    bucket[k] = aggregator.merge_value(bucket[k], v)
                else:
                    bucket[k] = aggregator.create_combiner(v)
            buckets = {pid: list(d.items()) for pid, d in combined.items()}
        written = sum(len(b) for b in buckets.values())
        if serialize:
            # Spill through pickle: a real shuffle serializes every
            # record to disk/network.  Reference-passing would hide
            # the very cost that separates replication-based join
            # strategies from STARK's single-assignment design.
            import pickle

            return (
                {
                    pid: pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
                    for pid, rows in buckets.items()
                },
                written,
            )
        return buckets, written

    return map_task


class _TaskAttempt:
    """One scheduled attempt of one task in a pooled job."""

    __slots__ = (
        "split", "number", "speculative", "token", "start", "span",
        "timed_out", "handle",
    )

    def __init__(self, split: int, number: int, speculative: bool, token: CancelToken) -> None:
        self.split = split
        self.number = number
        self.speculative = speculative
        self.token = token
        #: Set by the worker when execution actually begins (queue time
        #: does not count against the task deadline).
        self.start: float | None = None
        self.span = None
        self.timed_out = False
        #: The process pool's task handle (processes backend only).
        self.handle = None


#: Sentinel pushed into a pooled job's outcome queue to wake the driver
#: loop when its job token is cancelled from another thread.
_WAKE = object()


class _PooledJob:
    """The event-driven driver loop for one thread-pool job.

    The worker threads only *compute*; every scheduling decision --
    retries (with backoff timed on the driver, never ``time.sleep`` on a
    pool thread), per-task deadlines, whole-job deadlines, speculative
    copies of stragglers, first-result-wins resolution and cancellation
    of redundant attempts -- happens here, on the thread that called
    ``run_job``.  The loop blocks on an outcome queue with a timeout
    equal to the next scheduled event, so a job with no deadlines and no
    failures costs no polling at all, while a hung task can never block
    the driver past its deadline: the overdue attempt's token is
    cancelled, a typed :class:`TaskTimeoutError` is recorded, and a
    fresh attempt is launched without waiting for the hung one.
    """

    def __init__(self, ctx: "SparkContext", rdd: RDD, fn, splits: list[int],
                 job_token: CancelToken, job_span) -> None:
        self._ctx = ctx
        self._rdd = rdd
        self._fn = fn
        self._splits = splits
        self._job_token = job_token
        self._job_span = job_span
        self._label = _rdd_label(rdd)
        self._outcomes: queue_mod.Queue = queue_mod.Queue()
        self._results: dict[int, Any] = {}
        self._failures: dict[int, list[TaskError]] = {s: [] for s in splits}
        self._seq: dict[int, int] = {s: 0 for s in splits}
        self._live: dict[int, list[_TaskAttempt]] = {s: [] for s in splits}
        self._retry_heap: list[tuple[float, int, int]] = []  # (ready_at, order, split)
        self._retry_order = itertools.count()
        self._retry_pending: set[int] = set()
        self._speculated: set[int] = set()
        self._durations: list[float] = []

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> list:
        self._job_token.add_callback(lambda: self._outcomes.put(_WAKE))
        for split in self._splits:
            self._launch(split)
        while len(self._results) < len(self._splits):
            if self._job_token.cancelled:
                self._abort_cancelled()
            now = time.perf_counter()
            self._fire_due_retries(now)
            self._enforce_task_deadlines(now)
            self._maybe_speculate(now)
            try:
                outcome = self._outcomes.get(timeout=self._next_wait(now))
            except queue_mod.Empty:
                continue
            while True:
                if outcome is not _WAKE:
                    self._handle(outcome)
                try:
                    outcome = self._outcomes.get_nowait()
                except queue_mod.Empty:
                    break
        return [self._results[s] for s in self._splits]

    # -- launching ---------------------------------------------------------

    def _launch(self, split: int, speculative: bool = False) -> None:
        self._seq[split] += 1
        attempt = _TaskAttempt(
            split, self._seq[split], speculative, CancelToken(parent=self._job_token)
        )
        self._live[split].append(attempt)
        if speculative:
            self._speculated.add(split)
            self._ctx.metrics.tasks_speculated += 1
        try:
            self._submit_attempt(attempt)
        except RuntimeError as exc:  # pool shut down beneath us (stop())
            self._live[split].remove(attempt)
            self._abort(JobAbortedError(
                self._label, split, self._seq[split], exc, self._failures[split]
            ))

    def _submit_attempt(self, attempt: _TaskAttempt) -> None:
        """Hand one attempt to the execution backend (overridable)."""
        self._ctx._ensure_pool().submit(
            self._ctx._attempt_worker,
            self._rdd, self._fn, attempt, self._job_span, self._outcomes,
        )

    def _cancel_attempt(self, attempt: _TaskAttempt, reason: str, kind: str) -> None:
        """Stop one in-flight attempt (overridable).

        The threads backend cancels cooperatively through the attempt's
        token; the processes backend additionally kills the worker.
        """
        attempt.token.cancel(reason, kind)

    def _schedule_retry(self, split: int, failed_attempts: int) -> None:
        self._ctx.metrics.tasks_retried += 1
        delay = self._ctx.retry_backoff * (2 ** (failed_attempts - 1))
        heapq.heappush(
            self._retry_heap,
            (time.perf_counter() + delay, next(self._retry_order), split),
        )
        self._retry_pending.add(split)

    def _fire_due_retries(self, now: float) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _ready, _order, split = heapq.heappop(self._retry_heap)
            self._retry_pending.discard(split)
            if split not in self._results:
                self._launch(split)

    # -- outcomes ----------------------------------------------------------

    def _handle(self, outcome) -> None:
        attempt, ok, payload = outcome
        split = attempt.split
        if attempt in self._live[split]:
            self._live[split].remove(attempt)
        if ok:
            if attempt.start is not None:
                self._durations.append(time.perf_counter() - attempt.start)
            if split in self._results:
                return  # a sibling already won; late result discarded
            self._resolve(split, payload, attempt)
            return
        exc = payload
        if isinstance(exc, JobAbortedError):
            # A nested job already burned its own retry budget; terminal.
            self._abort(exc)
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            self._cancel_live("job interrupted", KIND_ABORT)
            raise exc
        if isinstance(exc, TaskCancelledError):
            # The driver initiated this (deadline, lost race, abort) and
            # already did the accounting when it cancelled the token.
            return
        if split in self._results:
            return  # stray failure of a redundant attempt
        self._ctx.metrics.tasks_failed += 1
        failures = self._failures[split]
        failures.append(TaskError(self._label, split, attempt.number, exc))
        if len(failures) >= self._ctx.max_task_failures:
            self._abort(JobAbortedError(self._label, split, len(failures), exc, failures))
        self._schedule_retry(split, len(failures))

    def _resolve(self, split: int, value, attempt: _TaskAttempt) -> None:
        self._results[split] = value
        if attempt.speculative:
            self._ctx.metrics.speculation_wins += 1
        for other in self._live[split]:
            if not other.timed_out:
                self._ctx.metrics.tasks_cancelled += 1
            self._cancel_attempt(
                other, "task superseded by a completed attempt", KIND_LOSER
            )
            if other.span is not None:
                other.span.attrs["cancelled"] = True

    # -- deadlines and speculation ----------------------------------------

    def _enforce_task_deadlines(self, now: float) -> None:
        timeout = self._ctx.task_timeout
        if timeout is None:
            return
        for split, attempts in self._live.items():
            if split in self._results:
                continue
            for attempt in attempts:
                if attempt.timed_out or attempt.start is None:
                    continue
                if now - attempt.start < timeout:
                    continue
                attempt.timed_out = True
                self._cancel_attempt(
                    attempt, f"task timeout after {timeout:g}s", KIND_TIMEOUT
                )
                self._ctx.metrics.tasks_timed_out += 1
                self._ctx.metrics.tasks_failed += 1
                record = TaskTimeoutError(self._label, split, attempt.number, timeout)
                failures = self._failures[split]
                failures.append(record)
                if attempt.span is not None:
                    attempt.span.note_failure(f"TaskTimeoutError: {record}")
                    attempt.span.attrs["timeout"] = True
                if len(failures) >= self._ctx.max_task_failures:
                    self._abort(JobAbortedError(
                        self._label, split, len(failures), record, failures
                    ))
                # Relaunch only if no healthy attempt is still racing
                # (a live speculative copy *is* the retry).
                if split not in self._retry_pending and not any(
                    a is not attempt and not a.timed_out for a in attempts
                ):
                    self._schedule_retry(split, len(failures))

    def _maybe_speculate(self, now: float) -> None:
        ctx = self._ctx
        if not ctx.speculation:
            return
        total = len(self._splits)
        done = len(self._results)
        if total < 2 or not self._durations:
            return
        if done < max(1, math.ceil(ctx.speculation_quantile * total)):
            return
        threshold = ctx.speculation_multiplier * statistics.median(self._durations)
        for split in self._splits:
            if split in self._results or split in self._speculated:
                continue
            if split in self._retry_pending:
                continue
            attempts = self._live[split]
            if any(a.speculative for a in attempts):
                continue
            if any(
                a.start is not None and not a.timed_out and now - a.start > threshold
                for a in attempts
            ):
                self._launch(split, speculative=True)

    def _next_wait(self, now: float) -> float | None:
        """Seconds until the next scheduled event, or None to block."""
        candidates: list[float] = []
        if self._retry_heap:
            candidates.append(self._retry_heap[0][0] - now)
        timeout = self._ctx.task_timeout
        if timeout is not None:
            for attempts in self._live.values():
                for attempt in attempts:
                    if attempt.timed_out:
                        continue
                    if attempt.start is None:
                        # Queued behind a busy pool; poll for its start.
                        candidates.append(0.02)
                    else:
                        candidates.append(attempt.start + timeout - now)
        if self._ctx.speculation and len(self._results) < len(self._splits):
            candidates.append(self._ctx.speculation_interval)
        if not candidates:
            return None
        return max(0.001, min(candidates))

    # -- aborting ----------------------------------------------------------

    def _cancel_live(self, reason: str, kind: str) -> None:
        for attempts in self._live.values():
            for attempt in attempts:
                if not attempt.timed_out:
                    self._ctx.metrics.tasks_cancelled += 1
                self._cancel_attempt(attempt, reason, kind)
                if attempt.span is not None:
                    attempt.span.attrs["cancelled"] = True
        self._retry_heap.clear()
        self._retry_pending.clear()

    def _abort(self, error: JobAbortedError) -> None:
        self._cancel_live("job aborted", KIND_ABORT)
        raise error

    def _abort_cancelled(self) -> None:
        """The job token was cancelled externally (timeout, stop, cancel)."""
        split = next(s for s in self._splits if s not in self._results)
        failures = list(self._failures[split])
        if self._job_token.kind == KIND_TIMEOUT:
            record = TaskTimeoutError(
                self._label, split, max(1, self._seq[split]),
                self._ctx.job_timeout or 0.0, scope="job",
            )
            failures.append(record)
            self._ctx.metrics.tasks_timed_out += 1
            cause: BaseException = record
        else:
            cause = TaskCancelledError(
                self._job_token.reason or "job cancelled", self._job_token.kind
            )
        self._abort(JobAbortedError(
            self._label, split, max(1, len(failures)), cause, failures
        ))


class _ProcessJob(_PooledJob):
    """The processes-backend variant of the pooled driver loop.

    Scheduling policy (retries, backoff, deadlines, abort handling) is
    inherited unchanged from :class:`_PooledJob`; what differs is the
    transport.  Attempts dispatch to a :class:`~repro.spark.procpool.
    ProcessPool` as a serialized payload + split id; workers recompute
    the partition from shipped lineage and send back the value plus the
    *side data* a shared address space used to make free -- a metrics
    delta, recorded accumulator terms, chaos counters and the task's
    trace span -- which :meth:`_absorb` merges into driver state.
    Cancellation is kill-based: :meth:`_cancel_attempt` still cancels
    the driver-side token (so the inherited accounting is identical)
    and then shoots the attempt's worker process; the pool synthesizes
    a ``TaskCancelledError`` outcome that the inherited ``_handle``
    already knows to ignore.
    """

    def __init__(self, ctx: "SparkContext", rdd: RDD, fn, splits: list[int],
                 job_token: CancelToken, job_span, payload) -> None:
        super().__init__(ctx, rdd, fn, splits, job_token, job_span)
        self._payload = payload
        self._pool = ctx._ensure_proc_pool()
        injector = ctx.fault_injector
        self._meta_base = {
            "tracing": ctx.tracer.enabled,
            "chaos": injector.worker_spec() if injector is not None else None,
        }

    def run(self) -> list:
        try:
            return super().run()
        finally:
            # Workers cache the payload bytes for the job's duration;
            # the job is over, reclaim the memory.
            self._pool.release_payload(self._payload.payload_id)

    def _submit_attempt(self, attempt: _TaskAttempt) -> None:
        meta = dict(self._meta_base, attempt=attempt.number)
        outcomes = self._outcomes

        def on_start() -> None:
            attempt.start = time.perf_counter()

        def on_outcome(ok: bool, out) -> None:
            outcomes.put((attempt, ok, out))

        attempt.handle = self._pool.submit(
            self._payload, attempt.split, meta, on_start, on_outcome
        )

    def _cancel_attempt(self, attempt: _TaskAttempt, reason: str, kind: str) -> None:
        attempt.token.cancel(reason, kind)
        if attempt.handle is not None:
            self._pool.kill(attempt.handle, TaskCancelledError(reason, kind))

    def _handle(self, outcome) -> None:
        attempt, ok, payload = outcome
        if isinstance(payload, dict):
            payload = self._absorb(attempt, ok, payload)
        super()._handle((attempt, ok, payload))

    def _absorb(self, attempt: _TaskAttempt, ok: bool, out: dict):
        """Merge a worker outcome's side data; return the value/error.

        Metrics deltas, chaos counters and trace spans merge for every
        delivered outcome -- under threads, losing attempts also leave
        those footprints.  Accumulator terms only replay for an attempt
        whose *result is accepted* (first success per split), so a
        retried or superseded attempt cannot double-count.
        """
        ctx = self._ctx
        metrics = out.get("metrics")
        if metrics:
            for name, amount in metrics.items():
                if name in WORKER_METRICS:
                    setattr(ctx.metrics, name, getattr(ctx.metrics, name) + amount)
        chaos = out.get("chaos")
        if chaos and ctx.fault_injector is not None:
            ctx.fault_injector.merge_worker_stats(chaos)
        span = out.get("span")
        if span is not None and ctx.tracer.enabled and self._job_span is not None:
            shift_spans(span, attempt.start or time.perf_counter())
            if attempt.number > 1:
                span.attrs["attempt"] = attempt.number
            if attempt.speculative:
                span.attrs["speculative"] = True
            ctx.tracer.attach(self._job_span, span)
            attempt.span = span
        if ok:
            if attempt.split not in self._results:
                accumulators = out.get("accumulators")
                if accumulators:
                    for acc_id, terms in accumulators.items():
                        accumulator = self._payload.accumulators.get(acc_id)
                        if accumulator is not None:
                            for term in terms:
                                accumulator.add(term)
            return out.get("value")
        error = out.get("error")
        if not isinstance(error, BaseException):
            error = RuntimeError(f"worker task failed: {error!r}")
        remote_traceback = out.get("traceback")
        if remote_traceback:
            error.remote_traceback = remote_traceback
        return error


class SparkContext:
    """The driver: creates RDDs, runs jobs, owns caches and metrics.

    ``parallelism`` controls both the default slice count of
    :meth:`parallelize` and the size of the task thread pool.  With
    ``executor="sequential"`` tasks run inline in deterministic order,
    which the test-suite uses.
    """

    def __init__(
        self,
        app_name: str = "repro",
        parallelism: int = 4,
        executor: str = "threads",
        shuffle_serialization: bool = True,
        tracing: bool = False,
        tracer: Tracer | None = None,
        max_task_failures: int = 4,
        retry_backoff: float = 0.05,
        fault_injector=None,
        task_timeout: float | None = None,
        job_timeout: float | None = None,
        speculation: bool = False,
        speculation_quantile: float = 0.75,
        speculation_multiplier: float = 1.5,
        speculation_interval: float = 0.02,
        max_cache_entries: int | None = None,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if executor not in ("threads", "sequential", "processes"):
            raise ValueError(f"unknown executor {executor!r}")
        if executor == "processes" and speculation:
            raise ValueError(
                "speculation requires the threads executor: speculative "
                "copies are cancelled cooperatively, which cannot cross a "
                "process boundary (processes get kill-based deadlines instead)"
            )
        if max_task_failures < 1:
            raise ValueError("max_task_failures must be >= 1")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if not 0.0 < speculation_quantile <= 1.0:
            raise ValueError("speculation_quantile must be in (0, 1]")
        if speculation_multiplier < 1.0:
            raise ValueError("speculation_multiplier must be >= 1.0")
        if speculation_interval <= 0:
            raise ValueError("speculation_interval must be positive")
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError("max_cache_entries must be >= 1")
        self.app_name = app_name
        self.default_parallelism = parallelism
        self._executor_mode = executor
        #: Serialize shuffled records through pickle (like a real Spark
        #: shuffle).  Keeps the engine's cost model faithful; disable
        #: only for micro-tests where shuffle cost is irrelevant.
        self.shuffle_serialization = shuffle_serialization
        self._rdd_ids = itertools.count()
        self.metrics = Metrics()
        self._cache = _CacheManager(max_cache_entries, self.metrics)
        self._shuffle = _ShuffleManager(self)
        #: The execution tracer.  Defaults to the shared no-op tracer;
        #: pass ``tracing=True`` (or a :class:`Tracer`) to record spans.
        self.tracer: Tracer = tracer or (Tracer() if tracing else NULL_TRACER)
        #: Attempts a task gets before the job aborts (Spark's
        #: ``spark.task.maxFailures``); each attempt recomputes the
        #: partition from lineage.
        self.max_task_failures = max_task_failures
        #: Base of the exponential retry backoff, in seconds: attempt
        #: *n* waits ``retry_backoff * 2**(n-1)`` before re-running.  On
        #: the thread-pool executor the wait is timed by the driver loop
        #: -- a backing-off task never occupies a worker slot.
        self.retry_backoff = retry_backoff
        #: Optional :class:`repro.chaos.FaultInjector`; when set, the
        #: instrumented sites consult it.  Hot paths guard on ``is not
        #: None`` so the disabled case costs one attribute read.
        self.fault_injector = fault_injector
        #: Per-task deadline in seconds (Spark's task reaper): an
        #: attempt running longer is cooperatively cancelled, recorded
        #: as a :class:`TaskTimeoutError`, and retried from lineage.
        self.task_timeout = task_timeout
        #: Whole-job deadline in seconds: a top-level job running longer
        #: aborts with a job-scoped :class:`TaskTimeoutError` in its
        #: failure list.  Nested jobs share their parent's budget.
        self.job_timeout = job_timeout
        #: Enable speculative execution (Spark's ``spark.speculation``):
        #: once ``speculation_quantile`` of a job's tasks have finished,
        #: a task running longer than ``speculation_multiplier`` x the
        #: median runtime gets a second copy; first result wins, the
        #: loser is cancelled.  Thread-pool executor only.
        self.speculation = speculation
        self.speculation_quantile = speculation_quantile
        self.speculation_multiplier = speculation_multiplier
        #: How often (seconds) the driver loop re-evaluates stragglers.
        self.speculation_interval = speculation_interval
        self._pool: ThreadPoolExecutor | None = None
        self._proc_pool = None
        self._max_cache_entries = max_cache_entries
        self._in_job = threading.local()
        self._stopped = False
        self._active_jobs: set[CancelToken] = set()
        self._jobs_lock = threading.Lock()

    def enable_tracing(self) -> Tracer:
        """Install (or return) a live :class:`Tracer` on this context."""
        if not self.tracer.enabled:
            self.tracer = Tracer()
        return self.tracer

    def install_fault_injector(self, injector):
        """Install a :class:`repro.chaos.FaultInjector` (None to remove)."""
        self.fault_injector = injector
        return injector

    # -- RDD creation --------------------------------------------------------

    def parallelize(self, data: Iterable[T], num_slices: int | None = None) -> RDD[T]:
        """Create an RDD from an in-memory collection."""
        return ParallelCollectionRDD(self, data, num_slices or self.default_parallelism)

    def empty_rdd(self) -> RDD[Any]:
        """An RDD with a single empty partition."""
        return ParallelCollectionRDD(self, [], 1)

    def text_file(self, path: str, num_slices: int | None = None) -> RDD[str]:
        """Read a text file (or directory of part-files) as an RDD of lines."""
        from repro.spark import storage

        return storage.text_file_rdd(self, path, num_slices or self.default_parallelism)

    def object_file(self, path: str) -> RDD[Any]:
        """Read a directory written by ``save_as_object_file``.

        Partitioning is preserved: one part-file, one partition.
        """
        from repro.spark import storage

        return storage.object_file_rdd(self, path)

    def broadcast(self, value: T) -> Broadcast[T]:
        """Wrap a read-only value shared by every task."""
        return Broadcast(value)

    def accumulator(self, initial: U, op: Callable[[U, U], U] | None = None) -> Accumulator[U]:
        """A write-only aggregation variable tasks can add to."""
        return Accumulator(initial, op)

    # -- execution -----------------------------------------------------------

    def run_job(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        partitions: Iterable[int] | None = None,
    ) -> list[U]:
        """Run ``fn`` over each requested partition and gather the results.

        The backbone of every action.  Nested jobs (e.g. a shuffle map
        side triggered from inside a reduce task) run inline on the
        calling thread to avoid pool starvation.

        Each task gets :attr:`max_task_failures` attempts, recomputing
        its partition from lineage every time; a task that keeps failing
        aborts the job with :class:`JobAbortedError`.  Every attempt
        runs under a :class:`CancelToken` descended from the job's, so
        deadlines, speculation losses and :meth:`cancel_all_jobs` stop
        in-flight work cooperatively.
        """
        if self._stopped:
            raise RuntimeError(
                f"SparkContext {self.app_name!r} has been stopped; "
                "create a new context to run jobs"
            )
        num_partitions = rdd.num_partitions
        if partitions is not None:
            splits = list(partitions)
            for split in splits:
                if not 0 <= split < num_partitions:
                    raise ValueError(
                        f"partition index {split} out of range for "
                        f"{_rdd_label(rdd)} with {num_partitions} partitions"
                    )
        else:
            splits = list(range(num_partitions))
        self.metrics.jobs_run += 1
        self.metrics.tasks_launched += len(splits)
        nested = getattr(self._in_job, "active", False)
        # Nested jobs always run inline -- under threads to avoid pool
        # re-entry starvation, under processes to avoid shipping a job
        # from within a job (the pool is not re-entrant either way).
        pooled = (
            self._executor_mode in ("threads", "processes")
            and not nested
            and len(splits) > 1
        )
        # Nested jobs chain their token under the enclosing task's, so a
        # cancelled outer job reaches a shuffle map side levels deep.
        job_token = CancelToken(parent=current_token())
        self._register_job(job_token)
        job_timer: threading.Timer | None = None
        if self.job_timeout is not None and not nested:
            job_timer = threading.Timer(
                self.job_timeout,
                job_token.cancel,
                args=(f"job timeout after {self.job_timeout:g}s", KIND_TIMEOUT),
            )
            job_timer.daemon = True
            job_timer.start()
        try:
            payload = None
            if pooled and self._executor_mode == "processes":
                # Serialize the task once for the whole job and
                # materialize every shuffle its lineage crosses, so
                # workers never trigger driver-side work they would
                # have to wait on mid-task.
                payload = self._prepare_process_payload(rdd, fn)
            if self.tracer.enabled:
                return self._run_job_traced(
                    rdd, fn, splits, pooled, nested, job_token, payload
                )
            if pooled:
                return self._pooled_job(rdd, fn, splits, job_token, None, payload).run()
            return self._run_job_inline(rdd, fn, splits, nested, job_token, None)
        except JobAbortedError:
            self.metrics.jobs_failed += 1
            raise
        finally:
            if job_timer is not None:
                job_timer.cancel()
            self._unregister_job(job_token)

    def _run_job_traced(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        splits: list[int],
        pooled: bool,
        nested: bool,
        job_token: CancelToken,
        payload=None,
    ) -> list[U]:
        """The tracing twin of :meth:`run_job`'s execution core.

        Opens a ``job`` span carrying the operator tag and pruning
        attribution of the target lineage, plus one ``task`` span per
        attempt with the records it consumed.  Task spans are parented
        to the job span explicitly because tasks may run on pool
        threads; nested jobs a task triggers attach beneath its span
        through the worker thread's stack.  Inline retries mark their
        task span with ``failures``/``attempt``/``last_error`` attrs;
        pooled retries and speculative copies open their own spans
        (``attempt``/``speculative``); cancelled and overdue attempts
        are flagged ``cancelled``/``timeout``, and an aborting job is
        flagged ``aborted``.
        """
        tracer = self.tracer
        attrs: dict = {
            "rdd": _rdd_label(rdd),
            "op": _lineage_tag(rdd),
            "tasks": len(splits),
        }
        pruned = _lineage_pruning(rdd)
        if pruned:
            attrs["partitions_pruned"] = pruned
        with tracer.span("job", kind="job", **attrs) as job_span:
            try:
                if pooled:
                    return self._pooled_job(
                        rdd, fn, splits, job_token, job_span, payload
                    ).run()
                return self._run_job_inline(rdd, fn, splits, nested, job_token, job_span)
            except JobAbortedError as exc:
                job_span.attrs["aborted"] = True
                job_span.attrs["error"] = f"{type(exc.cause).__name__}: {exc.cause}"
                raise
            except TaskCancelledError:
                # A nested job unwinding because its *enclosing* task was
                # cancelled; the outer job does the accounting.
                job_span.attrs["cancelled"] = True
                raise

    def _run_job_inline(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        splits: list[int],
        nested: bool,
        job_token: CancelToken,
        job_span,
    ) -> list[U]:
        """Sequential execution on the calling thread (also nested jobs)."""

        def task(split: int) -> U:
            # Mark this thread as inside a task so any nested job it
            # triggers (e.g. a shuffle map side) runs inline instead of
            # re-entering the pool and starving it.
            previous = getattr(self._in_job, "active", False)
            self._in_job.active = True
            try:
                if job_span is not None:
                    with self.tracer.span(
                        "task", kind="task", parent=job_span, split=split
                    ) as task_span:
                        return self._run_task(rdd, fn, split, nested, job_token, task_span)
                return self._run_task(rdd, fn, split, nested, job_token)
            finally:
                self._in_job.active = previous

        return [task(s) for s in splits]

    def _run_task(
        self,
        rdd: RDD[T],
        fn: Callable[[Iterator[T]], U],
        split: int,
        nested: bool,
        job_token: CancelToken,
        task_span=None,
    ) -> U:
        """Run one task inline with retries; the scheduler's fault boundary.

        Every attempt recomputes the partition from lineage (a cached
        block is only reused if a previous attempt fully materialized
        it, so a mid-computation failure never poisons the cache) under
        its own :class:`CancelToken`; when ``task_timeout`` is set, a
        watchdog timer cancels an overdue attempt, which surfaces here
        as a retryable :class:`TaskTimeoutError`.  Cancellation of the
        *job* (abort, stop, job timeout) is terminal.  A
        :class:`JobAbortedError` from a *nested* job is also terminal --
        the inner job already spent its own retry budget, so re-driving
        it from here would multiply attempts at every nesting level.
        """
        injector = self.fault_injector
        label = _rdd_label(rdd)
        failures: list[TaskError] = []
        attempt = 0
        while True:
            attempt += 1
            token = CancelToken(parent=job_token)
            watchdog: threading.Timer | None = None
            if self.task_timeout is not None:
                watchdog = threading.Timer(
                    self.task_timeout,
                    token.cancel,
                    args=(f"task timeout after {self.task_timeout:g}s", KIND_TIMEOUT),
                )
                watchdog.daemon = True
                watchdog.start()
            try:
                with task_scope(token):
                    token.check()
                    if injector is not None:
                        injector.check("task.compute", key=(rdd.id, split))
                    if task_span is None:
                        return fn(rdd.iterator(split))
                    counted = _CountingIterator(rdd.iterator(split))
                    try:
                        return fn(counted)
                    finally:
                        task_span.attrs["records_in"] = counted.count
                        if attempt > 1:
                            task_span.attrs["attempt"] = attempt
            except JobAbortedError:
                raise
            except TaskCancelledError as exc:
                if nested and job_token.cancelled:
                    # The cancellation came from *above* this job (the
                    # enclosing attempt timed out, lost a speculation
                    # race, or its job aborted).  Unwind raw: the outer
                    # scheduler owns the accounting and may retry the
                    # enclosing task, which will re-run this nested job.
                    if task_span is not None:
                        task_span.attrs["cancelled"] = True
                    raise
                if job_token.cancelled or exc.kind != KIND_TIMEOUT:
                    raise self._terminal_cancellation(
                        exc, label, split, attempt, failures, task_span, job_token
                    ) from exc
                # Per-attempt deadline: typed failure, then retry.
                self.metrics.tasks_timed_out += 1
                self.metrics.tasks_failed += 1
                record = TaskTimeoutError(label, split, attempt, self.task_timeout or 0.0)
                failures.append(record)
                if task_span is not None:
                    task_span.note_failure(f"TaskTimeoutError: {record}")
                    task_span.attrs["timeout"] = True
                if attempt >= self.max_task_failures:
                    raise JobAbortedError(label, split, attempt, record, failures) from exc
                self.metrics.tasks_retried += 1
                self._backoff(attempt, label, split, failures, job_token)
            except Exception as exc:
                self.metrics.tasks_failed += 1
                failures.append(TaskError(label, split, attempt, exc))
                if task_span is not None:
                    task_span.note_failure(f"{type(exc).__name__}: {exc}")
                if attempt >= self.max_task_failures:
                    raise JobAbortedError(label, split, attempt, exc, failures) from exc
                self.metrics.tasks_retried += 1
                self._backoff(attempt, label, split, failures, job_token)
            finally:
                if watchdog is not None:
                    watchdog.cancel()

    def _terminal_cancellation(
        self, exc, label, split, attempt, failures, task_span, job_token
    ) -> JobAbortedError:
        """Build the abort for a job-level cancellation of an inline task."""
        if job_token.cancelled and job_token.kind == KIND_TIMEOUT:
            record = TaskTimeoutError(
                label, split, attempt, self.job_timeout or 0.0, scope="job"
            )
            failures.append(record)
            self.metrics.tasks_timed_out += 1
            if task_span is not None:
                task_span.attrs["timeout"] = True
            return JobAbortedError(label, split, attempt, record, failures)
        self.metrics.tasks_cancelled += 1
        if task_span is not None:
            task_span.attrs["cancelled"] = True
        return JobAbortedError(label, split, attempt, exc, failures)

    def _backoff(self, attempt, label, split, failures, job_token) -> None:
        """Exponential retry backoff; wakes early if the job is cancelled."""
        if self.retry_backoff <= 0:
            return
        try:
            cancellable_sleep(self.retry_backoff * (2 ** (attempt - 1)), token=job_token)
        except TaskCancelledError as exc:
            raise JobAbortedError(label, split, attempt, exc, failures) from exc

    def _attempt_worker(self, rdd, fn, attempt: _TaskAttempt, job_span, outcomes) -> None:
        """The pool-thread half of a pooled task attempt.

        Pure computation: runs the partition function under the
        attempt's cancel scope and reports (attempt, ok, payload) to the
        driver loop.  Never raises -- even ``KeyboardInterrupt`` is
        shipped back so the driver can cancel siblings and re-raise on
        the calling thread.
        """
        previous = getattr(self._in_job, "active", False)
        self._in_job.active = True
        attempt.start = time.perf_counter()
        try:
            try:
                with task_scope(attempt.token):
                    attempt.token.check()
                    if self.tracer.enabled and job_span is not None:
                        attrs: dict = {"split": attempt.split}
                        if attempt.number > 1:
                            attrs["attempt"] = attempt.number
                        if attempt.speculative:
                            attrs["speculative"] = True
                        with self.tracer.span(
                            "task", kind="task", parent=job_span, **attrs
                        ) as span:
                            attempt.span = span
                            try:
                                value = self._compute_partition(rdd, fn, attempt.split, span)
                            except TaskCancelledError as exc:
                                span.attrs["cancelled"] = True
                                if exc.kind == KIND_TIMEOUT:
                                    span.attrs["timeout"] = True
                                raise
                            except JobAbortedError:
                                raise
                            except Exception as exc:
                                span.note_failure(f"{type(exc).__name__}: {exc}")
                                raise
                    else:
                        value = self._compute_partition(rdd, fn, attempt.split, None)
            except BaseException as exc:
                outcomes.put((attempt, False, exc))
            else:
                outcomes.put((attempt, True, value))
        finally:
            self._in_job.active = previous

    def _compute_partition(self, rdd, fn, split: int, span):
        injector = self.fault_injector
        if injector is not None:
            injector.check("task.compute", key=(rdd.id, split))
        if span is None:
            return fn(rdd.iterator(split))
        counted = _CountingIterator(rdd.iterator(split))
        try:
            return fn(counted)
        finally:
            span.attrs["records_in"] = counted.count

    def _pooled_job(self, rdd, fn, splits, job_token, job_span, payload) -> _PooledJob:
        """The driver loop for this context's parallel backend."""
        if payload is not None:
            return _ProcessJob(self, rdd, fn, splits, job_token, job_span, payload)
        return _PooledJob(self, rdd, fn, splits, job_token, job_span)

    def _prepare_process_payload(self, rdd, fn):
        """Serialize a job's task and pre-materialize its shuffles.

        Raises :class:`~repro.spark.serialization.TaskSerializationError`
        before any task is dispatched if the closure violates the
        shipping contract.  Materializing reachable shuffles here runs
        each map side as a regular (driver-initiated, pooled) job whose
        own payload preparation recurses depth-first into *its*
        upstream shuffles -- workers then only ever fetch ready buckets.
        """
        from repro.spark.serialization import serialize_task

        payload = serialize_task(self, rdd, fn)
        for shuffle_id in payload.shuffle_ids:
            self._shuffle.ensure(shuffle_id)
        return payload

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.default_parallelism,
                thread_name_prefix=f"{self.app_name}-task",
            )
        return self._pool

    def _ensure_proc_pool(self):
        if self._proc_pool is None:
            if self._stopped:
                raise RuntimeError("process pool is shut down")
            from repro.spark.procpool import ProcessPool

            self._proc_pool = ProcessPool(
                self.default_parallelism,
                {
                    "app_name": self.app_name,
                    "default_parallelism": self.default_parallelism,
                    "shuffle_serialization": self.shuffle_serialization,
                    "max_cache_entries": self._max_cache_entries,
                },
                self._shuffle.serve_blocks,
                name=self.app_name,
            )
        return self._proc_pool

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    # -- lifecycle -----------------------------------------------------------

    def _register_job(self, token: CancelToken) -> None:
        with self._jobs_lock:
            self._active_jobs.add(token)

    def _unregister_job(self, token: CancelToken) -> None:
        with self._jobs_lock:
            self._active_jobs.discard(token)

    def cancel_all_jobs(self, reason: str = "cancelled by driver") -> int:
        """Cancel every running job from any thread; returns jobs signalled.

        Cooperative: each active job's token tree is cancelled, waking
        blocked waits and making polling loops raise promptly.  Running
        jobs abort with :class:`JobAbortedError`; the context itself
        stays usable for new jobs.
        """
        with self._jobs_lock:
            tokens = list(self._active_jobs)
        for token in tokens:
            token.cancel(reason, KIND_ABORT)
        return len(tokens)

    def stop(self) -> None:
        """Shut the context down: cancel jobs, release the pool, drop state.

        Idempotent, and safe to call from another thread as a
        killswitch -- in-flight jobs are cooperatively cancelled rather
        than waited for.  A stopped context refuses new jobs
        (:meth:`run_job` raises ``RuntimeError``); create a fresh
        context instead.
        """
        if self._stopped:
            return
        self._stopped = True
        self.cancel_all_jobs(reason="context stopped")
        if self._pool is not None:
            # wait=False: cancelled cooperative tasks drain on their
            # own; a truly wedged task must not block shutdown.
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._proc_pool is not None:
            self._proc_pool.shutdown()
            self._proc_pool = None
        self._cache.clear()
        self._shuffle.clear()

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"SparkContext({self.app_name!r}, parallelism={self.default_parallelism})"
