"""The worker-process side of the ``processes`` executor.

:func:`worker_main` is the entry point a :class:`~repro.spark.procpool.
ProcessPool` spawns; it owns one end of a duplex pipe and loops over
driver messages:

``("payload", id, bytes)``
    A job's serialized ``(rdd, fn)``, cached by id (shipped at most
    once per (job, worker); dropped on job completion).
``("broadcast", id, bytes)``
    A broadcast value, cached *for the life of the process* and
    deserialized lazily on first use -- once per worker, not per task.
``("task", task_id, payload_id, split, meta)``
    Run one task attempt: deserialize the payload against this worker's
    :class:`WorkerContext`, compute the partition, ship back
    ``("done", task_id, ok, out)`` where ``out`` carries the value (or
    the exception + traceback), the metrics delta, recorded accumulator
    terms, chaos counters and the task's trace span.
``("blocks", ...)`` / ``("blocks_error", ...)``
    Responses to this worker's shuffle-fetch requests (see
    :class:`_WorkerShuffle`).
``("drop", payload_id)`` / ``("stop",)``
    Cache management / orderly exit.

The payload is deserialized *fresh for every task attempt* (the bytes
are cached, the objects are not): accumulator shims, the tracer and the
fault injector are per-attempt state, and a cached object graph would
leak one attempt's state into the next.  Broadcast values, by contrast,
are immutable and deserialize once.

There is no cooperative cancellation here -- no cancel tokens cross the
process boundary.  The driver enforces deadlines and aborts by killing
the whole process (see :mod:`repro.spark.cancellation`), so a task that
hangs in this loop simply dies with its worker.
"""

from __future__ import annotations

import itertools
import pickle
import time
import traceback
from typing import Any, Callable, Iterable, Iterator

from repro.chaos.injector import WorkerFaultInjector
from repro.obs.tracer import NULL_TRACER, Tracer, shift_spans
from repro.spark.broadcast import Broadcast
from repro.spark.context import (
    WORKER_METRICS,
    Metrics,
    _CacheManager,
    _CountingIterator,
)
from repro.spark.serialization import TaskSerializationError, deserialize


class _WorkerAccumulator:
    """The write-only shim tasks see instead of a driver accumulator.

    Records raw terms; the driver replays them through the real
    accumulator's ``add`` iff it accepts the attempt's result.
    """

    __slots__ = ("id", "_terms")

    def __init__(self, accumulator_id: int, terms: list) -> None:
        self.id = accumulator_id
        self._terms = terms

    def add(self, term) -> None:
        self._terms.append(term)

    def __iadd__(self, term) -> "_WorkerAccumulator":
        self._terms.append(term)
        return self

    @property
    def value(self):
        raise RuntimeError(
            "accumulator values are only readable on the driver; "
            "tasks are write-only (call add())"
        )


class _WorkerShuffle:
    """Reduce-side fetch client: asks the driver for shuffle buckets.

    The driver materializes every reachable shuffle's map outputs
    *before* dispatching a processes job, so a fetch is a pure read --
    ``("fetch", ...)`` out, ``("blocks", ...)`` back.  Out-of-band
    messages arriving while we wait (a ``drop`` for a finished job) are
    handed back to the context's message handler, not lost.
    """

    def __init__(self, ctx: "WorkerContext") -> None:
        self._ctx = ctx

    def fetch(self, shuffle_id: int, reduce_split: int) -> Iterator[tuple]:
        ctx = self._ctx
        injector = ctx.fault_injector
        if injector is not None:
            injector.check("shuffle.fetch", key=(shuffle_id, reduce_split))
        serialized, chunks = ctx.request_blocks(shuffle_id, reduce_split)
        if serialized:
            return itertools.chain.from_iterable(
                pickle.loads(chunk) for chunk in chunks
            )
        return itertools.chain.from_iterable(chunks)


class WorkerContext:
    """What ``("context",)`` persistent ids resolve to inside a worker.

    Duck-types the slice of :class:`~repro.spark.context.SparkContext`
    that lineage recomputation touches: the block cache (persistent
    across tasks, so a persisted RDD's partitions are computed once per
    worker), metrics, tracer, fault injector, the shuffle *client*, and
    an inline ``run_job`` for the rare nested job triggered from inside
    a task.  ``is_task_context`` is the marker ``RDD.__init__`` accepts
    in place of a real driver context.
    """

    is_task_context = True

    def __init__(self, conn, config: dict) -> None:
        self._conn = conn
        self.app_name = config.get("app_name", "repro")
        self.default_parallelism = config.get("default_parallelism", 4)
        self.shuffle_serialization = config.get("shuffle_serialization", True)
        self.metrics = Metrics()
        self._cache = _CacheManager(config.get("max_cache_entries"), self.metrics)
        self._shuffle = _WorkerShuffle(self)
        self.tracer: Any = NULL_TRACER
        self.fault_injector: WorkerFaultInjector | None = None
        self._broadcast_blobs: dict[int, bytes] = {}
        self._broadcast_objects: dict[int, Broadcast] = {}
        self._acc_terms: dict[int, list] = {}
        self._current_task: int | None = None
        # Worker-constructed RDDs must not collide with driver ids (the
        # block cache is keyed by rdd id and survives across tasks).
        self._rdd_ids = itertools.count(1_000_000_000)
        self._oob: Callable[[tuple], None] | None = None

    # -- the SparkContext surface lineage code touches ----------------------

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def run_job(self, rdd, fn, partitions: Iterable[int] | None = None) -> list:
        """Run a nested job inline inside this worker's current task."""
        # Nested jobs inside a worker task run bare inline: retries,
        # deadlines and chaos belong to the enclosing attempt, which the
        # driver already schedules and (if need be) kills as a whole.
        splits = (
            list(partitions) if partitions is not None else range(rdd.num_partitions)
        )
        return [fn(rdd.iterator(split)) for split in splits]

    # -- persistent-id resolution -------------------------------------------

    def resolve(self, pid: tuple):
        """Map a pickled persistent-id tag to this worker's live object."""
        tag = pid[0]
        if tag == "context":
            return self
        if tag == "broadcast":
            return self.get_broadcast(pid[1])
        if tag == "accumulator":
            terms = self._acc_terms.setdefault(pid[1], [])
            return _WorkerAccumulator(pid[1], terms)
        if tag == "tracer":
            return self.tracer
        if tag == "injector":
            return self.fault_injector
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")

    def store_broadcast(self, broadcast_id: int, blob: bytes) -> None:
        """Cache a broadcast payload's pickled bytes for later use."""
        self._broadcast_blobs[broadcast_id] = blob

    def get_broadcast(self, broadcast_id: int) -> Broadcast:
        """The broadcast variable, unpickled once and cached thereafter."""
        cached = self._broadcast_objects.get(broadcast_id)
        if cached is not None:
            return cached
        blob = self._broadcast_blobs.get(broadcast_id)
        if blob is None:
            raise RuntimeError(
                f"broadcast {broadcast_id} was never shipped to this worker"
            )
        value = deserialize(blob, self.resolve)
        broadcast = Broadcast(value)
        broadcast.id = broadcast_id
        self._broadcast_objects[broadcast_id] = broadcast
        return broadcast

    # -- per-task lifecycle --------------------------------------------------

    def begin_task(self, task_id: int, meta: dict) -> None:
        """Reset per-task state (metrics, tracer, accumulator terms)."""
        self._current_task = task_id
        self.metrics.reset()
        self._acc_terms = {}
        self.tracer = Tracer() if meta.get("tracing") else NULL_TRACER
        chaos = meta.get("chaos")
        self.fault_injector = (
            WorkerFaultInjector(chaos, meta.get("attempt", 1))
            if chaos is not None
            else None
        )

    # -- shuffle-fetch plumbing ----------------------------------------------

    def request_blocks(self, shuffle_id: int, reduce_split: int):
        """Fetch one reduce split's shuffle blocks from the driver."""
        self._conn.send(("fetch", self._current_task, shuffle_id, reduce_split))
        while True:
            msg = self._conn.recv()
            kind = msg[0]
            if kind == "blocks" and msg[1] == shuffle_id and msg[2] == reduce_split:
                return msg[3], msg[4]
            if kind == "blocks_error" and msg[1] == shuffle_id and msg[2] == reduce_split:
                raise RuntimeError(
                    f"shuffle {shuffle_id} fetch of partition {reduce_split} "
                    f"failed on the driver: {msg[3]}"
                )
            if self._oob is not None:
                self._oob(msg)


def _run_task(ctx: WorkerContext, payloads: dict[int, bytes], conn, msg) -> None:
    _kind, task_id, payload_id, split, meta = msg
    conn.send(("started", task_id))
    ctx.begin_task(task_id, meta)
    out: dict[str, Any] = {}
    ok = False
    span = None
    try:
        blob = payloads.get(payload_id)
        if blob is None:
            raise RuntimeError(f"task payload {payload_id} missing on worker")
        rdd, fn = deserialize(blob, ctx.resolve)
        if ctx.fault_injector is not None:
            ctx.fault_injector.check("task.compute", key=(rdd.id, split))
        if ctx.tracer.enabled:
            with ctx.tracer.span("task", kind="task", split=split) as span:
                counted = _CountingIterator(rdd.iterator(split))
                try:
                    out["value"] = fn(counted)
                finally:
                    span.attrs["records_in"] = counted.count
        else:
            out["value"] = fn(rdd.iterator(split))
        ok = True
    except BaseException as exc:
        if span is not None:
            span.note_failure(f"{type(exc).__name__}: {exc}")
        out["error"] = exc
        out["traceback"] = traceback.format_exc()
    delta = {
        name: value
        for name, value in ctx.metrics.snapshot().items()
        if value and name in WORKER_METRICS
    }
    if delta:
        out["metrics"] = delta
    if ctx._acc_terms:
        out["accumulators"] = {
            aid: terms for aid, terms in ctx._acc_terms.items() if terms
        }
    if ctx.fault_injector is not None:
        out["chaos"] = ctx.fault_injector.stats()
    if span is not None:
        # Worker clocks have their own perf_counter epoch: rebase the
        # span subtree to task-relative time; the driver shifts it onto
        # its own clock when re-parenting under the job span.
        span.attrs.update(ctx.tracer.root.attrs)
        out["span"] = shift_spans(span, -span.start)
    try:
        conn.send(("done", task_id, ok, out))
    except Exception as exc:  # result (or error) not picklable
        fallback = {
            "error": TaskSerializationError(
                f"task result for split {split} could not be shipped back: "
                f"{type(exc).__name__}: {exc}"
            ),
            "traceback": out.get("traceback", ""),
        }
        if "chaos" in out:
            fallback["chaos"] = out["chaos"]
        if "metrics" in out:
            fallback["metrics"] = out["metrics"]
        conn.send(("done", task_id, False, fallback))


def worker_main(worker_id: int, conn, config: dict) -> None:
    """Process entry point: serve tasks until told to stop (or killed)."""
    ctx = WorkerContext(conn, config)
    payloads: dict[int, bytes] = {}

    def handle_oob(msg: tuple) -> None:
        if msg[0] == "drop":
            payloads.pop(msg[1], None)
        elif msg[0] == "broadcast":
            ctx.store_broadcast(msg[1], msg[2])
        elif msg[0] == "payload":
            payloads[msg[1]] = msg[2]

    ctx._oob = handle_oob
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # the driver went away; die quietly
            kind = msg[0]
            if kind == "task":
                _run_task(ctx, payloads, conn, msg)
            elif kind == "stop":
                return
            else:
                handle_oob(msg)
    except KeyboardInterrupt:
        return
