"""Task serialization for the process-pool executor.

The threads executor shares one address space, so a task is just a
Python callable.  The processes executor must *ship* each task -- the
target RDD's lineage plus the partition function -- to a worker
process, and almost every closure in the engine is a lambda or a local
function that the stdlib pickler refuses.  This module implements the
shipping format:

- **Dynamic functions** (lambdas, ``<locals>`` closures, ``__main__``
  functions) are serialized *by value*: the code object via
  :mod:`marshal`, the closure cell contents, the referenced globals
  (filtered to the names the code actually uses, including nested code
  objects) and the defaults.  Importable module-level functions keep
  pickling by reference, so engine code stays cheap to ship.
  Reconstruction is two-phase (skeleton function first, state applied
  after memoization) so recursive closures and self-referential
  globals round-trip.
- **Driver-resident objects** are replaced with persistent ids instead
  of being copied: the :class:`~repro.spark.context.SparkContext`
  itself (resolved to the worker's task context), :class:`Broadcast`
  (resolved against the worker's once-per-process broadcast store),
  :class:`Accumulator` (resolved to a delta-recording shim whose adds
  ship home with the task result) and tracers/injectors (resolved to
  the worker's per-task instances).
- **Shuffle boundaries** cut the lineage: a :class:`ShuffledRDD` is
  reduced to a shell carrying only its shuffle id and reduce-side
  state.  Its map-side parent lineage never ships -- workers fetch
  reduce buckets from the driver, which materializes every reachable
  shuffle *before* dispatching the job (see
  ``SparkContext._prepare_process_payload``).

The contract this encodes for operator authors: everything a task
closes over must be picklable data, an importable callable, or one of
the driver-resident types above.  Side effects on captured objects do
**not** propagate back to the driver -- use accumulators.  A task that
violates the contract fails at submit time with a typed
:class:`TaskSerializationError`, never silently.
"""

from __future__ import annotations

import builtins
import importlib
import io
import itertools
import marshal
import pickle
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.spark.accumulator import Accumulator
from repro.spark.broadcast import Broadcast
from repro.spark.rdd import ShuffledRDD


class TaskSerializationError(RuntimeError):
    """A task (or broadcast value) could not be shipped to a worker.

    Raised at job-submit time on the driver -- before any task runs --
    so an unpicklable closure fails fast with the offending object
    named instead of surfacing as an opaque per-task crash.
    """


#: Payload ids are driver-global so workers can cache deserialized
#: (rdd, fn) pairs across the tasks of one job.
_payload_ids = itertools.count(1)


@dataclass
class TaskPayload:
    """One job's serialized task, shipped once per (job, worker)."""

    payload_id: int
    data: bytes
    #: broadcast id -> serialized value; shipped once per worker *process*.
    broadcasts: dict[int, bytes] = field(default_factory=dict)
    #: accumulator id -> driver-side object, for applying shipped deltas.
    accumulators: dict[int, Accumulator] = field(default_factory=dict)
    #: Shuffle ids reachable from the lineage; the driver materializes
    #: their map outputs before dispatch.
    shuffle_ids: tuple[int, ...] = ()


class _EmptyCell:
    """Sentinel *class* marking an unfilled closure cell (classes pickle
    by reference, so identity survives the trip)."""


def _referenced_names(code: types.CodeType) -> set[str]:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


def _importable(obj: Any) -> bool:
    """True when ``module.qualname`` resolves back to *obj* exactly."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or module == "__main__" or "<" in qualname:
        return False
    try:
        target: Any = sys.modules.get(module) or importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
    except Exception:
        return False
    return target is obj


def _make_skeleton_function(
    code_bytes: bytes, name: str, qualname: str, module: str, num_cells: int
):
    code = marshal.loads(code_bytes)
    fn_globals: dict[str, Any] = {"__builtins__": builtins, "__name__": module}
    closure = (
        tuple(types.CellType() for _ in range(num_cells)) if num_cells else None
    )
    fn = types.FunctionType(code, fn_globals, name, None, closure)
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _apply_function_state(fn, state: dict) -> Any:
    fn.__globals__.update(state["globals"])
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    closure = fn.__closure__ or ()
    for cell, contents in zip(closure, state["cells"]):
        if contents is not _EmptyCell:
            cell.cell_contents = contents
    return fn


def _reduce_dynamic_function(fn: types.FunctionType):
    code = fn.__code__
    cells: list[Any] = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(cell.cell_contents)
        except ValueError:  # not yet filled (recursive def in progress)
            cells.append(_EmptyCell)
    fn_globals = {
        name: fn.__globals__[name]
        for name in _referenced_names(code)
        if name in fn.__globals__
    }
    skeleton_args = (
        marshal.dumps(code),
        fn.__name__,
        fn.__qualname__,
        fn.__module__ or "__dynamic__",
        len(cells),
    )
    # Two-phase reduce: the skeleton memoizes before the state pickles,
    # so cells/globals referring back to the function resolve cleanly.
    state = {
        "globals": fn_globals,
        "defaults": fn.__defaults__,
        "kwdefaults": fn.__kwdefaults__,
        "cells": cells,
    }
    return (
        _make_skeleton_function,
        skeleton_args,
        state,
        None,
        None,
        _apply_function_state,
    )


def _restore_shuffled_rdd(
    context, cls, rdd_id, shuffle_id, partitioner, aggregator, cached, name
):
    rdd = cls.__new__(cls)
    rdd.context = context
    rdd.id = rdd_id
    rdd.parents = ()
    rdd.partitioner = partitioner
    rdd._cached = cached
    rdd.name = name
    rdd._aggregator = aggregator
    rdd._shuffle_id = shuffle_id
    return rdd


class TaskPickler(pickle.Pickler):
    """Pickler that knows the engine's driver-resident objects.

    While dumping it *collects* what the payload depends on: the
    broadcasts and accumulators it references and the shuffle ids whose
    map outputs the driver must materialize before dispatch.
    """

    def __init__(self, file, context) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._context = context
        self.shuffle_ids: set[int] = set()
        self.broadcasts: dict[int, Broadcast] = {}
        self.accumulators: dict[int, Accumulator] = {}

    def persistent_id(self, obj):
        """Replace context/broadcast/accumulator refs with stable ids."""
        if obj is self._context:
            return ("context",)
        if isinstance(obj, Broadcast):
            self.broadcasts[obj.id] = obj
            return ("broadcast", obj.id)
        if isinstance(obj, Accumulator):
            self.accumulators[obj.id] = obj
            return ("accumulator", obj.id)
        # Tracers and injectors are per-process runtime services; a task
        # that (indirectly) references them gets the worker's own.
        from repro.obs.tracer import NullTracer, Tracer

        if isinstance(obj, (Tracer, NullTracer)):
            return ("tracer",)
        from repro.chaos.injector import FaultInjector

        if isinstance(obj, FaultInjector):
            return ("injector",)
        return None

    def reducer_override(self, obj):
        """Serialize closures by value and cut lineage at shuffles."""
        if isinstance(obj, types.FunctionType) and not _importable(obj):
            return _reduce_dynamic_function(obj)
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        if isinstance(obj, ShuffledRDD):
            # Cut the lineage at the shuffle boundary: the map side runs
            # driver-side, workers fetch buckets over their pipe.
            self.shuffle_ids.add(obj._shuffle_id)
            return (
                _restore_shuffled_rdd,
                (
                    obj.context,
                    type(obj),
                    obj.id,
                    obj._shuffle_id,
                    obj.partitioner,
                    obj._aggregator,
                    obj._cached,
                    obj.name,
                ),
            )
        return NotImplemented


class TaskUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids against a worker runtime."""

    def __init__(self, file, resolver: Callable[[tuple], Any]) -> None:
        super().__init__(file)
        self._resolver = resolver

    def persistent_load(self, pid):
        """Resolve a :meth:`TaskPickler.persistent_id` tag to the live object."""
        return self._resolver(pid)


def _dump(context, obj, what: str) -> tuple[bytes, TaskPickler]:
    buffer = io.BytesIO()
    pickler = TaskPickler(buffer, context)
    try:
        pickler.dump(obj)
    except TaskSerializationError:
        raise
    except Exception as exc:
        raise TaskSerializationError(
            f"cannot ship {what} to worker processes: "
            f"{type(exc).__name__}: {exc}.  Tasks under executor='processes' "
            "may only close over picklable data, importable callables, "
            "broadcasts and accumulators; side effects on captured objects "
            "do not propagate back (use an accumulator)."
        ) from exc
    return buffer.getvalue(), pickler


def serialize_task(context, rdd, fn) -> TaskPayload:
    """Pickle ``(rdd, fn)`` once for a whole job, with its dependencies."""
    label = f"{type(rdd).__name__}[{rdd.id}]"
    data, pickler = _dump(context, (rdd, fn), f"task for {label}")
    shuffle_ids = set(pickler.shuffle_ids)
    accumulators = dict(pickler.accumulators)
    pending = dict(pickler.broadcasts)
    blobs: dict[int, bytes] = {}
    while pending:
        bid, broadcast = pending.popitem()
        if bid in blobs:
            continue
        shipped = getattr(broadcast, "_shipped", None)
        if shipped is None:
            blob, vp = _dump(
                context, broadcast.value, f"broadcast {bid} for {label}"
            )
            shipped = (blob, set(vp.shuffle_ids), dict(vp.broadcasts), dict(vp.accumulators))
            broadcast._shipped = shipped
        blob, nested_shuffles, nested_broadcasts, nested_accumulators = shipped
        blobs[bid] = blob
        shuffle_ids |= nested_shuffles
        accumulators.update(nested_accumulators)
        for nested_id, nested in nested_broadcasts.items():
            if nested_id not in blobs:
                pending[nested_id] = nested
    return TaskPayload(
        payload_id=next(_payload_ids),
        data=data,
        broadcasts=blobs,
        accumulators=accumulators,
        shuffle_ids=tuple(sorted(shuffle_ids)),
    )


def deserialize(blob: bytes, resolver: Callable[[tuple], Any]):
    """Worker-side inverse of :func:`serialize_task` / broadcast dumps."""
    return TaskUnpickler(io.BytesIO(blob), resolver).load()
