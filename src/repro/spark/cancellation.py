"""Cooperative cancellation for the scheduler and the operators.

The gray-failure counterpart of the retry layer: retries recover tasks
that *fail fast*, but a task that hangs or straggles never raises, so
something outside the task must be able to stop it.  The primitive is
the :class:`CancelToken` -- a thread-safe, parentable flag the
scheduler threads into every task attempt:

- the scheduler creates one token per job and one child token per task
  attempt; cancelling the job token cancels every attempt under it
  (and, through attempt tokens, any nested job an attempt triggers);
- while an attempt runs, its token is installed in a thread-local task
  context (:func:`task_scope`); long loops anywhere in the engine poll
  it through a :class:`Heartbeat` (or :func:`current_token` directly)
  and raise :class:`TaskCancelledError` promptly when cancelled;
- blocking waits (retry backoff, chaos delays/hangs) go through
  :func:`cancellable_sleep` / :func:`wait_cancelled`, which wake the
  moment the token is cancelled instead of sleeping through it.

Cancellation is *cooperative*: a task stuck in code that neither polls
nor waits on its token cannot be preempted (Python threads cannot be
killed), but the scheduler still stops waiting for it -- the deadline
and speculation machinery in :mod:`repro.spark.context` records the
timeout and moves on, and the orphaned attempt's late result is
discarded.

Enforcement differs by executor backend.  Cooperative cancellation and
speculative execution are **threads-only**: they rely on tokens shared
through this module's thread-local scope, which does not cross a
process boundary.  Under ``executor="processes"`` the driver keeps a
per-attempt token for its own bookkeeping (retry classification, abort
propagation) but enforces deadlines and aborts by *killing the worker
process* and respawning it -- strictly stronger than cooperation: a
worker wedged in a C extension or a tight loop that never polls dies
anyway.  The cost is granularity (a kill takes out the whole worker,
losing its partition/broadcast caches) and the loss of in-flight
speculation, which the processes backend therefore rejects at
construction.

Tokens carry a *kind* so handlers can tell retryable deadline kills
(:data:`KIND_TIMEOUT`) from terminal aborts (:data:`KIND_ABORT`,
:data:`KIND_STOP`) and benign speculative-loser kills
(:data:`KIND_LOSER`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: The task lost to another attempt (speculation winner / job finished).
KIND_LOSER = "loser"
#: The task or job exceeded its deadline; the attempt may be retried.
KIND_TIMEOUT = "timeout"
#: The job was aborted (sibling exhausted retries, driver cancelled it).
KIND_ABORT = "abort"
#: The whole context is shutting down.
KIND_STOP = "stop"


class TaskCancelledError(RuntimeError):
    """Raised inside a task when its cancel token fires.

    Attributes
    ----------
    reason : str
        Human-readable explanation (``"task timeout after 0.5s"``, ...).
    kind : str
        One of :data:`KIND_LOSER` / :data:`KIND_TIMEOUT` /
        :data:`KIND_ABORT` / :data:`KIND_STOP`; the scheduler uses it to
        decide whether the cancellation is retryable.
    """

    def __init__(self, reason: str = "cancelled", kind: str = KIND_ABORT) -> None:
        self.reason = reason
        self.kind = kind
        super().__init__(reason)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (just the reason),
        # which would reset ``kind`` -- and the scheduler branches on it.
        return (TaskCancelledError, (self.reason, self.kind))


class CancelToken:
    """A thread-safe cancellation flag with downward propagation.

    Tokens form a tree mirroring the job tree: cancelling a token
    cancels every registered child (job -> attempts -> nested jobs), so
    one ``cancel_all_jobs()`` reaches a shuffle map side three levels
    deep.  A child created under an already-cancelled parent starts
    cancelled.  ``add_callback`` lets the scheduler's driver loop wake
    from a blocking wait when a token it watches is cancelled.
    """

    __slots__ = ("_event", "_lock", "_children", "_callbacks", "reason", "kind")

    def __init__(self, parent: "CancelToken | None" = None) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._children: list[CancelToken] = []
        self._callbacks: list[Callable[[], None]] = []
        self.reason: str = ""
        self.kind: str = KIND_ABORT
        if parent is not None:
            parent._adopt(self)

    def _adopt(self, child: "CancelToken") -> None:
        with self._lock:
            if not self._event.is_set():
                self._children.append(child)
                return
            reason, kind = self.reason, self.kind
        child.cancel(reason, kind)

    def cancel(self, reason: str = "cancelled", kind: str = KIND_ABORT) -> None:
        """Cancel this token and every child; idempotent (first call wins)."""
        with self._lock:
            if self._event.is_set():
                return
            self.reason = reason
            self.kind = kind
            self._event.set()
            children, self._children = self._children, []
            callbacks, self._callbacks = self._callbacks, []
        for child in children:
            child.cancel(reason, kind)
        for callback in callbacks:
            callback()

    def add_callback(self, callback: Callable[[], None]) -> None:
        """Run *callback* on cancellation (immediately if already cancelled)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    @property
    def cancelled(self) -> bool:
        """True once the token (or an ancestor) has been cancelled."""
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`TaskCancelledError` if cancelled; else no-op."""
        if self._event.is_set():
            raise TaskCancelledError(self.reason or "cancelled", self.kind)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled or *timeout* elapses; True if cancelled."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:
        state = f"cancelled kind={self.kind}" if self.cancelled else "live"
        return f"CancelToken({state})"


# -- the thread-local task context ------------------------------------------

_current = threading.local()


def current_token() -> CancelToken | None:
    """The cancel token of the task running on this thread, if any."""
    return getattr(_current, "token", None)


@contextmanager
def task_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Install *token* as this thread's task context for the block.

    The scheduler wraps every task attempt in one of these; everything
    the attempt calls -- operators, the shuffle map side, chaos hooks --
    reaches the same token through :func:`current_token` without any
    parameter threading.
    """
    previous = getattr(_current, "token", None)
    _current.token = token
    try:
        yield token
    finally:
        _current.token = previous


class Heartbeat:
    """A cheap periodic cancellation poll for long loops.

    ``beat()`` costs an increment and a branch; every ``every``-th call
    (power of two) it checks the current task's token and raises
    :class:`TaskCancelledError` if the task was cancelled.  Loops that
    may run for seconds -- nested-loop joins, DBSCAN expansion, index
    bulk-loads, shuffle bucketing -- call it once per iteration so
    cancellation latency is bounded by a few hundred iterations, not by
    the loop's total runtime.  Outside any task (no token installed)
    every beat is a no-op.
    """

    __slots__ = ("_token", "_mask", "_count")

    def __init__(self, every: int = 256) -> None:
        if every < 1 or every & (every - 1):
            raise ValueError(f"every must be a positive power of two, got {every}")
        self._token = current_token()
        self._mask = every - 1
        self._count = 0

    def beat(self) -> None:
        """Tick once; every 2**k ticks, poll the token and maybe raise."""
        self._count += 1
        if self._token is not None and not (self._count & self._mask):
            self._token.check()


def cancellable_sleep(seconds: float, token: CancelToken | None = None) -> None:
    """Sleep, but wake and raise the moment the task is cancelled.

    The replacement for ``time.sleep`` anywhere inside the execution
    stack (retry backoff, chaos delay faults): a plain sleep would make
    a cancelled task linger for the full duration.
    """
    if token is None:
        token = current_token()
    if token is None:
        time.sleep(seconds)
        return
    if token.wait(seconds):
        token.check()


def wait_cancelled(limit: float, token: CancelToken | None = None) -> None:
    """Block until the task is cancelled (then raise), up to *limit* seconds.

    The implementation of an injected *hang*: the task stalls
    indefinitely from the scheduler's point of view, but remains
    cooperatively cancellable -- a deadline, a speculation loss or a
    ``cancel_all_jobs()`` wakes it immediately.  The hard *limit* is a
    backstop so a hang injected into a run with no deadlines configured
    eventually returns instead of wedging the process; callers treat
    hitting the limit as the hang "ending".
    """
    if token is None:
        token = current_token()
    if token is None:
        time.sleep(limit)
        return
    if token.wait(limit):
        token.check()
