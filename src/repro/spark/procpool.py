"""A kill-capable pool of spawned worker processes.

``concurrent.futures.ProcessPoolExecutor`` cannot kill one hung worker
without declaring the whole pool broken, and its shared result queue
can be corrupted by a mid-write death.  The scheduler's deadline and
abort machinery needs exactly that -- terminate *one* overdue worker,
synthesize the attempt's outcome, respawn, keep going -- so this module
implements a small pool with:

- one **duplex pipe per worker** (a kill can only ever lose that
  worker's in-flight message, never another's);
- a single **receiver thread** multiplexing all worker pipes with
  :func:`multiprocessing.connection.wait`, dispatching ``started`` /
  ``done`` callbacks and serving shuffle-block fetches;
- :meth:`ProcessPool.kill`: unqueue a pending task or terminate +
  respawn a running worker, synthesizing exactly one outcome per task
  (a ``finished`` flag arbitrates against a racing ``done``);
- **soft split affinity**: an idle worker whose index matches
  ``split % size`` is preferred, so re-runs of a persisted partition
  land on the worker that already cached it;
- per-worker **payload/broadcast dedup**: a job's task bytes ship once
  per (job, worker), a broadcast's bytes once per worker ever.

Workers start via the ``spawn`` method by default: the driver runs
scheduler threads, and ``fork`` would snapshot locks mid-flight.
``REPRO_PROC_START_METHOD`` overrides for experiments.  Workers are
daemonic -- a dying driver takes its pool with it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.spark.worker import worker_main


class WorkerCrashedError(RuntimeError):
    """A worker process died without delivering its task's outcome.

    Retryable: the scheduler treats it like any task failure and
    re-runs the attempt from lineage on a fresh worker.
    """


class _Worker:
    __slots__ = (
        "id", "process", "conn", "send_lock", "current",
        "payload_ids", "broadcast_ids", "retired",
    )

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.current: "_Task | None" = None
        self.payload_ids: set[int] = set()
        self.broadcast_ids: set[int] = set()
        #: Set (under the pool lock) the moment the pool gives up on
        #: this worker; arbitrates kill vs. EOF so death is handled once.
        self.retired = False


class _Task:
    """One submitted task attempt; doubles as the caller's handle."""

    __slots__ = (
        "task_id", "payload", "split", "meta",
        "on_start", "on_outcome", "worker", "finished",
    )

    def __init__(self, task_id, payload, split, meta, on_start, on_outcome) -> None:
        self.task_id = task_id
        self.payload = payload
        self.split = split
        self.meta = meta
        self.on_start = on_start
        self.on_outcome = on_outcome
        self.worker: _Worker | None = None
        #: Exactly-one-outcome flag, flipped under the pool lock by
        #: whichever of {done message, kill, worker death} gets there first.
        self.finished = False


class ProcessPool:
    """See the module docstring.  All public methods are thread-safe."""

    def __init__(
        self,
        size: int,
        config: dict,
        serve_blocks: Callable[[int, int], tuple[bool, list]],
        name: str = "repro",
    ) -> None:
        method = os.environ.get("REPRO_PROC_START_METHOD", "spawn")
        self._mp = multiprocessing.get_context(method)
        self._size = size
        self._config = config
        self._serve_blocks = serve_blocks
        self._name = name
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._graveyard: list = []  # conns of retired workers, closed by the receiver
        self._pending: deque[_Task] = deque()
        self._tasks: dict[int, _Task] = {}
        self._task_ids = itertools.count(1)
        self._stopped = False
        for worker_id in range(size):
            self._workers.append(self._spawn(worker_id))
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"{name}-pool-recv", daemon=True
        )
        self._receiver.start()

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(worker_id, child_conn, self._config),
            name=f"{self._name}-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # our copy; lets EOF surface when the child dies
        return _Worker(worker_id, process, parent_conn)

    def _retire_locked(self, worker: _Worker) -> "_Worker":
        """Replace *worker* with a fresh process (pool lock held)."""
        worker.retired = True
        self._graveyard.append(worker.conn)
        replacement = self._spawn(worker.id)
        self._workers[self._workers.index(worker)] = replacement
        return replacement

    # -- submission ----------------------------------------------------------

    def submit(self, payload, split: int, meta: dict, on_start, on_outcome) -> _Task:
        """Queue one task attempt; callbacks fire from the receiver thread."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("process pool is shut down")
            task = _Task(
                next(self._task_ids), payload, split, meta, on_start, on_outcome
            )
            self._tasks[task.task_id] = task
            worker = self._pick_idle(split)
            if worker is None:
                self._pending.append(task)
                return task
            worker.current = task
            task.worker = worker
        self._transmit(worker, task)
        return task

    def _pick_idle(self, split: int) -> _Worker | None:
        preferred = self._workers[split % self._size]
        if preferred.current is None and not preferred.retired:
            return preferred
        for worker in self._workers:
            if worker.current is None and not worker.retired:
                return worker
        return None

    def _transmit(self, worker: _Worker, task: _Task) -> None:
        payload = task.payload
        try:
            with worker.send_lock:
                for bid, blob in payload.broadcasts.items():
                    if bid not in worker.broadcast_ids:
                        worker.conn.send(("broadcast", bid, blob))
                        worker.broadcast_ids.add(bid)
                if payload.payload_id not in worker.payload_ids:
                    worker.conn.send(("payload", payload.payload_id, payload.data))
                    worker.payload_ids.add(payload.payload_id)
                worker.conn.send(
                    ("task", task.task_id, payload.payload_id, task.split, task.meta)
                )
        except (OSError, ValueError, BrokenPipeError):
            self._worker_died(worker)

    # -- the receiver --------------------------------------------------------

    def _receive_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopped:
                    return
                while self._graveyard:
                    try:
                        self._graveyard.pop().close()
                    except OSError:
                        pass
                live = {w.conn: w for w in self._workers if not w.retired}
            if not live:
                time.sleep(0.05)
                continue
            try:
                ready = multiprocessing.connection.wait(list(live), timeout=0.1)
            except OSError:
                continue  # a conn closed under us (shutdown/kill race)
            for conn in ready:
                worker = live[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._worker_died(worker)
                    continue
                try:
                    self._dispatch(worker, msg)
                except Exception:
                    # A callback blew up; don't take the receiver down.
                    pass

    def _dispatch(self, worker: _Worker, msg: tuple) -> None:
        kind = msg[0]
        if kind == "started":
            task = self._tasks.get(msg[1])
            if task is not None and not task.finished:
                task.on_start()
            return
        if kind == "fetch":
            _, _task_id, shuffle_id, reduce_split = msg
            try:
                serialized, chunks = self._serve_blocks(shuffle_id, reduce_split)
                reply = ("blocks", shuffle_id, reduce_split, serialized, chunks)
            except Exception as exc:
                reply = ("blocks_error", shuffle_id, reduce_split, repr(exc))
            try:
                with worker.send_lock:
                    worker.conn.send(reply)
            except (OSError, ValueError, BrokenPipeError):
                self._worker_died(worker)
            return
        if kind == "done":
            _, task_id, ok, out = msg
            with self._lock:
                task = self._tasks.pop(task_id, None)
                if task is None or task.finished:
                    return
                task.finished = True
                worker.current = None
                follow_up = self._assign_pending_locked(worker)
            task.on_outcome(ok, out)
            if follow_up is not None:
                self._transmit(worker, follow_up)

    def _assign_pending_locked(self, worker: _Worker) -> _Task | None:
        if worker.retired or worker.current is not None or not self._pending:
            return None
        task = self._pending.popleft()
        worker.current = task
        task.worker = worker
        return task

    def _worker_died(self, worker: _Worker) -> None:
        with self._lock:
            if worker.retired or self._stopped:
                return
            task = worker.current
            worker.current = None
            replacement = self._retire_locked(worker)
            if task is not None:
                self._tasks.pop(task.task_id, None)
                if task.finished:
                    task = None
                else:
                    task.finished = True
            follow_up = self._assign_pending_locked(replacement)
        if task is not None:
            task.on_outcome(
                False,
                WorkerCrashedError(
                    f"worker {worker.id} (pid {worker.process.pid}) died while "
                    f"running split {task.split}"
                ),
            )
        if follow_up is not None:
            self._transmit(replacement, follow_up)

    # -- enforcement ---------------------------------------------------------

    def kill(self, task: _Task, error: BaseException) -> None:
        """Stop a task attempt *now*: unqueue it, or shoot its worker.

        The synthesized outcome is ``(False, error)``; a concurrently
        arriving ``done`` loses the ``finished`` race and is dropped.
        The killed worker's replacement inherits nothing -- payload and
        broadcast bytes re-ship on next use; its partition cache is
        lost, which is exactly the recompute-from-lineage contract.
        """
        process = None
        follow_up = None
        replacement = None
        with self._lock:
            if task.finished:
                return
            task.finished = True
            self._tasks.pop(task.task_id, None)
            if task.worker is None:
                try:
                    self._pending.remove(task)
                except ValueError:
                    pass
            else:
                worker = task.worker
                worker.current = None
                process = worker.process
                replacement = self._retire_locked(worker)
                follow_up = self._assign_pending_locked(replacement)
        if process is not None:
            process.terminate()
        task.on_outcome(False, error)
        if follow_up is not None and replacement is not None:
            self._transmit(replacement, follow_up)

    def release_payload(self, payload_id: int) -> None:
        """Tell every worker holding a job's payload bytes to drop them."""
        with self._lock:
            holders = [
                w
                for w in self._workers
                if not w.retired and payload_id in w.payload_ids
            ]
            for worker in holders:
                worker.payload_ids.discard(payload_id)
        for worker in holders:
            try:
                with worker.send_lock:
                    worker.conn.send(("drop", payload_id))
            except (OSError, ValueError, BrokenPipeError):
                pass

    # -- shutdown ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and release their queues (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            workers = list(self._workers)
            self._workers = []
            self._pending.clear()
            self._tasks.clear()
        for worker in workers:
            try:
                with worker.send_lock:
                    worker.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.terminate()
            try:
                worker.conn.close()
            except OSError:
                pass
