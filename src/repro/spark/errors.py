"""Typed execution errors for the fault-tolerant scheduler.

The scheduler retries failed tasks (``SparkContext.max_task_failures``
attempts per task, recomputing from lineage each time).  Every failed
attempt is described by a :class:`TaskError`; when a task exhausts its
attempts the whole job aborts with a :class:`JobAbortedError` that
names the rdd, the split and the root cause -- the reproduction of
Spark's ``SparkException: Job aborted due to stage failure``.
"""

from __future__ import annotations


class TaskError(RuntimeError):
    """One failed task attempt, with full scheduling context.

    Attributes
    ----------
    rdd : str
        Label of the target RDD, e.g. ``"MapPartitionsRDD[12]"``.
    split : int
        The partition the task was computing.
    attempt : int
        1-based attempt number that failed.
    cause : BaseException
        The exception the task raised.
    """

    def __init__(self, rdd: str, split: int, attempt: int, cause: BaseException) -> None:
        self.rdd = rdd
        self.split = split
        self.attempt = attempt
        self.cause = cause
        super().__init__(
            f"task for {rdd} split {split} failed (attempt {attempt}): "
            f"{type(cause).__name__}: {cause}"
        )


class TaskTimeoutError(TaskError):
    """A task attempt exceeded its deadline and was cancelled.

    Recorded by the watchdog side of the scheduler when ``task_timeout``
    (or ``job_timeout``, with ``scope="job"``) expires: the attempt's
    cancel token is fired, the overdue attempt is abandoned, and this
    typed failure joins the task's failure list.  Like any other
    failure it consumes one attempt of the task's retry budget, so a
    task that *keeps* timing out aborts the job with these in
    ``JobAbortedError.failures``.

    Attributes
    ----------
    timeout : float
        The deadline that expired, in seconds.
    scope : str
        ``"task"`` for a per-task deadline, ``"job"`` for a whole-job one.
    """

    def __init__(
        self,
        rdd: str,
        split: int,
        attempt: int,
        timeout: float,
        scope: str = "task",
    ) -> None:
        self.timeout = timeout
        self.scope = scope
        cause = RuntimeError(
            f"{scope} deadline of {timeout:g}s exceeded; attempt cancelled"
        )
        super().__init__(rdd, split, attempt, cause)


class JobAbortedError(RuntimeError):
    """A job gave up on a task after ``max_task_failures`` attempts.

    Not retried by enclosing jobs: when a nested job (e.g. a shuffle map
    side) aborts, the abort propagates straight to the driver instead of
    multiplying retries at every nesting level.

    Attributes
    ----------
    rdd : str
        Label of the RDD whose task kept failing.
    split : int
        The offending partition.
    attempts : int
        How many attempts were made before giving up.
    cause : BaseException
        The root cause -- the exception of the final attempt.
    failures : tuple[TaskError, ...]
        The per-attempt failure records, oldest first.
    """

    def __init__(
        self,
        rdd: str,
        split: int,
        attempts: int,
        cause: BaseException,
        failures: tuple = (),
    ) -> None:
        self.rdd = rdd
        self.split = split
        self.attempts = attempts
        self.cause = cause
        self.failures = tuple(failures)
        super().__init__(
            f"job aborted: task for {rdd} split {split} failed {attempts} "
            f"time{'s' if attempts != 1 else ''}; root cause: "
            f"{type(cause).__name__}: {cause}"
        )
