"""Accumulators: write-only shared counters for tasks."""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A thread-safe aggregation variable.

    Tasks call :meth:`add`; only the driver reads :attr:`value`.  The
    default combine operation is ``+``.
    """

    def __init__(self, initial: T, op: Callable[[T, T], T] | None = None) -> None:
        self._value = initial
        self._op = op or (lambda a, b: a + b)  # type: ignore[operator]
        self._lock = threading.Lock()

    def add(self, term: T) -> None:
        with self._lock:
            self._value = self._op(self._value, term)

    def __iadd__(self, term: T) -> "Accumulator[T]":
        self.add(term)
        return self

    @property
    def value(self) -> T:
        return self._value

    def __repr__(self) -> str:
        return f"Accumulator({self._value!r})"
