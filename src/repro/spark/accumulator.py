"""Accumulators: write-only shared counters for tasks."""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")

_accumulator_ids = itertools.count(1)


class Accumulator(Generic[T]):
    """A thread-safe aggregation variable.

    Tasks call :meth:`add`; only the driver reads :attr:`value`.  The
    default combine operation is ``+``.

    Under the processes executor tasks see a worker-side shim keyed by
    :attr:`id`; its recorded terms ship home with the task result and
    are replayed through :meth:`add` on this driver-side object, but
    only for attempts whose result the scheduler accepted -- a killed
    or superseded attempt contributes nothing.
    """

    def __init__(self, initial: T, op: Callable[[T, T], T] | None = None) -> None:
        self.id = next(_accumulator_ids)
        self._value = initial
        self._op = op or (lambda a, b: a + b)  # type: ignore[operator]
        self._lock = threading.Lock()

    def add(self, term: T) -> None:
        """Fold *term* into the running value (thread-safe)."""
        with self._lock:
            self._value = self._op(self._value, term)

    def __iadd__(self, term: T) -> "Accumulator[T]":
        self.add(term)
        return self

    @property
    def value(self) -> T:
        """The current accumulated value (read on the driver)."""
        return self._value

    def __repr__(self) -> str:
        return f"Accumulator({self._value!r})"
