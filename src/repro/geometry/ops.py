"""Constructive geometry operations.

Beyond the predicates, STARK's JTS dependency provides constructive
operations its users reach for in pre-/post-processing.  This module
implements the ones the examples and the Piglet builtins expose:

- :func:`clip_to_envelope` -- Sutherland-Hodgman clipping of a polygon
  (or the envelope-crop of other geometries) against a rectangle; used
  to crop results to a viewport,
- :func:`simplify` -- Douglas-Peucker polyline/polygon simplification,
- :func:`convex_hull_of` -- the convex hull of any geometry,
- :func:`translate`, :func:`scale`, :func:`rotate` -- affine
  transforms.

All functions return new geometries; inputs are never mutated.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.geometry import algorithms
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

Coord = tuple[float, float]


# ---------------------------------------------------------------------------
# clipping
# ---------------------------------------------------------------------------


def _clip_ring_to_envelope(ring: Sequence[Coord], env: Envelope) -> list[Coord]:
    """Sutherland-Hodgman: clip a closed ring against a rectangle.

    Returns an open coordinate list (no repeated first point); empty
    when the ring lies fully outside.
    """
    # Each clip edge is (inside-test, intersection-solver).
    def clip_edge(
        coords: list[Coord],
        inside: Callable[[Coord], bool],
        intersect: Callable[[Coord, Coord], Coord],
    ) -> list[Coord]:
        out: list[Coord] = []
        if not coords:
            return out
        prev = coords[-1]
        prev_inside = inside(prev)
        for current in coords:
            current_inside = inside(current)
            if current_inside:
                if not prev_inside:
                    out.append(intersect(prev, current))
                out.append(current)
            elif prev_inside:
                out.append(intersect(prev, current))
            prev, prev_inside = current, current_inside
        return out

    def x_cross(a: Coord, b: Coord, x: float) -> Coord:
        t = (x - a[0]) / (b[0] - a[0])
        return (x, a[1] + t * (b[1] - a[1]))

    def y_cross(a: Coord, b: Coord, y: float) -> Coord:
        t = (y - a[1]) / (b[1] - a[1])
        return (a[0] + t * (b[0] - a[0]), y)

    coords = list(ring[:-1]) if ring and ring[0] == ring[-1] else list(ring)
    coords = clip_edge(coords, lambda p: p[0] >= env.min_x, lambda a, b: x_cross(a, b, env.min_x))
    coords = clip_edge(coords, lambda p: p[0] <= env.max_x, lambda a, b: x_cross(a, b, env.max_x))
    coords = clip_edge(coords, lambda p: p[1] >= env.min_y, lambda a, b: y_cross(a, b, env.min_y))
    coords = clip_edge(coords, lambda p: p[1] <= env.max_y, lambda a, b: y_cross(a, b, env.max_y))
    # Drop consecutive duplicates the clipping may introduce.
    deduped: list[Coord] = []
    for c in coords:
        if not deduped or not (
            math.isclose(c[0], deduped[-1][0], abs_tol=1e-12)
            and math.isclose(c[1], deduped[-1][1], abs_tol=1e-12)
        ):
            deduped.append(c)
    return deduped


def clip_to_envelope(geom: Geometry, env: Envelope) -> Geometry:
    """Clip *geom* to a rectangle.

    Polygons are clipped exactly (Sutherland-Hodgman per ring; holes
    are clipped and re-attached when they survive).  Points and
    multipoints are filtered.  Line strings are split into the segments
    inside the window (segment-box clipping).  Returns an empty
    geometry of the input's type when nothing survives.
    """
    if env.is_empty or geom.is_empty:
        return _empty_like(geom)
    if isinstance(geom, Point):
        return geom if env.contains_point(geom.x, geom.y) else Point()
    if isinstance(geom, MultiPoint):
        kept = [p for p in geom.geoms if env.contains_point(p.x, p.y)]
        return MultiPoint(kept)
    if isinstance(geom, Polygon):
        shell = _clip_ring_to_envelope(geom.shell.coords, env)
        if not _ring_is_usable(shell):
            # Nothing or only a degenerate sliver (an edge/corner touch)
            # survives: the clipped polygon is empty.
            return Polygon()
        holes = []
        for hole in geom.holes:
            clipped = _clip_ring_to_envelope(hole.coords, env)
            if _ring_is_usable(clipped):
                holes.append(clipped)
        return Polygon(shell, holes)
    if isinstance(geom, LineString):
        return _clip_linestring(geom, env)
    if isinstance(geom, MultiPolygon):
        kept = [clip_to_envelope(p, env) for p in geom.geoms]
        return MultiPolygon([p for p in kept if not p.is_empty])
    if isinstance(geom, MultiLineString):
        parts = []
        for ls in geom.geoms:
            clipped = _clip_linestring(ls, env)
            if isinstance(clipped, MultiLineString):
                parts.extend(clipped.geoms)
            elif not clipped.is_empty:
                parts.append(clipped)
        return MultiLineString(parts)
    if isinstance(geom, GeometryCollection):
        kept = [clip_to_envelope(g, env) for g in geom.geoms]
        return GeometryCollection([g for g in kept if not g.is_empty])
    raise TypeError(f"cannot clip {type(geom).__name__}")


def _clip_segment(a: Coord, b: Coord, env: Envelope) -> tuple[Coord, Coord] | None:
    """Liang-Barsky segment clipping; None when fully outside."""
    t0, t1 = 0.0, 1.0
    dx, dy = b[0] - a[0], b[1] - a[1]
    for p, q in (
        (-dx, a[0] - env.min_x),
        (dx, env.max_x - a[0]),
        (-dy, a[1] - env.min_y),
        (dy, env.max_y - a[1]),
    ):
        if p == 0:
            if q < 0:
                return None
            continue
        r = q / p
        if p < 0:
            if r > t1:
                return None
            t0 = max(t0, r)
        else:
            if r < t0:
                return None
            t1 = min(t1, r)
    return (
        (a[0] + t0 * dx, a[1] + t0 * dy),
        (a[0] + t1 * dx, a[1] + t1 * dy),
    )


def _clip_linestring(line: LineString, env: Envelope) -> Geometry:
    runs: list[list[Coord]] = []
    current: list[Coord] = []
    for a, b in line.segments():
        clipped = _clip_segment(a, b, env)
        if clipped is None:
            if len(current) >= 2:
                runs.append(current)
            current = []
            continue
        start, end = clipped
        if current and math.isclose(current[-1][0], start[0], abs_tol=1e-12) and math.isclose(
            current[-1][1], start[1], abs_tol=1e-12
        ):
            current.append(end)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = [start, end]
    if len(current) >= 2:
        runs.append(current)
    if not runs:
        return LineString()
    if len(runs) == 1:
        return LineString(runs[0])
    return MultiLineString([LineString(run) for run in runs])


def _ring_is_usable(coords: list[Coord]) -> bool:
    """True when the open coordinate list forms a ring with real area."""
    distinct = set(coords)
    if len(distinct) < 3:
        return False
    closed = coords + [coords[0]]
    return abs(algorithms.ring_signed_area(closed)) > 1e-12


def _empty_like(geom: Geometry) -> Geometry:
    return type(geom)()  # every geometry type supports the empty constructor


# ---------------------------------------------------------------------------
# simplification
# ---------------------------------------------------------------------------


def _douglas_peucker(coords: Sequence[Coord], tolerance: float) -> list[Coord]:
    if len(coords) <= 2:
        return list(coords)
    first, last = coords[0], coords[-1]
    worst_index, worst_distance = 0, -1.0
    for i in range(1, len(coords) - 1):
        d = algorithms.point_segment_distance(coords[i], first, last)
        if d > worst_distance:
            worst_index, worst_distance = i, d
    if worst_distance <= tolerance:
        return [first, last]
    left = _douglas_peucker(coords[: worst_index + 1], tolerance)
    right = _douglas_peucker(coords[worst_index:], tolerance)
    return left[:-1] + right


def simplify(geom: Geometry, tolerance: float) -> Geometry:
    """Douglas-Peucker simplification with the given distance tolerance.

    Rings keep at least 3 distinct vertices (a polygon never collapses
    below a triangle); points pass through unchanged.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if isinstance(geom, (Point, MultiPoint)) or geom.is_empty:
        return geom
    if isinstance(geom, Polygon):
        return Polygon(
            _simplify_ring(geom.shell.coords, tolerance),
            [
                simplified
                for hole in geom.holes
                if len(simplified := _simplify_ring(hole.coords, tolerance)) >= 3
            ],
        )
    if isinstance(geom, LineString):
        return LineString(_douglas_peucker(geom.coords, tolerance))
    if isinstance(geom, MultiLineString):
        return MultiLineString([simplify(ls, tolerance) for ls in geom.geoms])
    if isinstance(geom, MultiPolygon):
        return MultiPolygon([simplify(p, tolerance) for p in geom.geoms])
    if isinstance(geom, GeometryCollection):
        return GeometryCollection([simplify(g, tolerance) for g in geom.geoms])
    raise TypeError(f"cannot simplify {type(geom).__name__}")


def _simplify_ring(coords: Sequence[Coord], tolerance: float) -> list[Coord]:
    open_coords = list(coords[:-1])
    if len(open_coords) <= 3:
        return open_coords
    # Simplify as a closed chain: anchor at vertex 0, include the
    # closing point so the wrap-around edge participates.
    simplified = _douglas_peucker(open_coords + [open_coords[0]], tolerance)[:-1]
    if len(simplified) < 3:
        # Fall back to the three most mutually distant original
        # vertices: never collapse a polygon completely.
        return open_coords[:3]
    return simplified


# ---------------------------------------------------------------------------
# hull & transforms
# ---------------------------------------------------------------------------


def convex_hull_of(geom: Geometry) -> Geometry:
    """The convex hull: a polygon, a segment, or the point itself."""
    coords = geom.coordinates()
    if not coords:
        return _empty_like(geom)
    hull = algorithms.convex_hull(coords)
    if len(hull) >= 3:
        return Polygon(hull)
    if len(hull) == 2:
        return LineString(hull)
    return Point(*hull[0])


def transform(geom: Geometry, fn: Callable[[float, float], Coord]) -> Geometry:
    """Apply a coordinate mapping to every vertex."""
    if isinstance(geom, Point):
        return Point(*fn(geom.x, geom.y)) if not geom.is_empty else geom
    if isinstance(geom, LinearRing):
        return LinearRing([fn(x, y) for x, y in geom.coords])
    if isinstance(geom, LineString):
        return LineString([fn(x, y) for x, y in geom.coords])
    if isinstance(geom, Polygon):
        if geom.is_empty:
            return geom
        return Polygon(
            [fn(x, y) for x, y in geom.shell.coords],
            [[fn(x, y) for x, y in hole.coords] for hole in geom.holes],
        )
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return type(geom)([transform(g, fn) for g in geom.geoms])
    raise TypeError(f"cannot transform {type(geom).__name__}")


def translate(geom: Geometry, dx: float, dy: float) -> Geometry:
    """Shift by (dx, dy)."""
    return transform(geom, lambda x, y: (x + dx, y + dy))


def scale(
    geom: Geometry, factor_x: float, factor_y: float | None = None,
    origin: Coord = (0.0, 0.0),
) -> Geometry:
    """Scale about *origin* (uniform when factor_y is omitted)."""
    fy = factor_x if factor_y is None else factor_y
    ox, oy = origin
    return transform(
        geom, lambda x, y: (ox + (x - ox) * factor_x, oy + (y - oy) * fy)
    )


def rotate(geom: Geometry, radians: float, origin: Coord = (0.0, 0.0)) -> Geometry:
    """Rotate counter-clockwise about *origin*."""
    cos_a, sin_a = math.cos(radians), math.sin(radians)
    ox, oy = origin

    def fn(x: float, y: float) -> Coord:
        rx, ry = x - ox, y - oy
        return (ox + rx * cos_a - ry * sin_a, oy + rx * sin_a + ry * cos_a)

    return transform(geom, fn)
