"""Extended JTS predicates: touches, overlaps, crosses.

These complete the DE-9IM-derived predicate family for the pairs that
occur in spatio-temporal analytics.  Definitions (per OGC/JTS):

- ``touches``  -- the geometries intersect, but their *interiors* do
  not: contact happens only along boundaries.
- ``overlaps`` -- same-dimension geometries whose interiors intersect,
  where neither covers the other and the shared part has the same
  dimension (two partially-overlapping polygons; two collinear,
  partially-overlapping lines).
- ``crosses``  -- the interiors intersect but the shared part has lower
  dimension than the higher-dimensional operand (a line crossing a
  polygon; two lines meeting at interior points).

Line-in-polygon interior tests use the same vertex+midpoint sampling as
the containment predicates; exact for the straight-edge geometries this
engine represents.
"""

from __future__ import annotations

from repro.geometry import algorithms
from repro.geometry.algorithms import BOUNDARY, EXTERIOR, INTERIOR
from repro.geometry.base import Geometry
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import _BaseCollection
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import (
    _line_line_intersects,
    _sample_points,
    contains,
    covers,
    intersects,
)

Coord = tuple[float, float]


def _dimension(geom: Geometry) -> int:
    if isinstance(geom, Point):
        return 0
    if isinstance(geom, LineString):
        return 1
    if isinstance(geom, Polygon):
        return 2
    if isinstance(geom, _BaseCollection):
        members = [g for g in geom.geoms if not g.is_empty]
        return max((_dimension(g) for g in members), default=-1)
    raise TypeError(f"unknown geometry {type(geom).__name__}")


# ---------------------------------------------------------------------------
# interior-interior intersection
# ---------------------------------------------------------------------------


def _point_is_line_interior(p: Coord, line: LineString) -> bool:
    """On the line but not one of its (non-ring) endpoints."""
    on_line = any(algorithms.on_segment(p, s, e) for s, e in line.segments())
    if not on_line:
        return False
    if isinstance(line, LinearRing) or (line.coords and line.coords[0] == line.coords[-1]):
        return True  # a ring has no boundary
    return p != line.coords[0] and p != line.coords[-1]


def _segments_cross_properly(a: LineString, b: LineString) -> bool:
    """Some pair of segments shares a point interior to both."""
    for s1, e1 in a.segments():
        for s2, e2 in b.segments():
            if algorithms.orientation(s1, e1, s2) * algorithms.orientation(s1, e1, e2) < 0 and (
                algorithms.orientation(s2, e2, s1) * algorithms.orientation(s2, e2, e1) < 0
            ):
                return True
    return False


def _collinear_overlap_length(a: LineString, b: LineString) -> bool:
    """Some collinear segment pair shares more than a single point."""
    for s1, e1 in a.segments():
        for s2, e2 in b.segments():
            if algorithms.orientation(s1, e1, s2) != 0 or algorithms.orientation(s1, e1, e2) != 0:
                continue
            # project onto the dominant axis of (s1, e1)
            axis = 0 if abs(e1[0] - s1[0]) >= abs(e1[1] - s1[1]) else 1
            lo1, hi1 = sorted((s1[axis], e1[axis]))
            lo2, hi2 = sorted((s2[axis], e2[axis]))
            if min(hi1, hi2) - max(lo1, lo2) > 1e-12:
                return True
    return False


def _line_line_interiors(a: LineString, b: LineString) -> bool:
    if _segments_cross_properly(a, b):
        return True
    if _collinear_overlap_length(a, b):
        return True
    # Endpoint-free contact: a vertex of one lying in the other's
    # interior only counts if it is also interior to its own line
    # (shared endpoints and T-junctions at endpoints are boundary contact).
    for p in a.coords[1:-1]:
        if _point_is_line_interior(p, b):
            return True
    for p in b.coords[1:-1]:
        if _point_is_line_interior(p, a):
            return True
    return False


def _line_polygon_interiors(line: LineString, poly: Polygon) -> bool:
    """Does the line's interior meet the polygon's open interior?"""
    samples = _sample_points(line)
    interior_samples = [
        p for p in samples if poly.locate(p[0], p[1]) == INTERIOR
    ]
    if interior_samples:
        # a sampled point strictly inside is interior to the line too,
        # unless it is one of the line's endpoints sitting inside
        for p in interior_samples:
            if _point_is_line_interior(p, line) or poly.locate(p[0], p[1]) == INTERIOR:
                return True
    # A segment could cross the polygon between samples only by
    # properly crossing a ring, which puts interior points inside.
    for ring in poly.rings():
        if _segments_cross_properly(line, ring):
            return True
    return False


def _polygon_polygon_interiors(a: Polygon, b: Polygon) -> bool:
    for ring_a in a.rings():
        for ring_b in b.rings():
            if _segments_cross_properly(ring_a, ring_b):
                return True
    from repro.geometry.predicates import _polygon_interior_point

    probe_a = _polygon_interior_point(a)
    if probe_a is not None and b.locate(*probe_a) == INTERIOR:
        return True
    probe_b = _polygon_interior_point(b)
    return probe_b is not None and a.locate(*probe_b) == INTERIOR


def _interiors_intersect(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, _BaseCollection) or isinstance(b, _BaseCollection):
        members_a = list(a.geoms) if isinstance(a, _BaseCollection) else [a]
        members_b = list(b.geoms) if isinstance(b, _BaseCollection) else [b]
        return any(
            _interiors_intersect(ga, gb)
            for ga in members_a
            if not ga.is_empty
            for gb in members_b
            if not gb.is_empty
        )
    pair = (_dimension(a), _dimension(b))
    if pair == (0, 0):
        return a.coord == b.coord  # type: ignore[union-attr]
    if pair == (0, 1):
        return _point_is_line_interior(a.coord, b)  # type: ignore[union-attr,arg-type]
    if pair == (1, 0):
        return _point_is_line_interior(b.coord, a)  # type: ignore[union-attr,arg-type]
    if pair == (0, 2):
        return b.locate(a.x, a.y) == INTERIOR  # type: ignore[union-attr]
    if pair == (2, 0):
        return a.locate(b.x, b.y) == INTERIOR  # type: ignore[union-attr]
    if pair == (1, 1):
        return _line_line_interiors(a, b)  # type: ignore[arg-type]
    if pair == (1, 2):
        return _line_polygon_interiors(a, b)  # type: ignore[arg-type]
    if pair == (2, 1):
        return _line_polygon_interiors(b, a)  # type: ignore[arg-type]
    return _polygon_polygon_interiors(a, b)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# the predicates
# ---------------------------------------------------------------------------


def touches(a: Geometry, b: Geometry) -> bool:
    """Boundary-only contact: they intersect, their interiors do not.

    Two equal points do not touch (point interiors are the points).
    """
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    return intersects(a, b) and not _interiors_intersect(a, b)


def overlaps(a: Geometry, b: Geometry) -> bool:
    """Partial same-dimension overlap; neither side covers the other."""
    if a.is_empty or b.is_empty:
        return False
    dim_a, dim_b = _dimension(a), _dimension(b)
    if dim_a != dim_b:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    if covers(a, b) or covers(b, a):
        return False
    if dim_a == 0:
        # multipoints overlap when they share some but not all members
        coords_a = {c for c in a.coordinates()}
        coords_b = {c for c in b.coordinates()}
        shared = coords_a & coords_b
        return bool(shared) and shared != coords_a and shared != coords_b
    if dim_a == 1:
        # lines overlap only along collinear runs (a proper crossing is
        # a crosses relationship, not an overlap)
        lines_a = _lines_of(a)
        lines_b = _lines_of(b)
        return any(
            _collinear_overlap_length(la, lb) for la in lines_a for lb in lines_b
        )
    return _interiors_intersect(a, b)


def crosses(a: Geometry, b: Geometry) -> bool:
    """Interiors intersect with lower-dimensional contact.

    Supported shapes: line/line (proper interior crossing, no collinear
    overlap), line/polygon (the line has parts strictly inside and
    strictly outside), and point-set/higher-dim (some points interior,
    some disjoint).
    """
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    dim_a, dim_b = _dimension(a), _dimension(b)
    if dim_a > dim_b:
        return crosses(b, a)
    if dim_a == 0 and dim_b > 0:
        coords = a.coordinates()
        inside = sum(1 for c in coords if _coord_in_interior(c, b))
        outside = sum(1 for c in coords if not intersects(Point(*c), b))
        return inside > 0 and outside > 0
    if dim_a == 1 and dim_b == 1:
        lines_a, lines_b = _lines_of(a), _lines_of(b)
        properly = any(
            _segments_cross_properly(la, lb) for la in lines_a for lb in lines_b
        )
        collinear = any(
            _collinear_overlap_length(la, lb) for la in lines_a for lb in lines_b
        )
        return properly and not collinear
    if dim_a == 1 and dim_b == 2:
        inside = _interiors_intersect(a, b)
        outside = any(
            not covers(_polygons_as_collection(b), Point(*p))
            for line in _lines_of(a)
            for p in _sample_points(line)
        )
        return inside and outside
    return False  # equal-dimension areal crossing does not exist


def _coord_in_interior(c: Coord, geom: Geometry) -> bool:
    if isinstance(geom, Polygon):
        return geom.locate(*c) == INTERIOR
    if isinstance(geom, LineString):
        return _point_is_line_interior(c, geom)
    if isinstance(geom, _BaseCollection):
        return any(_coord_in_interior(c, g) for g in geom.geoms if not g.is_empty)
    return False


def _lines_of(geom: Geometry) -> list[LineString]:
    if isinstance(geom, LineString):
        return [geom]
    if isinstance(geom, _BaseCollection):
        out: list[LineString] = []
        for g in geom.geoms:
            out.extend(_lines_of(g))
        return out
    return []


def _polygons_as_collection(geom: Geometry) -> Geometry:
    return geom
