"""A from-scratch 2D computational geometry engine.

This package is the reproduction's substitute for the JTS library that
STARK uses on the JVM.  It provides:

- :class:`~repro.geometry.envelope.Envelope` -- axis-aligned bounding boxes,
- the geometry type hierarchy (:class:`Point`, :class:`LineString`,
  :class:`LinearRing`, :class:`Polygon`, :class:`MultiPoint`,
  :class:`MultiLineString`, :class:`MultiPolygon`,
  :class:`GeometryCollection`),
- exact binary predicates (``intersects``, ``contains``, ``within``,
  ``disjoint``, ``covers``) in :mod:`~repro.geometry.predicates`,
- distance computations and pluggable distance functions in
  :mod:`~repro.geometry.distance`,
- a WKT reader and writer in :mod:`~repro.geometry.wkt`.

All coordinates are 2D ``(x, y)`` floats.  Geometries are immutable value
objects: they hash, compare by value and can be pickled, which the engine
relies on when shuffling data between partitions.
"""

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.wkt import WKTParseError, parse_wkt, to_wkt

__all__ = [
    "Envelope",
    "Geometry",
    "GeometryCollection",
    "LineString",
    "LinearRing",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "WKTParseError",
    "parse_wkt",
    "to_wkt",
]
