"""Multi-geometries and geometry collections."""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

G = TypeVar("G", bound=Geometry)


class _BaseCollection(Geometry, Generic[G]):
    """Shared machinery of the four collection types."""

    __slots__ = ("_geoms",)

    _member_type: type | tuple[type, ...] = Geometry

    def __init__(self, geoms: Iterable[G] = ()) -> None:
        self._geoms = tuple(geoms)
        for g in self._geoms:
            if not isinstance(g, self._member_type):
                raise TypeError(
                    f"{type(self).__name__} may only contain "
                    f"{self._member_type}, got {type(g).__name__}"
                )
        env = Envelope.empty()
        for g in self._geoms:
            env = env.merge(g.envelope)
        self._envelope = env

    @property
    def geoms(self) -> tuple[G, ...]:
        return self._geoms

    @property
    def is_empty(self) -> bool:
        return not self._geoms or all(g.is_empty for g in self._geoms)

    def __len__(self) -> int:
        return len(self._geoms)

    def __iter__(self) -> Iterator[G]:
        return iter(self._geoms)

    def __getitem__(self, index: int) -> G:
        return self._geoms[index]

    def centroid(self) -> Point:
        """Unweighted mean of the member centroids.

        A size-weighted centroid would be more faithful for mixed-extent
        members, but partition assignment only needs a deterministic
        representative point inside the collection's envelope.
        """
        members = [g for g in self._geoms if not g.is_empty]
        if not members:
            return Point()
        xs, ys = [], []
        for g in members:
            c = g.centroid()
            xs.append(c.x)
            ys.append(c.y)
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))

    def coordinates(self) -> list[tuple[float, float]]:
        coords: list[tuple[float, float]] = []
        for g in self._geoms:
            coords.extend(g.coordinates())
        return coords

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._geoms == other._geoms

    def __hash__(self) -> int:
        return hash((self.geom_type, self._geoms))

    def __getstate__(self) -> tuple:
        return (self._geoms,)

    def __setstate__(self, state: tuple) -> None:
        (self._geoms,) = state
        env = Envelope.empty()
        for g in self._geoms:
            env = env.merge(g.envelope)
        self._envelope = env


class MultiPoint(_BaseCollection[Point]):
    """A set of points."""

    __slots__ = ()
    _member_type = Point

    @property
    def geom_type(self) -> str:
        return "MULTIPOINT"


class MultiLineString(_BaseCollection[LineString]):
    """A set of line strings."""

    __slots__ = ()
    _member_type = LineString

    @property
    def geom_type(self) -> str:
        return "MULTILINESTRING"


class MultiPolygon(_BaseCollection[Polygon]):
    """A set of polygons."""

    __slots__ = ()
    _member_type = Polygon

    @property
    def geom_type(self) -> str:
        return "MULTIPOLYGON"

    @property
    def area(self) -> float:
        return sum(p.area for p in self._geoms)


class GeometryCollection(_BaseCollection[Geometry]):
    """A heterogeneous collection of geometries."""

    __slots__ = ()
    _member_type = Geometry

    @property
    def geom_type(self) -> str:
        return "GEOMETRYCOLLECTION"
