"""Exact binary predicates over geometries.

The functions here implement JTS-compatible semantics for the predicate
set STARK exposes:

- :func:`intersects` -- the geometries share at least one point,
- :func:`contains`   -- ``b`` lies within ``a`` and touches ``a``'s
  interior (JTS ``contains``: a polygon does *not* contain a point that
  only lies on its boundary),
- :func:`covers`     -- like contains but boundary contact suffices,
- :func:`distance`   -- minimum Euclidean distance (0 when intersecting).

Every function starts with an envelope test so callers can pass
arbitrary geometries without pre-filtering.  Dispatch is by geometry
type pair; collections distribute over their members.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.geometry import algorithms
from repro.geometry.algorithms import BOUNDARY, EXTERIOR, INTERIOR
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import _BaseCollection
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

Coord = tuple[float, float]


# ---------------------------------------------------------------------------
# intersects
# ---------------------------------------------------------------------------


def intersects(a: Geometry, b: Geometry) -> bool:
    """True when *a* and *b* share at least one point."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    return _dispatch_symmetric(a, b, _INTERSECTS_TABLE)


def _point_point_intersects(a: Point, b: Point) -> bool:
    return a.coord == b.coord


def _point_line_intersects(p: Point, line: LineString) -> bool:
    return any(algorithms.on_segment(p.coord, s, e) for s, e in line.segments())


def _point_polygon_intersects(p: Point, poly: Polygon) -> bool:
    return poly.locate(p.x, p.y) != EXTERIOR


def _line_line_intersects(a: LineString, b: LineString) -> bool:
    for s1, e1 in a.segments():
        seg_env_min_x = min(s1[0], e1[0])
        seg_env_max_x = max(s1[0], e1[0])
        seg_env_min_y = min(s1[1], e1[1])
        seg_env_max_y = max(s1[1], e1[1])
        for s2, e2 in b.segments():
            if (
                max(s2[0], e2[0]) < seg_env_min_x
                or min(s2[0], e2[0]) > seg_env_max_x
                or max(s2[1], e2[1]) < seg_env_min_y
                or min(s2[1], e2[1]) > seg_env_max_y
            ):
                continue
            if algorithms.segments_intersect(s1, e1, s2, e2):
                return True
    return False


def _line_polygon_intersects(line: LineString, poly: Polygon) -> bool:
    # Any crossing with any ring means contact.
    for ring in poly.rings():
        if _line_line_intersects(line, ring):
            return True
    # No boundary contact: the line is entirely inside or entirely
    # outside; one representative vertex decides.
    x, y = line.coords[0]
    return poly.locate(x, y) == INTERIOR


def _polygon_polygon_intersects(a: Polygon, b: Polygon) -> bool:
    for ring_a in a.rings():
        for ring_b in b.rings():
            if _line_line_intersects(ring_a, ring_b):
                return True
    # No boundary crossings: either disjoint or one fully inside the other
    # (possibly inside a hole -- locate() accounts for holes).
    ax, ay = a.shell.coords[0]
    if b.locate(ax, ay) == INTERIOR:
        return True
    bx, by = b.shell.coords[0]
    return a.locate(bx, by) == INTERIOR


# ---------------------------------------------------------------------------
# contains / covers
# ---------------------------------------------------------------------------


def contains(a: Geometry, b: Geometry) -> bool:
    """JTS ``contains``: *b* within *a* and *b* touches *a*'s interior."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.contains(b.envelope):
        return False
    return _dispatch(a, b, _CONTAINS_TABLE)


def covers(a: Geometry, b: Geometry) -> bool:
    """``covers``: every point of *b* is a point of *a* (boundary counts)."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.contains(b.envelope):
        return False
    return _dispatch(a, b, _COVERS_TABLE)


def _point_contains(a: Point, b: Geometry) -> bool:
    if isinstance(b, Point):
        return a.coord == b.coord
    if isinstance(b, _BaseCollection):
        members = [g for g in b.geoms if not g.is_empty]
        return bool(members) and all(_point_contains(a, g) for g in members)
    # A point cannot contain a 1- or 2-dimensional geometry unless the
    # geometry is degenerate to that very point.
    return all(c == a.coord for c in b.coordinates())


def _line_contains_point(line: LineString, p: Point) -> bool:
    # JTS contains() excludes the line's boundary (its two endpoints),
    # but STARK's usage treats containment set-theoretically; we keep the
    # simpler covers-style semantics for lines and document it.
    return _point_line_intersects(p, line)


def _sample_points(line: LineString) -> list[Coord]:
    """Vertices plus segment midpoints -- the probe set for on-line tests."""
    samples = list(line.coords)
    for s, e in line.segments():
        samples.append(((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0))
    return samples


def _line_contains_line(a: LineString, b: LineString) -> bool:
    # Sampled test: every vertex and midpoint of b lies on a.  Exact for
    # the straight-segment geometries used throughout the system.
    return all(
        any(algorithms.on_segment(pt, s, e) for s, e in a.segments())
        for pt in _sample_points(b)
    )


def _polygon_covers_point(poly: Polygon, p: Point) -> bool:
    return poly.locate(p.x, p.y) != EXTERIOR


def _polygon_contains_point(poly: Polygon, p: Point) -> bool:
    return poly.locate(p.x, p.y) == INTERIOR


def _segment_properly_crosses_ring(s: Coord, e: Coord, ring: LineString) -> bool:
    """True when segment s-e crosses a ring edge at a single interior point.

    Touches at segment endpoints or collinear overlaps do not count: a
    contained geometry may touch the boundary from inside.
    """
    for rs, re in ring.segments():
        pt = algorithms.segment_intersection_point(s, e, rs, re)
        if pt is None:
            continue
        # Ignore crossings at the probe segment's own endpoints.
        if _close(pt, s) or _close(pt, e):
            continue
        return True
    return False


def _close(a: Coord, b: Coord) -> bool:
    return math.isclose(a[0], b[0], abs_tol=1e-9) and math.isclose(
        a[1], b[1], abs_tol=1e-9
    )


def _polygon_covers_line(poly: Polygon, line: LineString) -> bool:
    for pt in _sample_points(line):
        if poly.locate(pt[0], pt[1]) == EXTERIOR:
            return False
    # Sampled points inside is necessary but not sufficient: an edge can
    # dip out of the polygon and return between samples only by crossing
    # the boundary, which the proper-crossing test catches.
    for s, e in line.segments():
        for ring in poly.rings():
            if _segment_properly_crosses_ring(s, e, ring):
                return False
    return True


def _polygon_contains_line(poly: Polygon, line: LineString) -> bool:
    if not _polygon_covers_line(poly, line):
        return False
    # contains additionally requires interior contact: at least one probe
    # point strictly inside.
    return any(
        poly.locate(pt[0], pt[1]) == INTERIOR for pt in _sample_points(line)
    )


def _polygon_covers_polygon(a: Polygon, b: Polygon) -> bool:
    for ring in b.rings():
        if not _polygon_covers_line(a, ring):
            return False
    # Every hole of a must stay clear of b's interior: if a hole's
    # representative interior point is strictly inside b, part of b falls
    # into the hole (boundary-touching holes are fine and were already
    # vetted by the crossing tests above).
    for hole in a.holes:
        probe = _ring_interior_point(hole)
        if probe is not None and b.locate(*probe) == INTERIOR:
            return False
    return True


def _polygon_contains_polygon(a: Polygon, b: Polygon) -> bool:
    if not _polygon_covers_polygon(a, b):
        return False
    probe = _polygon_interior_point(b)
    return probe is not None and a.locate(*probe) == INTERIOR


def _ring_interior_point(ring: LineString) -> Coord | None:
    """A point strictly inside a closed ring (ignoring any holes)."""
    coords = ring.coords
    if not coords:
        return None
    env = ring.envelope
    if env.width == 0 or env.height == 0:
        return None
    # Scan a few horizontal lines; the midpoint between consecutive
    # crossings lies inside for a simple ring.
    for frac in (0.5, 0.25, 0.75, 0.125, 0.875):
        y = env.min_y + env.height * frac
        xs: list[float] = []
        for i in range(len(coords) - 1):
            x1, y1 = coords[i]
            x2, y2 = coords[i + 1]
            if (y1 <= y < y2) or (y2 <= y < y1):
                xs.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
        xs.sort()
        for j in range(0, len(xs) - 1, 2):
            mid = ((xs[j] + xs[j + 1]) / 2.0, y)
            if algorithms.locate_point_in_ring(mid, coords) == INTERIOR:
                return mid
    return None


def _polygon_interior_point(poly: Polygon) -> Coord | None:
    """A point strictly inside the polygon (holes respected)."""
    c = poly.centroid()
    if not c.is_empty and poly.locate(c.x, c.y) == INTERIOR:
        return c.coord
    env = poly.envelope
    if env.is_empty:
        return None
    steps = 16
    for iy in range(1, steps):
        y = env.min_y + env.height * iy / steps
        for ix in range(1, steps):
            x = env.min_x + env.width * ix / steps
            if poly.locate(x, y) == INTERIOR:
                return (x, y)
    return _ring_interior_point(poly.shell)


# ---------------------------------------------------------------------------
# distance
# ---------------------------------------------------------------------------


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between *a* and *b* (0 when intersecting)."""
    if a.is_empty or b.is_empty:
        raise ValueError("distance undefined for empty geometries")
    return _dispatch_symmetric(a, b, _DISTANCE_TABLE)


def _point_point_distance(a: Point, b: Point) -> float:
    return math.hypot(a.x - b.x, a.y - b.y)


def _point_line_distance(p: Point, line: LineString) -> float:
    return min(
        algorithms.point_segment_distance(p.coord, s, e) for s, e in line.segments()
    )


def _point_polygon_distance(p: Point, poly: Polygon) -> float:
    if poly.locate(p.x, p.y) != EXTERIOR:
        return 0.0
    return min(_point_line_distance(p, ring) for ring in poly.rings())


def _line_line_distance(a: LineString, b: LineString) -> float:
    best = math.inf
    for s1, e1 in a.segments():
        for s2, e2 in b.segments():
            best = min(best, algorithms.segment_segment_distance(s1, e1, s2, e2))
            if best == 0.0:
                return 0.0
    return best


def _line_polygon_distance(line: LineString, poly: Polygon) -> float:
    if _line_polygon_intersects(line, poly):
        return 0.0
    return min(_line_line_distance(line, ring) for ring in poly.rings())


def _polygon_polygon_distance(a: Polygon, b: Polygon) -> float:
    if _polygon_polygon_intersects(a, b):
        return 0.0
    return min(
        _line_line_distance(ring_a, ring_b)
        for ring_a in a.rings()
        for ring_b in b.rings()
    )


# ---------------------------------------------------------------------------
# dispatch machinery
# ---------------------------------------------------------------------------


def _rank(g: Geometry) -> int:
    """Order geometries by dimension for symmetric dispatch."""
    if isinstance(g, Point):
        return 0
    if isinstance(g, LineString):  # includes LinearRing
        return 1
    if isinstance(g, Polygon):
        return 2
    return 3  # collections


_INTERSECTS_TABLE: dict[tuple[int, int], Callable] = {
    (0, 0): _point_point_intersects,
    (0, 1): _point_line_intersects,
    (0, 2): _point_polygon_intersects,
    (1, 1): _line_line_intersects,
    (1, 2): _line_polygon_intersects,
    (2, 2): _polygon_polygon_intersects,
}

_DISTANCE_TABLE: dict[tuple[int, int], Callable] = {
    (0, 0): _point_point_distance,
    (0, 1): _point_line_distance,
    (0, 2): _point_polygon_distance,
    (1, 1): _line_line_distance,
    (1, 2): _line_polygon_distance,
    (2, 2): _polygon_polygon_distance,
}


def _dispatch_symmetric(a: Geometry, b: Geometry, table: dict) -> bool | float:
    ra, rb = _rank(a), _rank(b)
    if ra == 3 or rb == 3:
        return _collection_symmetric(a, b, table)
    if ra <= rb:
        return table[(ra, rb)](a, b)
    return table[(rb, ra)](b, a)


def _collection_symmetric(a: Geometry, b: Geometry, table: dict) -> bool | float:
    """Distribute a symmetric predicate over collection members."""
    is_distance = table is _DISTANCE_TABLE
    members_a = list(a.geoms) if isinstance(a, _BaseCollection) else [a]
    members_b = list(b.geoms) if isinstance(b, _BaseCollection) else [b]
    members_a = [g for g in members_a if not g.is_empty]
    members_b = [g for g in members_b if not g.is_empty]
    if is_distance:
        if not members_a or not members_b:
            raise ValueError("distance undefined for empty geometries")
        return min(
            _dispatch_symmetric(ga, gb, table) for ga in members_a for gb in members_b
        )
    return any(
        _dispatch_symmetric(ga, gb, table) for ga in members_a for gb in members_b
    )


def _contains_dispatch(a: Geometry, b: Geometry, boundary_ok: bool) -> bool:
    if isinstance(b, _BaseCollection):
        members = [g for g in b.geoms if not g.is_empty]
        return bool(members) and all(
            _contains_dispatch(a, g, boundary_ok) for g in members
        )
    if isinstance(a, _BaseCollection):
        # Sufficient (not complete) distribution: some single member
        # covers b.  A union of polygons jointly covering b without one
        # covering it alone reports False; STARK's operators only
        # exercise simple geometries on the left.
        return any(
            _contains_dispatch(g, b, boundary_ok) for g in a.geoms if not g.is_empty
        )
    if isinstance(a, Point):
        return _point_contains(a, b)
    if isinstance(a, LineString):
        if isinstance(b, Point):
            return _line_contains_point(a, b)
        if isinstance(b, LineString):
            return _line_contains_line(a, b)
        return False  # a line cannot contain an areal geometry
    if isinstance(a, Polygon):
        if isinstance(b, Point):
            return (
                _polygon_covers_point(a, b)
                if boundary_ok
                else _polygon_contains_point(a, b)
            )
        if isinstance(b, LineString):
            return (
                _polygon_covers_line(a, b)
                if boundary_ok
                else _polygon_contains_line(a, b)
            )
        if isinstance(b, Polygon):
            return (
                _polygon_covers_polygon(a, b)
                if boundary_ok
                else _polygon_contains_polygon(a, b)
            )
    raise TypeError(f"unsupported geometry types: {type(a)} contains {type(b)}")


_CONTAINS_TABLE = object()  # sentinels; real dispatch below
_COVERS_TABLE = object()


def _dispatch(a: Geometry, b: Geometry, table: object) -> bool:
    return _contains_dispatch(a, b, boundary_ok=table is _COVERS_TABLE)
