"""Distance functions for ``withinDistance`` and kNN.

STARK lets users pass their own distance function to ``withinDistance``
(paper section 2.3); this module provides the out-of-the-box functions
and the tiny protocol they follow: a callable taking two geometries and
returning a non-negative float.

The great-circle (haversine) function interprets coordinates as
longitude/latitude degrees and works on centroids for non-point
geometries -- the same pragmatic behaviour STARK inherits from its
distance helpers.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.geometry.base import Geometry
from repro.geometry.point import Point

DistanceFunction = Callable[[Geometry, Geometry], float]

EARTH_RADIUS_METERS = 6_371_008.8


def euclidean(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between the two geometries."""
    return a.distance(b)


def squared_euclidean(a: Geometry, b: Geometry) -> float:
    """Squared Euclidean distance (monotone in :func:`euclidean`).

    Cheaper when only the ordering matters, e.g. for kNN ranking.
    """
    d = a.distance(b)
    return d * d


def manhattan(a: Geometry, b: Geometry) -> float:
    """L1 distance between centroids."""
    ca, cb = _centroids(a, b)
    return abs(ca.x - cb.x) + abs(ca.y - cb.y)


def chebyshev(a: Geometry, b: Geometry) -> float:
    """L-infinity distance between centroids."""
    ca, cb = _centroids(a, b)
    return max(abs(ca.x - cb.x), abs(ca.y - cb.y))


def haversine(a: Geometry, b: Geometry) -> float:
    """Great-circle distance in meters between centroids.

    Coordinates are interpreted as ``(longitude, latitude)`` in degrees.
    """
    ca, cb = _centroids(a, b)
    lon1, lat1 = math.radians(ca.x), math.radians(ca.y)
    lon2, lat2 = math.radians(cb.x), math.radians(cb.y)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(h)))


def _centroids(a: Geometry, b: Geometry) -> tuple[Point, Point]:
    ca = a if isinstance(a, Point) else a.centroid()
    cb = b if isinstance(b, Point) else b.centroid()
    if ca.is_empty or cb.is_empty:
        raise ValueError("distance undefined for empty geometries")
    return ca, cb


BUILTIN_DISTANCE_FUNCTIONS: dict[str, DistanceFunction] = {
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "haversine": haversine,
}


def resolve(name_or_fn: str | DistanceFunction) -> DistanceFunction:
    """Resolve a distance function from a name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return BUILTIN_DISTANCE_FUNCTIONS[name_or_fn]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_DISTANCE_FUNCTIONS))
        raise ValueError(
            f"unknown distance function {name_or_fn!r}; known: {known}"
        ) from None
