"""Line strings and linear rings."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry import algorithms
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point


def _freeze_coords(coords: Iterable[Sequence[float]]) -> tuple[tuple[float, float], ...]:
    frozen = tuple((float(c[0]), float(c[1])) for c in coords)
    for x, y in frozen:
        if x != x or y != y:  # NaN check without importing math
            raise ValueError("coordinates must not be NaN")
    return frozen


class LineString(Geometry):
    """An immutable polyline of two or more vertices.

    ``LineString([])`` constructs the empty line string.
    """

    __slots__ = ("_coords",)

    def __init__(self, coords: Iterable[Sequence[float]] = ()) -> None:
        self._coords = _freeze_coords(coords)
        if len(self._coords) == 1:
            raise ValueError("a LineString needs at least 2 points (or 0 for empty)")
        self._envelope = Envelope.of_points(self._coords)

    @property
    def coords(self) -> tuple[tuple[float, float], ...]:
        return self._coords

    @property
    def geom_type(self) -> str:
        return "LINESTRING"

    @property
    def is_empty(self) -> bool:
        return not self._coords

    @property
    def length(self) -> float:
        """Total Euclidean length."""
        return algorithms.polyline_length(self._coords)

    def segments(self) -> Iterable[tuple[tuple[float, float], tuple[float, float]]]:
        """Consecutive vertex pairs."""
        for i in range(len(self._coords) - 1):
            yield self._coords[i], self._coords[i + 1]

    def centroid(self) -> Point:
        if self.is_empty:
            return Point()
        return Point(*algorithms.polyline_centroid(self._coords))

    def coordinates(self) -> list[tuple[float, float]]:
        return list(self._coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        # LinearRing and LineString with same coords compare equal on
        # purpose: they describe the same point set.
        return self._coords == other._coords

    def __hash__(self) -> int:
        return hash(("LINESTRING", self._coords))

    def __getstate__(self) -> tuple:
        return (self._coords,)

    def __setstate__(self, state: tuple) -> None:
        (self._coords,) = state
        self._envelope = Envelope.of_points(self._coords)


class LinearRing(LineString):
    """A closed LineString used as a polygon boundary.

    The constructor closes the ring automatically when the input does not
    repeat its first coordinate.  A non-empty ring needs at least three
    distinct vertices.
    """

    __slots__ = ()

    def __init__(self, coords: Iterable[Sequence[float]] = ()) -> None:
        frozen = _freeze_coords(coords)
        if frozen and frozen[0] != frozen[-1]:
            frozen = frozen + (frozen[0],)
        if frozen and len(frozen) < 4:
            raise ValueError("a LinearRing needs at least 3 distinct points")
        super().__init__(frozen)

    @property
    def geom_type(self) -> str:
        return "LINEARRING"

    @property
    def signed_area(self) -> float:
        """Shoelace area; positive when the ring winds counter-clockwise."""
        if self.is_empty:
            return 0.0
        return algorithms.ring_signed_area(self._coords)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0

    def locate(self, x: float, y: float) -> int:
        """Classify a point: algorithms.INTERIOR / BOUNDARY / EXTERIOR."""
        if self.is_empty:
            return algorithms.EXTERIOR
        return algorithms.locate_point_in_ring((x, y), self._coords)
