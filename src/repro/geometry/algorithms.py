"""Low-level computational-geometry primitives.

These free functions operate on bare coordinate tuples and back the exact
predicates in :mod:`repro.geometry.predicates`.  They follow the classic
robust-enough formulations used by JTS: orientation tests with an epsilon
collapse, segment intersection via orientation signs, and ray-crossing
point-in-polygon with an explicit boundary pass.
"""

from __future__ import annotations

import math
from typing import Sequence

Coord = tuple[float, float]

# Tolerance for collinearity decisions.  Coordinates in this codebase are
# "user scale" (degrees or meters), so a fixed epsilon is adequate; JTS
# uses exact arithmetic but STARK's observable behaviour only needs the
# predicate outcomes to be stable for non-degenerate inputs.
_EPS = 1e-12


def orientation(p: Coord, q: Coord, r: Coord) -> int:
    """Sign of the cross product (q - p) x (r - p).

    Returns 1 for a counter-clockwise turn, -1 for clockwise and 0 for
    (nearly) collinear points.
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    scale = max(
        abs(q[0] - p[0]), abs(q[1] - p[1]), abs(r[0] - p[0]), abs(r[1] - p[1]), 1.0
    )
    if abs(cross) <= _EPS * scale * scale:
        return 0
    return 1 if cross > 0 else -1


def on_segment(p: Coord, a: Coord, b: Coord) -> bool:
    """True when *p* lies on the closed segment ``a-b``.

    Assumes nothing: collinearity is checked here as well.
    """
    if orientation(a, b, p) != 0:
        return False
    return (
        min(a[0], b[0]) - _EPS <= p[0] <= max(a[0], b[0]) + _EPS
        and min(a[1], b[1]) - _EPS <= p[1] <= max(a[1], b[1]) + _EPS
    )


def segments_intersect(a1: Coord, a2: Coord, b1: Coord, b2: Coord) -> bool:
    """True when closed segments ``a1-a2`` and ``b1-b2`` share a point."""
    o1 = orientation(a1, a2, b1)
    o2 = orientation(a1, a2, b2)
    o3 = orientation(b1, b2, a1)
    o4 = orientation(b1, b2, a2)

    if o1 != o2 and o3 != o4:
        return True
    # Collinear overlap / endpoint-touch cases.
    if o1 == 0 and on_segment(b1, a1, a2):
        return True
    if o2 == 0 and on_segment(b2, a1, a2):
        return True
    if o3 == 0 and on_segment(a1, b1, b2):
        return True
    if o4 == 0 and on_segment(a2, b1, b2):
        return True
    return False


def segment_intersection_point(
    a1: Coord, a2: Coord, b1: Coord, b2: Coord
) -> Coord | None:
    """The intersection point of two *properly* crossing segments.

    Returns ``None`` for parallel or non-crossing segments; collinear
    overlaps also return ``None`` (there is no single point).
    """
    d1x, d1y = a2[0] - a1[0], a2[1] - a1[1]
    d2x, d2y = b2[0] - b1[0], b2[1] - b1[1]
    denom = d1x * d2y - d1y * d2x
    if abs(denom) <= _EPS:
        return None
    t = ((b1[0] - a1[0]) * d2y - (b1[1] - a1[1]) * d2x) / denom
    u = ((b1[0] - a1[0]) * d1y - (b1[1] - a1[1]) * d1x) / denom
    if -_EPS <= t <= 1 + _EPS and -_EPS <= u <= 1 + _EPS:
        return (a1[0] + t * d1x, a1[1] + t * d1y)
    return None


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Euclidean distance from point *p* to the closed segment ``a-b``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= _EPS:
        # Degenerate (or near-degenerate) segment: the projection is
        # numerically meaningless, but the segment still has two
        # endpoints -- take the nearer one, so a point coinciding with
        # ``b`` measures 0, not the tiny segment's length.
        return min(math.hypot(px - ax, py - ay), math.hypot(px - bx, py - by))
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def segment_segment_distance(a1: Coord, a2: Coord, b1: Coord, b2: Coord) -> float:
    """Minimum distance between two closed segments (0 when they intersect)."""
    if segments_intersect(a1, a2, b1, b2):
        return 0.0
    return min(
        point_segment_distance(a1, b1, b2),
        point_segment_distance(a2, b1, b2),
        point_segment_distance(b1, a1, a2),
        point_segment_distance(b2, a1, a2),
    )


# Location of a point relative to a ring: interior / boundary / exterior.
INTERIOR = 1
BOUNDARY = 0
EXTERIOR = -1


def locate_point_in_ring(p: Coord, ring: Sequence[Coord]) -> int:
    """Classify *p* against a closed ring given as a coordinate sequence.

    The ring must be explicitly closed (``ring[0] == ring[-1]``).  Uses
    the ray-crossing algorithm with a dedicated boundary pass so that
    points exactly on an edge or vertex report :data:`BOUNDARY` rather
    than an arbitrary side.
    """
    if len(ring) < 4:
        raise ValueError("a closed ring needs at least 4 coordinates")
    px, py = p
    # Boundary pass first: crossing counts are unreliable on the boundary.
    for i in range(len(ring) - 1):
        if on_segment(p, ring[i], ring[i + 1]):
            return BOUNDARY

    crossings = 0
    for i in range(len(ring) - 1):
        x1, y1 = ring[i]
        x2, y2 = ring[i + 1]
        # Count edges crossed by the ray going in +x from p.  The
        # half-open test (y1 <= py < y2 or y2 <= py < y1) ensures a
        # vertex exactly at py is counted once.
        if (y1 <= py < y2) or (y2 <= py < y1):
            x_at = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
            if x_at > px:
                crossings += 1
    return INTERIOR if crossings % 2 == 1 else EXTERIOR


def ring_signed_area(ring: Sequence[Coord]) -> float:
    """Signed shoelace area; positive for counter-clockwise rings."""
    total = 0.0
    for i in range(len(ring) - 1):
        x1, y1 = ring[i]
        x2, y2 = ring[i + 1]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def ring_is_ccw(ring: Sequence[Coord]) -> bool:
    """True when the closed ring winds counter-clockwise."""
    return ring_signed_area(ring) > 0


def ring_centroid(ring: Sequence[Coord]) -> Coord:
    """Area centroid of a closed ring (falls back to vertex mean if degenerate)."""
    area = ring_signed_area(ring)
    if abs(area) <= _EPS:
        xs = [c[0] for c in ring[:-1]]
        ys = [c[1] for c in ring[:-1]]
        return (sum(xs) / len(xs), sum(ys) / len(ys))
    cx = cy = 0.0
    for i in range(len(ring) - 1):
        x1, y1 = ring[i]
        x2, y2 = ring[i + 1]
        cross = x1 * y2 - x2 * y1
        cx += (x1 + x2) * cross
        cy += (y1 + y2) * cross
    factor = 1.0 / (6.0 * area)
    return (cx * factor, cy * factor)


def convex_hull(points: Sequence[Coord]) -> list[Coord]:
    """Andrew's monotone chain convex hull.

    Returns hull vertices in counter-clockwise order without repeating
    the first point.  Degenerate inputs (all collinear) return the two
    extreme points; a single point returns itself.
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique

    def build(half: list[Coord]) -> list[Coord]:
        chain: list[Coord] = []
        for p in half:
            while len(chain) >= 2 and orientation(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = build(unique)
    upper = build(list(reversed(unique)))
    return lower[:-1] + upper[:-1]


def polyline_length(coords: Sequence[Coord]) -> float:
    """Total Euclidean length of a coordinate chain."""
    return sum(
        math.hypot(coords[i + 1][0] - coords[i][0], coords[i + 1][1] - coords[i][1])
        for i in range(len(coords) - 1)
    )


def polyline_centroid(coords: Sequence[Coord]) -> Coord:
    """Length-weighted centroid of a polyline (vertex mean when degenerate)."""
    total_len = polyline_length(coords)
    if total_len <= _EPS:
        xs = [c[0] for c in coords]
        ys = [c[1] for c in coords]
        return (sum(xs) / len(xs), sum(ys) / len(ys))
    cx = cy = 0.0
    for i in range(len(coords) - 1):
        x1, y1 = coords[i]
        x2, y2 = coords[i + 1]
        seg_len = math.hypot(x2 - x1, y2 - y1)
        cx += (x1 + x2) / 2.0 * seg_len
        cy += (y1 + y2) / 2.0 * seg_len
    return (cx / total_len, cy / total_len)
