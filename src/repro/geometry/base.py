"""The abstract geometry type.

Every concrete geometry implements the small protocol the rest of the
system relies on: an :class:`~repro.geometry.envelope.Envelope`, a
centroid (used by the spatial partitioners for single-partition
assignment of extended geometries), and the binary predicates, which
delegate to the double-dispatch implementations in
:mod:`repro.geometry.predicates`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.geometry.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.geometry.point import Point


class Geometry(ABC):
    """Base class of all geometries.

    Geometries are immutable; subclasses freeze their coordinate data at
    construction and cache their envelope.  Equality and hashing are by
    value so geometries can key dictionaries and be exchanged through the
    shuffle machinery.
    """

    __slots__ = ("_envelope",)

    _envelope: Envelope

    @property
    def envelope(self) -> Envelope:
        """The cached minimum bounding rectangle."""
        return self._envelope

    @property
    @abstractmethod
    def geom_type(self) -> str:
        """The WKT type tag, e.g. ``"POINT"``."""

    @property
    @abstractmethod
    def is_empty(self) -> bool:
        """True for geometries with no coordinates (e.g. ``POINT EMPTY``)."""

    @abstractmethod
    def centroid(self) -> "Point":
        """The geometry's centroid.

        STARK assigns non-point geometries to exactly one partition based
        on this point (paper section 2.1).
        """

    @abstractmethod
    def coordinates(self) -> list[tuple[float, float]]:
        """A flat list of every vertex (used for envelope/extent updates)."""

    # -- binary predicates (double dispatch into predicates module) ------

    def intersects(self, other: "Geometry") -> bool:
        """True when the two geometries share at least one point."""
        from repro.geometry import predicates

        return predicates.intersects(self, other)

    def contains(self, other: "Geometry") -> bool:
        """True when *other* lies completely within this geometry."""
        from repro.geometry import predicates

        return predicates.contains(self, other)

    def within(self, other: "Geometry") -> bool:
        """True when this geometry lies completely within *other*."""
        from repro.geometry import predicates

        return predicates.contains(other, self)

    def disjoint(self, other: "Geometry") -> bool:
        """True when the geometries share no point."""
        return not self.intersects(other)

    def touches(self, other: "Geometry") -> bool:
        """True for boundary-only contact (interiors stay apart)."""
        from repro.geometry import predicates_ext

        return predicates_ext.touches(self, other)

    def overlaps(self, other: "Geometry") -> bool:
        """True for a partial same-dimension overlap."""
        from repro.geometry import predicates_ext

        return predicates_ext.overlaps(self, other)

    def crosses(self, other: "Geometry") -> bool:
        """True when interiors meet in a lower-dimensional set."""
        from repro.geometry import predicates_ext

        return predicates_ext.crosses(self, other)

    def distance(self, other: "Geometry") -> float:
        """Minimum Euclidean distance between the two geometries."""
        from repro.geometry import predicates

        return predicates.distance(self, other)

    def wkt(self) -> str:
        """This geometry's Well-Known Text representation."""
        from repro.geometry.wkt import to_wkt

        return to_wkt(self)

    def __repr__(self) -> str:
        return self.wkt()
