"""Axis-aligned bounding boxes (envelopes).

Envelopes are the workhorse of every pruning decision in the system: the
spatial partitioners describe partition bounds and extents with them, the
STR-tree stores them at every node, and the join/filter operators use them
for the cheap reject test before the exact predicate runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Envelope:
    """An immutable, closed, axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    An envelope may be *empty* (contains no point), represented with
    ``min > max`` coordinates; :meth:`empty` constructs it.  All operations
    treat the empty envelope as the identity for :meth:`merge` and as
    disjoint from everything.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @staticmethod
    def empty() -> "Envelope":
        """The empty envelope (neutral element of :meth:`merge`)."""
        return Envelope(math.inf, math.inf, -math.inf, -math.inf)

    @staticmethod
    def of_point(x: float, y: float) -> "Envelope":
        """A degenerate envelope covering a single point."""
        return Envelope(x, y, x, y)

    @staticmethod
    def of_points(coords: Iterable[tuple[float, float]]) -> "Envelope":
        """The tightest envelope around an iterable of ``(x, y)`` pairs."""
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for x, y in coords:
            min_x = min(min_x, x)
            min_y = min(min_y, y)
            max_x = max(max_x, x)
            max_y = max(max_y, y)
        return Envelope(min_x, min_y, max_x, max_y)

    def __post_init__(self) -> None:
        for value in (self.min_x, self.min_y, self.max_x, self.max_y):
            if math.isnan(value):
                raise ValueError("envelope coordinates must not be NaN")

    @property
    def is_empty(self) -> bool:
        return self.min_x > self.max_x or self.min_y > self.max_y

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.max_x - self.min_x

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty else self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 0.0 if self.is_empty else 2.0 * (self.width + self.height)

    def center(self) -> tuple[float, float]:
        """The center point; raises on the empty envelope."""
        if self.is_empty:
            raise ValueError("empty envelope has no center")
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment test for a point."""
        return (
            not self.is_empty
            and self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
        )

    def contains(self, other: "Envelope") -> bool:
        """True when *other* lies fully inside (or on the border of) this envelope."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.min_x
            and other.max_x <= self.max_x
            and self.min_y <= other.min_y
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Envelope") -> bool:
        """True when the two (closed) envelopes share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersection(self, other: "Envelope") -> "Envelope":
        """The envelope of the common region; empty when disjoint."""
        if not self.intersects(other):
            return Envelope.empty()
        return Envelope(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def merge(self, other: "Envelope") -> "Envelope":
        """The smallest envelope covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand_to_point(self, x: float, y: float) -> "Envelope":
        """The smallest envelope covering this one and the point."""
        return self.merge(Envelope.of_point(x, y))

    def buffer(self, margin: float) -> "Envelope":
        """Grow (or, for negative margins, shrink) by *margin* on every side.

        Shrinking past the point where the envelope vanishes yields the
        empty envelope.
        """
        if self.is_empty:
            return self
        grown = Envelope(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
        return Envelope.empty() if grown.is_empty else grown

    def distance(self, other: "Envelope") -> float:
        """Minimum Euclidean distance between the two envelopes (0 if they touch)."""
        if self.is_empty or other.is_empty:
            raise ValueError("distance undefined for empty envelopes")
        dx = max(other.min_x - self.max_x, self.min_x - other.max_x, 0.0)
        dy = max(other.min_y - self.max_y, self.min_y - other.max_y, 0.0)
        return math.hypot(dx, dy)

    def distance_to_point(self, x: float, y: float) -> float:
        """Minimum Euclidean distance from the envelope to a point."""
        if self.is_empty:
            raise ValueError("distance undefined for empty envelopes")
        dx = max(self.min_x - x, x - self.max_x, 0.0)
        dy = max(self.min_y - y, y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, x: float, y: float) -> float:
        """Maximum Euclidean distance from the envelope to a point.

        Used as a kNN pruning upper bound: every geometry inside the
        envelope is at most this far from ``(x, y)``.
        """
        if self.is_empty:
            raise ValueError("distance undefined for empty envelopes")
        dx = max(abs(x - self.min_x), abs(x - self.max_x))
        dy = max(abs(y - self.min_y), abs(y - self.max_y))
        return math.hypot(dx, dy)

    def corners(self) -> Iterator[tuple[float, float]]:
        """The four corners in counter-clockwise order starting at (min_x, min_y)."""
        yield (self.min_x, self.min_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)
        yield (self.min_x, self.max_y)

    def split_at(self, value: float, axis: int) -> tuple["Envelope", "Envelope"]:
        """Cut the envelope at *value* along *axis* (0 = x, 1 = y).

        Returns the (low, high) halves.  The cut must fall inside the
        envelope; both halves are closed and share the cut line, matching
        how the BSP partitioner defines adjacent partition bounds.
        """
        if self.is_empty:
            raise ValueError("cannot split an empty envelope")
        if axis == 0:
            if not self.min_x <= value <= self.max_x:
                raise ValueError(f"cut {value} outside x range [{self.min_x}, {self.max_x}]")
            low = Envelope(self.min_x, self.min_y, value, self.max_y)
            high = Envelope(value, self.min_y, self.max_x, self.max_y)
        elif axis == 1:
            if not self.min_y <= value <= self.max_y:
                raise ValueError(f"cut {value} outside y range [{self.min_y}, {self.max_y}]")
            low = Envelope(self.min_x, self.min_y, self.max_x, value)
            high = Envelope(self.min_x, value, self.max_x, self.max_y)
        else:
            raise ValueError(f"axis must be 0 or 1, got {axis}")
        return low, high

    def __repr__(self) -> str:
        if self.is_empty:
            return "Envelope.empty()"
        return (
            f"Envelope({self.min_x!r}, {self.min_y!r}, "
            f"{self.max_x!r}, {self.max_y!r})"
        )
