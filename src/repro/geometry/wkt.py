"""Well-Known Text reader and writer.

Supports the seven OGC geometry types plus ``GEOMETRYCOLLECTION`` and the
``EMPTY`` keyword, with arbitrary whitespace and scientific-notation
numbers.  Z/M ordinates are not supported (the engine is strictly 2D,
matching STARK's usage).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class WKTParseError(ValueError):
    """Raised for malformed WKT input, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        snippet = text[max(0, position - 20) : position + 20]
        super().__init__(f"{message} at position {position} (near {snippet!r})")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<word>[A-Za-z]+)
  | (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class _Tokens:
    """A tiny cursor over the WKT token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise WKTParseError("unexpected character", pos, text)
            kind = m.lastgroup or ""
            if kind != "ws":
                self.tokens.append((kind, m.group(), pos))
            pos = m.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise WKTParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return tok

    def expect(self, kind: str) -> str:
        tok_kind, value, pos = self.next()
        if tok_kind != kind:
            raise WKTParseError(f"expected {kind}, got {value!r}", pos, self.text)
        return value

    def accept_word(self, word: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[0] == "word" and tok[1].upper() == word:
            self.index += 1
            return True
        return False


def parse_wkt(text: str) -> Geometry:
    """Parse a WKT string into a geometry.

    Raises :class:`WKTParseError` on malformed input, including trailing
    garbage after a complete geometry.
    """
    tokens = _Tokens(text)
    geom = _parse_geometry(tokens)
    trailing = tokens.peek()
    if trailing is not None:
        raise WKTParseError("trailing input after geometry", trailing[2], text)
    return geom


def _parse_geometry(tokens: _Tokens) -> Geometry:
    kind, value, pos = tokens.next()
    if kind != "word":
        raise WKTParseError(f"expected geometry type, got {value!r}", pos, tokens.text)
    tag = value.upper()
    parser = _PARSERS.get(tag)
    if parser is None:
        raise WKTParseError(f"unknown geometry type {tag!r}", pos, tokens.text)
    return parser(tokens)


def _parse_coord(tokens: _Tokens) -> tuple[float, float]:
    x = float(tokens.expect("number"))
    y = float(tokens.expect("number"))
    # Reject Z/M ordinates explicitly rather than silently mis-parsing.
    tok = tokens.peek()
    if tok is not None and tok[0] == "number":
        raise WKTParseError("only 2D coordinates are supported", tok[2], tokens.text)
    return (x, y)


def _parse_coord_list(tokens: _Tokens) -> list[tuple[float, float]]:
    tokens.expect("lparen")
    coords = [_parse_coord(tokens)]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        coords.append(_parse_coord(tokens))
    tokens.expect("rparen")
    return coords


def _parse_point(tokens: _Tokens) -> Point:
    if tokens.accept_word("EMPTY"):
        return Point()
    tokens.expect("lparen")
    x, y = _parse_coord(tokens)
    tokens.expect("rparen")
    return Point(x, y)


def _parse_linestring(tokens: _Tokens) -> LineString:
    if tokens.accept_word("EMPTY"):
        return LineString()
    return LineString(_parse_coord_list(tokens))


def _parse_polygon(tokens: _Tokens) -> Polygon:
    if tokens.accept_word("EMPTY"):
        return Polygon()
    tokens.expect("lparen")
    rings = [_parse_coord_list(tokens)]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        rings.append(_parse_coord_list(tokens))
    tokens.expect("rparen")
    return Polygon(rings[0], rings[1:])


def _parse_multipoint(tokens: _Tokens) -> MultiPoint:
    if tokens.accept_word("EMPTY"):
        return MultiPoint()
    tokens.expect("lparen")
    points: list[Point] = []
    while True:
        # Both MULTIPOINT ((1 2), (3 4)) and MULTIPOINT (1 2, 3 4) occur
        # in the wild; accept either.
        tok = tokens.peek()
        if tok is not None and tok[0] == "lparen":
            tokens.next()
            points.append(Point(*_parse_coord(tokens)))
            tokens.expect("rparen")
        else:
            points.append(Point(*_parse_coord(tokens)))
        if tokens.peek() is not None and tokens.peek()[0] == "comma":
            tokens.next()
            continue
        break
    tokens.expect("rparen")
    return MultiPoint(points)


def _parse_multilinestring(tokens: _Tokens) -> MultiLineString:
    if tokens.accept_word("EMPTY"):
        return MultiLineString()
    tokens.expect("lparen")
    lines = [LineString(_parse_coord_list(tokens))]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        lines.append(LineString(_parse_coord_list(tokens)))
    tokens.expect("rparen")
    return MultiLineString(lines)


def _parse_multipolygon(tokens: _Tokens) -> MultiPolygon:
    if tokens.accept_word("EMPTY"):
        return MultiPolygon()
    tokens.expect("lparen")
    polys = [_parse_polygon_body(tokens)]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        polys.append(_parse_polygon_body(tokens))
    tokens.expect("rparen")
    return MultiPolygon(polys)


def _parse_polygon_body(tokens: _Tokens) -> Polygon:
    tokens.expect("lparen")
    rings = [_parse_coord_list(tokens)]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        rings.append(_parse_coord_list(tokens))
    tokens.expect("rparen")
    return Polygon(rings[0], rings[1:])


def _parse_geometrycollection(tokens: _Tokens) -> GeometryCollection:
    if tokens.accept_word("EMPTY"):
        return GeometryCollection()
    tokens.expect("lparen")
    geoms = [_parse_geometry(tokens)]
    while tokens.peek() is not None and tokens.peek()[0] == "comma":
        tokens.next()
        geoms.append(_parse_geometry(tokens))
    tokens.expect("rparen")
    return GeometryCollection(geoms)


_PARSERS = {
    "POINT": _parse_point,
    "LINESTRING": _parse_linestring,
    "LINEARRING": _parse_linestring,
    "POLYGON": _parse_polygon,
    "MULTIPOINT": _parse_multipoint,
    "MULTILINESTRING": _parse_multilinestring,
    "MULTIPOLYGON": _parse_multipolygon,
    "GEOMETRYCOLLECTION": _parse_geometrycollection,
}


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Render a coordinate without a trailing ``.0`` for whole numbers."""
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def _coords_body(coords) -> str:
    return ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in coords)


def to_wkt(geom: Geometry) -> str:
    """Serialize a geometry to WKT.  Round-trips with :func:`parse_wkt`."""
    if geom.is_empty:
        return f"{geom.geom_type} EMPTY"
    if isinstance(geom, Point):
        return f"POINT ({_fmt(geom.x)} {_fmt(geom.y)})"
    if isinstance(geom, Polygon):
        rings = ", ".join(f"({_coords_body(r.coords)})" for r in geom.rings())
        return f"POLYGON ({rings})"
    if isinstance(geom, LineString):  # includes LinearRing
        return f"LINESTRING ({_coords_body(geom.coords)})"
    if isinstance(geom, MultiPoint):
        body = ", ".join(f"({_fmt(p.x)} {_fmt(p.y)})" for p in geom.geoms)
        return f"MULTIPOINT ({body})"
    if isinstance(geom, MultiLineString):
        body = ", ".join(f"({_coords_body(ls.coords)})" for ls in geom.geoms)
        return f"MULTILINESTRING ({body})"
    if isinstance(geom, MultiPolygon):
        parts = []
        for poly in geom.geoms:
            rings = ", ".join(f"({_coords_body(r.coords)})" for r in poly.rings())
            parts.append(f"({rings})")
        return f"MULTIPOLYGON ({', '.join(parts)})"
    if isinstance(geom, GeometryCollection):
        body = ", ".join(to_wkt(g) for g in geom.geoms)
        return f"GEOMETRYCOLLECTION ({body})"
    raise TypeError(f"cannot serialize {type(geom).__name__} to WKT")


def iter_wkt_lines(lines) -> Iterator[Geometry]:
    """Parse an iterable of WKT lines, skipping blank lines."""
    for line in lines:
        line = line.strip()
        if line:
            yield parse_wkt(line)
