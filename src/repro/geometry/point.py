"""The point geometry."""

from __future__ import annotations

import math

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope


class Point(Geometry):
    """An immutable 2D point.

    ``Point()`` with no arguments constructs the empty point
    (``POINT EMPTY`` in WKT).
    """

    __slots__ = ("_x", "_y", "_empty")

    def __init__(self, x: float | None = None, y: float | None = None) -> None:
        if (x is None) != (y is None):
            raise ValueError("provide both coordinates or neither")
        if x is None:
            self._empty = True
            self._x = math.nan
            self._y = math.nan
            self._envelope = Envelope.empty()
            return
        x = float(x)
        y = float(y)
        if math.isnan(x) or math.isnan(y):
            raise ValueError("point coordinates must not be NaN")
        self._empty = False
        self._x = x
        self._y = y
        self._envelope = Envelope.of_point(x, y)

    @property
    def x(self) -> float:
        if self._empty:
            raise ValueError("empty point has no coordinates")
        return self._x

    @property
    def y(self) -> float:
        if self._empty:
            raise ValueError("empty point has no coordinates")
        return self._y

    @property
    def coord(self) -> tuple[float, float]:
        """The ``(x, y)`` tuple."""
        return (self.x, self.y)

    @property
    def geom_type(self) -> str:
        return "POINT"

    @property
    def is_empty(self) -> bool:
        return self._empty

    def centroid(self) -> "Point":
        return self

    def coordinates(self) -> list[tuple[float, float]]:
        return [] if self._empty else [(self._x, self._y)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self._empty or other._empty:
            return self._empty and other._empty
        return self._x == other._x and self._y == other._y

    def __hash__(self) -> int:
        if self._empty:
            return hash(("POINT", None))
        return hash(("POINT", self._x, self._y))

    def __getstate__(self) -> tuple:
        return (self._x, self._y, self._empty)

    def __setstate__(self, state: tuple) -> None:
        self._x, self._y, self._empty = state
        self._envelope = (
            Envelope.empty() if self._empty else Envelope.of_point(self._x, self._y)
        )
