"""Polygons with optional holes."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry import algorithms
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LinearRing
from repro.geometry.point import Point


class Polygon(Geometry):
    """An immutable polygon: one exterior ring plus zero or more holes.

    Rings may be given as :class:`LinearRing` instances or raw coordinate
    sequences (which are closed automatically).  ``Polygon()`` constructs
    the empty polygon.
    """

    __slots__ = ("_shell", "_holes")

    def __init__(
        self,
        shell: LinearRing | Iterable[Sequence[float]] = (),
        holes: Iterable[LinearRing | Iterable[Sequence[float]]] = (),
    ) -> None:
        self._shell = shell if isinstance(shell, LinearRing) else LinearRing(shell)
        self._holes = tuple(
            h if isinstance(h, LinearRing) else LinearRing(h) for h in holes
        )
        if self._shell.is_empty and self._holes:
            raise ValueError("empty polygon cannot have holes")
        self._envelope = self._shell.envelope

    @property
    def shell(self) -> LinearRing:
        """The exterior ring."""
        return self._shell

    @property
    def holes(self) -> tuple[LinearRing, ...]:
        """The interior rings."""
        return self._holes

    @property
    def geom_type(self) -> str:
        return "POLYGON"

    @property
    def is_empty(self) -> bool:
        return self._shell.is_empty

    @property
    def area(self) -> float:
        """Unsigned area: |shell| minus the holes."""
        if self.is_empty:
            return 0.0
        area = abs(self._shell.signed_area)
        for hole in self._holes:
            area -= abs(hole.signed_area)
        return area

    def rings(self) -> Iterable[LinearRing]:
        """The shell followed by the holes."""
        if not self.is_empty:
            yield self._shell
            yield from self._holes

    def locate(self, x: float, y: float) -> int:
        """Classify a point against the polygon, holes included."""
        loc = self._shell.locate(x, y)
        if loc != algorithms.INTERIOR:
            return loc
        for hole in self._holes:
            hole_loc = hole.locate(x, y)
            if hole_loc == algorithms.INTERIOR:
                return algorithms.EXTERIOR
            if hole_loc == algorithms.BOUNDARY:
                return algorithms.BOUNDARY
        return algorithms.INTERIOR

    def covers_point(self, x: float, y: float) -> bool:
        """True when the point is in the polygon's interior or boundary."""
        return self.locate(x, y) != algorithms.EXTERIOR

    def contains_point_properly(self, x: float, y: float) -> bool:
        """True when the point is strictly inside (not on the boundary)."""
        return self.locate(x, y) == algorithms.INTERIOR

    def centroid(self) -> Point:
        if self.is_empty:
            return Point()
        # Area-weighted combination of shell and (negative) holes.
        total_area = self._shell.signed_area
        cx, cy = algorithms.ring_centroid(self._shell.coords)
        if not self._holes:
            return Point(cx, cy)
        weighted_x = cx * abs(total_area)
        weighted_y = cy * abs(total_area)
        net = abs(total_area)
        for hole in self._holes:
            h_area = abs(hole.signed_area)
            hx, hy = algorithms.ring_centroid(hole.coords)
            weighted_x -= hx * h_area
            weighted_y -= hy * h_area
            net -= h_area
        if net <= 0:
            return Point(cx, cy)
        return Point(weighted_x / net, weighted_y / net)

    def coordinates(self) -> list[tuple[float, float]]:
        coords: list[tuple[float, float]] = []
        for ring in self.rings():
            coords.extend(ring.coords)
        return coords

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._shell == other._shell and self._holes == other._holes

    def __hash__(self) -> int:
        return hash(("POLYGON", self._shell, self._holes))

    def __getstate__(self) -> tuple:
        return (self._shell, self._holes)

    def __setstate__(self, state: tuple) -> None:
        self._shell, self._holes = state
        self._envelope = self._shell.envelope

    @staticmethod
    def from_envelope(env: Envelope) -> "Polygon":
        """The rectangle polygon covering an envelope."""
        if env.is_empty:
            return Polygon()
        return Polygon(list(env.corners()))
