"""Temporal predicates, including the full Allen relation set.

The three predicates STARK's operators need (``t_intersects``,
``t_contains``, ``t_contained_by``) treat instants as zero-length closed
intervals, so every combination of instant/interval operands is defined.
"""

from __future__ import annotations

import enum

from repro.temporal.instant import Instant
from repro.temporal.interval import Interval, TemporalExpression


def _bounds(t: TemporalExpression) -> tuple[float, float]:
    if not isinstance(t, (Instant, Interval)):
        raise TypeError(f"expected a temporal expression, got {type(t).__name__}")
    return (t.start, t.end)


def t_intersects(a: TemporalExpression, b: TemporalExpression) -> bool:
    """True when the two (closed) temporal extents share a moment."""
    a_start, a_end = _bounds(a)
    b_start, b_end = _bounds(b)
    return a_start <= b_end and b_start <= a_end


def t_contains(a: TemporalExpression, b: TemporalExpression) -> bool:
    """True when *b*'s extent lies fully within *a*'s (closed semantics)."""
    a_start, a_end = _bounds(a)
    b_start, b_end = _bounds(b)
    return a_start <= b_start and b_end <= a_end


def t_contained_by(a: TemporalExpression, b: TemporalExpression) -> bool:
    """The reverse of :func:`t_contains`, mirroring ``STObject.containedBy``."""
    return t_contains(b, a)


class AllenRelation(enum.Enum):
    """The thirteen Allen interval relations."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUALS = "equals"


def allen_relation(a: TemporalExpression, b: TemporalExpression) -> AllenRelation:
    """Classify the relation of *a* to *b* per Allen's interval algebra.

    Instants participate as zero-length intervals, which collapses some
    of the thirteen relations (e.g. an instant can never strictly
    ``OVERLAPS`` anything); the classification below resolves ties in
    the canonical order equals > starts/finishes > during/contains >
    meets > overlaps > before/after.
    """
    a_start, a_end = _bounds(a)
    b_start, b_end = _bounds(b)

    if a_start == b_start and a_end == b_end:
        return AllenRelation.EQUALS
    if a_start == b_start:
        return AllenRelation.STARTS if a_end < b_end else AllenRelation.STARTED_BY
    if a_end == b_end:
        return AllenRelation.FINISHES if a_start > b_start else AllenRelation.FINISHED_BY
    if b_start < a_start and a_end < b_end:
        return AllenRelation.DURING
    if a_start < b_start and b_end < a_end:
        return AllenRelation.CONTAINS
    if a_end == b_start:
        return AllenRelation.MEETS
    if b_end == a_start:
        return AllenRelation.MET_BY
    if a_end < b_start:
        return AllenRelation.BEFORE
    if b_end < a_start:
        return AllenRelation.AFTER
    if a_start < b_start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY
