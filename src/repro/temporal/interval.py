"""The interval temporal type and temporal-value coercion."""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Union

from repro.temporal.instant import Instant


@dataclass(frozen=True, slots=True)
class Interval:
    """An immutable closed time interval ``[start, end]``.

    Intervals are never empty: ``start <= end`` is enforced.  A
    zero-length interval is a valid value distinct from an
    :class:`Instant` only in type; the predicates treat them alike.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        for bound in (self.start, self.end):
            if not isinstance(bound, Real):
                raise TypeError(f"interval bounds must be numbers, got {type(bound).__name__}")
            if bound != bound:  # NaN
                raise ValueError("interval bounds must not be NaN")
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} after end {self.end}")

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains_value(self, t: float) -> bool:
        """Closed containment of a timestamp."""
        return self.start <= t <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def merge(self, other: "Interval") -> "Interval":
        """The smallest interval covering both operands."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def buffer(self, margin: float) -> "Interval":
        """Grow by *margin* on both sides (must not invert the interval)."""
        return Interval(self.start - margin, self.end + margin)

    def __repr__(self) -> str:
        return f"Interval({self.start!r}, {self.end!r})"


TemporalExpression = Union[Instant, Interval]


def make_temporal(value) -> TemporalExpression | None:
    """Coerce a user-supplied value into a temporal expression.

    Accepts ``None`` (no temporal component), an existing
    :class:`Instant`/:class:`Interval`, a bare number (an instant) or a
    ``(start, end)`` pair (an interval).  This is the coercion the
    ``STObject`` constructor applies so users can write
    ``STObject(wkt, time)`` exactly as in the paper's example.
    """
    if value is None:
        return None
    if isinstance(value, (Instant, Interval)):
        return value
    if isinstance(value, Real):
        return Instant(value)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return Interval(float(value[0]), float(value[1]))
    raise TypeError(
        "temporal component must be None, a number, an (start, end) pair, "
        f"an Instant or an Interval; got {type(value).__name__}"
    )
