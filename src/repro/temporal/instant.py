"""The instant temporal type: a single point in time."""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real


@dataclass(frozen=True, slots=True, order=True)
class Instant:
    """An immutable point in time.

    The value is any real number; STARK uses epoch milliseconds
    (``Long``).  Instants order and compare by value.
    """

    value: float

    def __post_init__(self) -> None:
        if not isinstance(self.value, Real):
            raise TypeError(f"instant value must be a number, got {type(self.value).__name__}")
        if self.value != self.value:  # NaN
            raise ValueError("instant value must not be NaN")

    @property
    def start(self) -> float:
        """Uniform accessor shared with :class:`~repro.temporal.interval.Interval`."""
        return self.value

    @property
    def end(self) -> float:
        return self.value

    @property
    def length(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Instant({self.value!r})"
