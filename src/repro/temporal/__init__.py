"""Temporal types and predicates.

STARK's ``STObject`` carries an optional temporal component which is
either an instant (a single timestamp) or an interval.  This package
provides both types plus the temporal predicates used by the combined
spatio-temporal predicate semantics (paper eqs. (1)-(3)) and the full
set of Allen interval relations as an extension.

Timestamps are plain numbers (the paper uses ``Long`` epoch values);
any totally ordered numeric type works.
"""

from repro.temporal.instant import Instant
from repro.temporal.interval import Interval, TemporalExpression, make_temporal
from repro.temporal.predicates import (
    AllenRelation,
    allen_relation,
    t_contains,
    t_contained_by,
    t_intersects,
)

__all__ = [
    "AllenRelation",
    "Instant",
    "Interval",
    "TemporalExpression",
    "allen_relation",
    "make_temporal",
    "t_contained_by",
    "t_contains",
    "t_intersects",
]
