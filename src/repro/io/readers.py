"""Event file parsing: the paper's ``(id, category, time, wkt)`` schema.

Files are delimiter-separated text (default ``;`` because WKT contains
commas), one event per line::

    42;accident;123456;POINT (13.4 52.5)

After loading, the pre-processing step from the paper's example turns
rows into ``(STObject, (id, category))`` pairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stobject import STObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext
    from repro.spark.rdd import RDD

DEFAULT_DELIMITER = ";"


class EventParseError(ValueError):
    """Raised for rows that do not match the event schema."""


def parse_event_line(
    line: str, delimiter: str = DEFAULT_DELIMITER
) -> tuple[int, str, float, str]:
    """Parse one ``id;category;time;wkt`` line into a typed tuple."""
    parts = line.split(delimiter, 3)
    if len(parts) != 4:
        raise EventParseError(
            f"expected 4 fields separated by {delimiter!r}, got {len(parts)}: {line!r}"
        )
    id_text, category, time_text, wkt = (p.strip() for p in parts)
    try:
        event_id = int(id_text)
    except ValueError:
        raise EventParseError(f"bad id {id_text!r} in line {line!r}") from None
    try:
        time = float(time_text)
    except ValueError:
        raise EventParseError(f"bad time {time_text!r} in line {line!r}") from None
    return (event_id, category, time, wkt)


def format_event_line(
    row: tuple[int, str, float, str], delimiter: str = DEFAULT_DELIMITER
) -> str:
    event_id, category, time, wkt = row
    return delimiter.join((str(event_id), category, repr(float(time)), wkt))


def write_event_file(
    rows, path: str, delimiter: str = DEFAULT_DELIMITER
) -> None:
    """Write event rows as a single flat text file."""
    with open(path, "w") as f:
        for row in rows:
            f.write(format_event_line(row, delimiter))
            f.write("\n")


def load_event_file(
    context: "SparkContext",
    path: str,
    delimiter: str = DEFAULT_DELIMITER,
    num_slices: int | None = None,
    on_error: str = "raise",
) -> "RDD":
    """Load an event file as ``RDD[(STObject, (id, category))]``.

    The returned RDD is exactly the shape of the paper's ``events``
    example: key the spatio-temporal object, value the payload.

    ``on_error`` controls malformed rows: ``"raise"`` (default) fails
    the job with the offending line in the message, ``"skip"`` drops
    bad rows silently -- the usual choice for dirty extraction output
    like the paper's text-mined events.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    lines = context.text_file(path, num_slices)

    def to_events(line: str):
        try:
            event_id, category, time, wkt = parse_event_line(line, delimiter)
            yield (STObject(wkt, time), (event_id, category))
        except (EventParseError, ValueError):
            if on_error == "raise":
                raise

    return lines.filter(lambda line: line.strip()).flat_map(to_events)
