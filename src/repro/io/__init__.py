"""Input/output and synthetic workload generation.

- :mod:`repro.io.readers` parses event files with the paper's schema
  ``(id, category, time, wkt)`` into STObject-keyed RDDs,
- :mod:`repro.io.datagen` generates the seeded synthetic datasets the
  benchmarks use: uniform, Gaussian-clustered ("events happen on land,
  not on sea"), world-like landmass mixtures, polygon sets, temporal
  event streams.
"""

from repro.io.datagen import (
    clustered_points,
    event_rows,
    random_polygons,
    uniform_points,
    world_events,
)
from repro.io.readers import load_event_file, parse_event_line, write_event_file

__all__ = [
    "clustered_points",
    "event_rows",
    "load_event_file",
    "parse_event_line",
    "random_polygons",
    "uniform_points",
    "world_events",
    "write_event_file",
]
