"""Seeded synthetic spatio-temporal workload generators.

These stand in for the paper's real-world datasets (Wikipedia events
and the 1M-point micro-benchmark input).  Each generator is
deterministic given its seed, so benchmark runs are reproducible.

The generators produce the two density regimes the evaluation depends
on:

- :func:`uniform_points` -- the even case where a fixed grid
  partitioner is adequate,
- :func:`clustered_points` / :func:`world_events` -- the skewed case
  the paper motivates ("events only occur on land, but not on sea")
  where the cost-based BSP partitioner pays off.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence

from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

DEFAULT_BOUNDS = Envelope(0.0, 0.0, 1000.0, 1000.0)


def uniform_points(
    n: int, bounds: Envelope = DEFAULT_BOUNDS, seed: int = 17
) -> list[Point]:
    """*n* points uniform over *bounds*."""
    rng = random.Random(seed)
    return [
        Point(rng.uniform(bounds.min_x, bounds.max_x), rng.uniform(bounds.min_y, bounds.max_y))
        for _ in range(n)
    ]


def clustered_points(
    n: int,
    num_clusters: int = 8,
    sigma_fraction: float = 0.02,
    bounds: Envelope = DEFAULT_BOUNDS,
    seed: int = 17,
    noise_fraction: float = 0.05,
) -> list[Point]:
    """*n* points in Gaussian blobs with a uniform noise floor.

    ``sigma_fraction`` scales the blob spread relative to the universe
    diagonal; ``noise_fraction`` of points are uniform background.
    Points are clamped into *bounds* so partitioner universes stay tight.
    """
    rng = random.Random(seed)
    sigma = sigma_fraction * math.hypot(bounds.width, bounds.height)
    centers = [
        (rng.uniform(bounds.min_x, bounds.max_x), rng.uniform(bounds.min_y, bounds.max_y))
        for _ in range(num_clusters)
    ]
    points: list[Point] = []
    for _ in range(n):
        if rng.random() < noise_fraction:
            x = rng.uniform(bounds.min_x, bounds.max_x)
            y = rng.uniform(bounds.min_y, bounds.max_y)
        else:
            cx, cy = rng.choice(centers)
            x = min(max(rng.gauss(cx, sigma), bounds.min_x), bounds.max_x)
            y = min(max(rng.gauss(cy, sigma), bounds.min_y), bounds.max_y)
        points.append(Point(x, y))
    return points


#: Hand-placed "continents" (fractions of the universe) used by
#: :func:`world_events`: events land inside these, the rest is "sea".
_LANDMASSES = (
    (0.05, 0.45, 0.30, 0.95),  # north-west block
    (0.15, 0.05, 0.35, 0.40),  # south-west block
    (0.45, 0.35, 0.60, 0.90),  # central block
    (0.55, 0.05, 0.75, 0.30),  # southern block
    (0.65, 0.45, 0.95, 0.85),  # eastern block
)


def world_events(
    n: int, bounds: Envelope = DEFAULT_BOUNDS, seed: int = 17
) -> list[Point]:
    """Events on "land" only: the world-map skew from the paper's example.

    A fixed grid over this distribution produces empty "sea" cells and
    overfull "city" cells; BSP equalizes the cost.
    """
    rng = random.Random(seed)
    land = [
        Envelope(
            bounds.min_x + fx0 * bounds.width,
            bounds.min_y + fy0 * bounds.height,
            bounds.min_x + fx1 * bounds.width,
            bounds.min_y + fy1 * bounds.height,
        )
        for fx0, fy0, fx1, fy1 in _LANDMASSES
    ]
    # Population is uneven across landmasses: a few dense "urban" spots.
    hotspots = []
    for mass in land:
        for _ in range(3):
            hotspots.append(
                (
                    rng.uniform(mass.min_x, mass.max_x),
                    rng.uniform(mass.min_y, mass.max_y),
                    0.03 * min(mass.width, mass.height) + 1e-9,
                )
            )
    points: list[Point] = []
    while len(points) < n:
        if rng.random() < 0.7:
            cx, cy, spread = rng.choice(hotspots)
            x, y = rng.gauss(cx, spread), rng.gauss(cy, spread)
        else:
            mass = rng.choice(land)
            x = rng.uniform(mass.min_x, mass.max_x)
            y = rng.uniform(mass.min_y, mass.max_y)
        if any(mass.contains_point(x, y) for mass in land):
            points.append(Point(x, y))
    return points


def random_polygons(
    n: int,
    bounds: Envelope = DEFAULT_BOUNDS,
    mean_radius_fraction: float = 0.01,
    vertices: int = 8,
    seed: int = 17,
) -> list[Polygon]:
    """*n* random convex-ish polygons (regular n-gons with jittered radii)."""
    rng = random.Random(seed)
    mean_radius = mean_radius_fraction * math.hypot(bounds.width, bounds.height)
    polygons: list[Polygon] = []
    for _ in range(n):
        cx = rng.uniform(bounds.min_x, bounds.max_x)
        cy = rng.uniform(bounds.min_y, bounds.max_y)
        ring = []
        for v in range(vertices):
            angle = 2 * math.pi * v / vertices
            radius = mean_radius * rng.uniform(0.5, 1.5)
            ring.append((cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
        polygons.append(Polygon(ring))
    return polygons


def event_rows(
    points: Sequence[Point],
    time_range: tuple[float, float] = (0.0, 1_000_000.0),
    categories: Sequence[str] = ("accident", "concert", "protest", "sports"),
    seed: int = 17,
    interval_fraction: float = 0.0,
) -> list[tuple[int, str, float, str]]:
    """Wrap points into the paper's input schema ``(id, category, time, wkt)``.

    ``interval_fraction`` of rows get a duration (the reader turns those
    into Interval-timed STObjects); the rest are instants.
    """
    rng = random.Random(seed)
    lo, hi = time_range
    rows = []
    for i, point in enumerate(points):
        t = rng.uniform(lo, hi)
        rows.append((i, rng.choice(categories), t, point.wkt()))
    if interval_fraction > 0:
        # Durations are encoded out-of-band by the caller; rows stay
        # instant-shaped for schema fidelity.
        pass
    return rows


def timed_stobjects(
    points: Sequence[Point],
    time_range: tuple[float, float] = (0.0, 1_000_000.0),
    seed: int = 17,
    interval_fraction: float = 0.0,
    max_duration: float = 10_000.0,
) -> Iterator[STObject]:
    """Points wrapped as STObjects with instants or intervals."""
    rng = random.Random(seed)
    lo, hi = time_range
    for point in points:
        start = rng.uniform(lo, hi)
        if rng.random() < interval_fraction:
            yield STObject(point, start, start + rng.uniform(0, max_duration))
        else:
            yield STObject(point, start)
