"""GeoJSON input/output (RFC 7946).

The paper's event data comes from text extraction; modern pipelines
exchange such data as GeoJSON.  This module maps between the engine's
geometries/STObjects and GeoJSON:

- geometry <-> ``{"type": "Point", "coordinates": [...]}`` for all seven
  OGC types plus GeometryCollection,
- ``(STObject, properties)`` <-> GeoJSON *Feature* -- the temporal
  component travels in the reserved properties ``repro:time_start`` /
  ``repro:time_end`` (an instant has equal values),
- feature collections <-> files, plus :func:`load_geojson` producing the
  standard ``RDD[(STObject, dict)]`` shape.
"""

from __future__ import annotations

import json
from typing import Any, TYPE_CHECKING

from repro.core.stobject import STObject
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.temporal.instant import Instant
from repro.temporal.interval import Interval

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext
    from repro.spark.rdd import RDD

TIME_START_KEY = "repro:time_start"
TIME_END_KEY = "repro:time_end"


class GeoJSONError(ValueError):
    """Raised for malformed GeoJSON input."""


# ---------------------------------------------------------------------------
# geometry <-> geojson
# ---------------------------------------------------------------------------


def geometry_to_geojson(geom: Geometry) -> dict[str, Any]:
    """Encode a geometry as a GeoJSON geometry object."""
    if isinstance(geom, Point):
        if geom.is_empty:
            return {"type": "Point", "coordinates": []}
        return {"type": "Point", "coordinates": [geom.x, geom.y]}
    if isinstance(geom, Polygon):
        return {
            "type": "Polygon",
            "coordinates": [
                [list(c) for c in ring.coords] for ring in geom.rings()
            ],
        }
    if isinstance(geom, LineString):  # after Polygon check (LinearRing!)
        return {
            "type": "LineString",
            "coordinates": [list(c) for c in geom.coords],
        }
    if isinstance(geom, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [[p.x, p.y] for p in geom.geoms],
        }
    if isinstance(geom, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [[list(c) for c in ls.coords] for ls in geom.geoms],
        }
    if isinstance(geom, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [
                [[list(c) for c in ring.coords] for ring in poly.rings()]
                for poly in geom.geoms
            ],
        }
    if isinstance(geom, GeometryCollection):
        return {
            "type": "GeometryCollection",
            "geometries": [geometry_to_geojson(g) for g in geom.geoms],
        }
    raise TypeError(f"cannot encode {type(geom).__name__} as GeoJSON")


def geojson_to_geometry(obj: dict[str, Any]) -> Geometry:
    """Decode a GeoJSON geometry object."""
    if not isinstance(obj, dict) or "type" not in obj:
        raise GeoJSONError(f"not a GeoJSON geometry: {obj!r}")
    kind = obj["type"]
    try:
        if kind == "GeometryCollection":
            return GeometryCollection(
                [geojson_to_geometry(g) for g in obj["geometries"]]
            )
        coords = obj["coordinates"]
        if kind == "Point":
            return Point(*coords[:2]) if coords else Point()
        if kind == "LineString":
            return LineString([tuple(c[:2]) for c in coords])
        if kind == "Polygon":
            return (
                Polygon(coords[0], coords[1:]) if coords else Polygon()
            )
        if kind == "MultiPoint":
            return MultiPoint([Point(*c[:2]) for c in coords])
        if kind == "MultiLineString":
            return MultiLineString(
                [LineString([tuple(p[:2]) for p in line]) for line in coords]
            )
        if kind == "MultiPolygon":
            return MultiPolygon(
                [Polygon(rings[0], rings[1:]) for rings in coords]
            )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise GeoJSONError(f"malformed {kind} geometry: {error}") from error
    raise GeoJSONError(f"unknown GeoJSON geometry type {kind!r}")


# ---------------------------------------------------------------------------
# features
# ---------------------------------------------------------------------------


def feature_from(st_object: STObject, properties: dict[str, Any] | None = None) -> dict:
    """Encode an STObject (and payload properties) as a GeoJSON Feature."""
    props = dict(properties or {})
    if st_object.time is not None:
        props[TIME_START_KEY] = st_object.time.start
        props[TIME_END_KEY] = st_object.time.end
    return {
        "type": "Feature",
        "geometry": geometry_to_geojson(st_object.geo),
        "properties": props,
    }


def feature_to(obj: dict[str, Any]) -> tuple[STObject, dict[str, Any]]:
    """Decode a GeoJSON Feature into (STObject, properties)."""
    if obj.get("type") != "Feature":
        raise GeoJSONError(f"not a GeoJSON Feature: {obj.get('type')!r}")
    geom = geojson_to_geometry(obj.get("geometry") or {})
    props = dict(obj.get("properties") or {})
    start = props.pop(TIME_START_KEY, None)
    end = props.pop(TIME_END_KEY, None)
    if start is None:
        time = None
    elif end is None or end == start:
        time = Instant(start)
    else:
        time = Interval(start, end)
    return (STObject(geom, time), props)


def write_geojson(rows, path: str) -> None:
    """Write ``(STObject, properties)`` pairs as a FeatureCollection file."""
    collection = {
        "type": "FeatureCollection",
        "features": [feature_from(st, props) for st, props in rows],
    }
    with open(path, "w") as f:
        json.dump(collection, f)


def read_geojson(path: str) -> list[tuple[STObject, dict[str, Any]]]:
    """Read a FeatureCollection file into ``(STObject, properties)`` pairs."""
    with open(path) as f:
        data = json.load(f)
    if data.get("type") != "FeatureCollection":
        raise GeoJSONError(
            f"expected a FeatureCollection, got {data.get('type')!r}"
        )
    return [feature_to(feature) for feature in data.get("features", [])]


def load_geojson(
    context: "SparkContext", path: str, num_slices: int | None = None
) -> "RDD":
    """Load a FeatureCollection as ``RDD[(STObject, dict)]``."""
    rows = read_geojson(path)
    return context.parallelize(rows, num_slices or context.default_parallelism)
