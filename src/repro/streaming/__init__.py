"""Micro-batch spatio-temporal event streaming.

The event-processing layer of the reproduction: STARK runs its
operators over Spark Streaming's discretized-stream model, and this
package is that model over the local batch engine.  A
:class:`StreamingContext` wraps a :class:`~repro.spark.context.
SparkContext` and chops unbounded sources into micro-batches; each
batch flows through lazy :class:`DStream` transformation chains whose
spatial face (:class:`SpatialDStream`) carries the paper's predicate
filters, stream-static joins against a broadcast R-tree, and
event-time windows over which the batch kNN and DBSCAN operators run
unchanged.

With a ``checkpoint_dir`` the stream is crash-recoverable: polled
batches are journaled to a CRC-framed write-ahead log before they touch
state, the full streaming state checkpoints atomically on a batch
cadence, and :meth:`StreamingContext.restore` resumes a freshly
declared pipeline by replaying the WAL tail -- with an emitted-window
ledger suppressing re-delivery of windows the crashed run already
emitted (:mod:`repro.streaming.checkpoint`,
:mod:`repro.streaming.recovery`).  Durable per-window sinks with
commit-marker dedup live in :mod:`repro.streaming.sinks`.

Under overload the stream degrades gracefully instead of failing:
admission-control shed policies bound the pending-batch queue
(:mod:`repro.streaming.overload`), a per-store memory budget spills
cold grid cells to disk (:mod:`repro.streaming.state`), sink circuit
breakers route undeliverable windows to a durable dead-letter queue
(:mod:`repro.streaming.dlq`) that :func:`dlq_replay` drains once the
sink heals, and the whole ladder (``healthy -> shedding -> spilling ->
circuit-open``) surfaces through :class:`StreamMetrics`.

Patterns *across* events -- geofence entry/exit sequences, absent
heartbeats per region, windowed counts and aggregates with spatial
guards -- are the CEP layer (:mod:`repro.streaming.cep`): declarative
rules built with :func:`sequence` / :func:`absence` / :func:`count` /
:func:`aggregate` register through :meth:`SpatialDStream.patterns` and
match incrementally with their state in the same keyed store,
checkpointed and recovered like every other consumer.

Typical use::

    from repro.spark.context import SparkContext
    from repro.streaming import StreamingContext

    sc = SparkContext(parallelism=4)
    ssc = StreamingContext(sc, batch_interval=0.1)
    source, events = ssc.queue_stream()
    hotspots = events.window(length=10.0).hotspots(eps=1.0, min_pts=3)
    source.push(batch_of_records)
    ssc.run_batch(batch_time=0.0)
    ssc.stop()
"""

from repro.streaming.cep import (
    CepConsumer,
    EventPattern,
    Match,
    PatternStream,
    RuleError,
    absence,
    aggregate,
    brute_force_matches,
    count,
    sequence,
    step,
)
from repro.streaming.checkpoint import (
    CheckpointManager,
    WalCorruptionError,
    WalWriter,
    load_latest_checkpoint,
    read_wal,
)
from repro.streaming.context import (
    STRAGGLER_POLICIES,
    StreamingContext,
    StreamingError,
    StreamMetrics,
)
from repro.streaming.dlq import DeadLetterQueue, dlq_replay
from repro.streaming.overload import (
    DEGRADATION_LEVELS,
    SHED_POLICIES,
    CircuitBreaker,
    degradation_level,
    sample_decision,
)
from repro.streaming.recovery import RecoveryReport, build_snapshot, restore_context
from repro.streaming.dstream import (
    ContinuousWindowedStream,
    DStream,
    Sink,
    SpatialDStream,
    SpatialWindowedStream,
    WindowedStream,
)
from repro.streaming.operators import (
    StaticPredicate,
    build_static_index,
    broadcast_static_index,
    relax_static,
    stream_static_join,
    within_distance_join_plan,
)
from repro.streaming.sinks import (
    EventFileSink,
    GeoJSONSink,
    ObjectFileSink,
    WindowSink,
)
from repro.streaming.sources import (
    DirectorySource,
    GeneratorSource,
    QueueSource,
    StreamSource,
)
from repro.streaming.state import (
    CellState,
    ContinuousJoinStatic,
    ContinuousKnn,
    ContinuousQuery,
    ContinuousRange,
    KeyedStateStore,
    KeyedWindowState,
    SpilledCell,
    StateConsumer,
    estimate_record_bytes,
)
from repro.streaming.window import Window, WindowSpec, WindowState, event_span

__all__ = [
    "STRAGGLER_POLICIES",
    "StreamingContext",
    "StreamingError",
    "StreamMetrics",
    "DStream",
    "SpatialDStream",
    "WindowedStream",
    "SpatialWindowedStream",
    "ContinuousWindowedStream",
    "Sink",
    "CellState",
    "KeyedStateStore",
    "KeyedWindowState",
    "StateConsumer",
    "ContinuousQuery",
    "ContinuousRange",
    "ContinuousKnn",
    "ContinuousJoinStatic",
    "Window",
    "WindowSpec",
    "WindowState",
    "event_span",
    "StreamSource",
    "QueueSource",
    "DirectorySource",
    "GeneratorSource",
    "StaticPredicate",
    "build_static_index",
    "broadcast_static_index",
    "relax_static",
    "stream_static_join",
    "within_distance_join_plan",
    "CheckpointManager",
    "WalWriter",
    "WalCorruptionError",
    "read_wal",
    "load_latest_checkpoint",
    "RecoveryReport",
    "build_snapshot",
    "restore_context",
    "WindowSink",
    "EventFileSink",
    "GeoJSONSink",
    "ObjectFileSink",
    "SHED_POLICIES",
    "DEGRADATION_LEVELS",
    "CircuitBreaker",
    "degradation_level",
    "sample_decision",
    "DeadLetterQueue",
    "dlq_replay",
    "SpilledCell",
    "estimate_record_bytes",
    "CepConsumer",
    "EventPattern",
    "Match",
    "PatternStream",
    "RuleError",
    "absence",
    "aggregate",
    "brute_force_matches",
    "count",
    "sequence",
    "step",
]
