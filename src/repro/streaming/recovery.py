"""Crash recovery: restore a streaming context to replay-equivalence.

The restart half of :mod:`repro.streaming.checkpoint`.  A crashed
streaming process leaves two durable artifacts -- checkpoint epochs and
the write-ahead log tail past the newest checkpoint's high-water mark
-- and this module turns them back into a running context whose
observable output is *identical* to a process that never crashed:

1. **Load** the newest checkpoint that validates, falling back epoch by
   epoch on corruption (:func:`~repro.streaming.checkpoint.
   load_latest_checkpoint`); with no usable checkpoint, recovery starts
   from empty state and the whole WAL is the tail.
2. **Restore** the snapshot into a freshly declared, identical
   pipeline: batch-id counter, stream metrics, every window/keyed
   consumer's state (per-cell R-trees rebuild lazily on first use --
   they are never serialized) and every source's cursor.
3. **Replay** the WAL tail through the completely ordinary
   batch-processing core -- each journaled batch re-runs outputs,
   window absorption and firing exactly as live batches do, applying
   the journaled cursor deltas as it goes -- while the emitted-window
   ledger suppresses re-emission of windows the crashed process already
   delivered, and the shed ledger turns batches the live run dropped at
   admission back into sheds (counters advance, records stay
   unapplied).  Replayed processing is real processing, so recovered
   state is *replay-equivalent*, not approximately restored.

The contract the caller must hold: the restored context's pipeline
(sources, streams, windows, continuous queries) is declared in the same
order as the crashed run's.  Registration order is the durable identity
of every consumer; recovery validates the counts and fails loudly on a
mismatch rather than mis-wiring state.

The ``recovery.load`` chaos site fires at entry, *before any mutation*:
an injected recovery fault leaves the fresh context untouched, so the
caller can retry restore -- recovery itself is idempotent until it
starts mutating, and replay re-runs are absorbed by the per-batch-id
idempotence of window absorption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streaming.context import StreamingContext, StreamingError, _Batch


@dataclass
class RecoveryReport:
    """What one :meth:`StreamingContext.restore` call actually did."""

    #: Epoch of the checkpoint restored from (None: no usable checkpoint,
    #: recovery replayed the whole WAL from empty state).
    epoch: int | None
    #: Damaged checkpoint epochs skipped before one validated.
    corrupt_checkpoints_skipped: int
    #: WAL-journaled batches re-processed through the batch core.
    batches_replayed: int
    #: Ledger windows whose re-emission was suppressed during replay.
    windows_suppressed: int
    #: The batch id the resumed stream will assign next.
    resumed_batch_id: int
    #: Journaled batches the shed ledger says the crashed run dropped
    #: at admission -- replayed as sheds (counters advance, records
    #: are never applied), mirroring the live run exactly.
    sheds_replayed: int = 0


def build_snapshot(ssc: StreamingContext) -> dict:
    """The full checkpointable state of a streaming context.

    Everything a restart cannot re-derive from the re-declared pipeline:
    the batch-id counter, metrics, each consumer's window/keyed state
    and each source's cursor.  Consumers and sources are stored by
    registration order -- their durable identity.
    """
    return {
        "format": 1,
        "next_batch_id": ssc._next_batch_id,
        "metrics": ssc.metrics.snapshot(),
        "consumers": [consumer.snapshot_state() for consumer in ssc._windows],
        "sources": [node.source.cursor() for node in ssc._inputs],
    }


def _apply_snapshot(ssc: StreamingContext, snapshot: dict) -> None:
    """Restore one :func:`build_snapshot` into a fresh context."""
    if snapshot.get("format") != 1:
        raise StreamingError(
            f"unsupported checkpoint snapshot format {snapshot.get('format')!r}"
        )
    consumers = snapshot["consumers"]
    sources = snapshot["sources"]
    if len(consumers) != len(ssc._windows):
        raise StreamingError(
            f"checkpoint has {len(consumers)} window consumer(s) but the "
            f"declared pipeline registers {len(ssc._windows)} -- restore "
            "requires the pipeline to be re-declared identically"
        )
    if len(sources) != len(ssc._inputs):
        raise StreamingError(
            f"checkpoint has {len(sources)} source cursor(s) but the "
            f"declared pipeline registers {len(ssc._inputs)} input(s)"
        )
    ssc._next_batch_id = snapshot["next_batch_id"]
    for name, value in snapshot["metrics"].items():
        if name in ssc.metrics.__dataclass_fields__:
            setattr(ssc.metrics, name, value)
    for consumer, state in zip(ssc._windows, consumers):
        consumer.restore_state(state)
    for node, cursor in zip(ssc._inputs, sources):
        if cursor is not None:
            node.source.restore_cursor(cursor)


def restore_context(
    ssc: StreamingContext, checkpoint_dir: str | None = None
) -> RecoveryReport:
    """Load checkpoint + replay WAL tail; see the module docstring.

    Called through :meth:`StreamingContext.restore`.  The context must
    be fresh -- pipeline declared, nothing driven yet.
    """
    if ssc._started:
        raise StreamingError("cannot restore a started StreamingContext")
    if ssc._stopped:
        raise StreamingError("cannot restore a stopped StreamingContext")
    if ssc._next_batch_id != 0 or ssc.metrics.batches_run != 0:
        raise StreamingError(
            "restore requires a fresh context: declare the pipeline, "
            "call restore(), then drive batches"
        )
    if checkpoint_dir is not None:
        if ssc._ckpt is None:
            from repro.streaming.checkpoint import CheckpointManager

            ssc._ckpt = CheckpointManager(
                checkpoint_dir,
                injector_source=lambda: ssc.spark_context.fault_injector,
            )
        elif ssc._ckpt.directory != checkpoint_dir:
            raise StreamingError(
                f"restore directory {checkpoint_dir!r} disagrees with the "
                f"context's checkpoint_dir {ssc._ckpt.directory!r}"
            )
    if ssc._ckpt is None:
        raise StreamingError(
            "restore needs a checkpoint directory (constructor "
            "checkpoint_dir or the restore(checkpoint_dir=...) argument)"
        )

    # The chaos site fires before any mutation: a failed restore leaves
    # the fresh context untouched and the caller simply retries.
    injector = ssc.spark_context.fault_injector
    if injector is not None:
        injector.check("recovery.load", key=ssc._ckpt.directory)

    manager = ssc._ckpt
    epoch: int | None = None
    skipped = 0
    high_water = -1
    loaded = manager.load_latest()
    if loaded is not None:
        snapshot, manifest, skipped = loaded
        epoch = manifest["epoch"]
        high_water = manifest["wal_high_water"]
        _apply_snapshot(ssc, snapshot)

    batches, emitted, shed = manager.read_tail(high_water)
    ssc._suppress = set(emitted)

    # Ids below the snapshot's batch counter were polled -- and their
    # poll/ingest/shed counters advanced -- before the snapshot was
    # taken (polling assigns ids monotonically), even when the batch
    # itself sat in the pending queue past the high-water mark.  Only
    # strictly newer ids advance counters again during replay.
    polled_high = ssc._next_batch_id
    replayed = sheds_replayed = 0
    manager.replaying = True
    try:
        for record in batches:
            batch_id = record["batch_id"]
            inputs = record["inputs"]
            cursors = record["cursors"]
            # Cursor deltas apply to shed batches too: the live run's
            # poll moved the cursor before admission dropped the batch.
            for node, delta in zip(ssc._inputs, cursors):
                if delta is not None:
                    node.source.apply_delta(delta)
            records = {
                id(node): list(rows) for node, rows in zip(ssc._inputs, inputs)
            }
            batch = _Batch(batch_id, record["time"], records)
            fresh = batch_id >= polled_high
            if fresh:
                # Replay is re-ingestion: the poll counters advance the
                # way the crashed process's did after its last snapshot.
                ssc.metrics.polls += len(inputs)
                ssc.metrics.records_ingested += batch.total_records
            if batch_id in shed:
                # The shed ledger says the live run dropped this batch
                # at admission: never apply its records.
                if fresh:
                    ssc.metrics.batches_shed += 1
                    ssc.metrics.records_shed += batch.total_records
                sheds_replayed += 1
                continue
            ssc._process(batch)
            ssc.metrics.batches_replayed += 1
            replayed += 1
            if ssc._error is not None:
                raise ssc._error
    finally:
        manager.replaying = False

    resumed = max(
        ssc._next_batch_id,
        high_water + 1,
        (batches[-1]["batch_id"] + 1) if batches else 0,
    )
    ssc._next_batch_id = resumed
    ssc._ladder_shed_seen = ssc.metrics.batches_shed
    return RecoveryReport(
        epoch=epoch,
        corrupt_checkpoints_skipped=skipped,
        batches_replayed=replayed,
        windows_suppressed=len(emitted),
        resumed_batch_id=resumed,
        sheds_replayed=sheds_replayed,
    )
