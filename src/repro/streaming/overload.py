"""Overload policy primitives: load shedding and sink circuit breakers.

The streaming layer's only pre-existing overload response was the
blocking bounded queue between poller and processor -- correct, but a
stall, not a policy.  This module holds the two small mechanisms the
graceful-degradation story is built from; the
:class:`~repro.streaming.context.StreamingContext` wires them into the
ingest and delivery edges.

**Load shedding** (:data:`SHED_POLICIES`).  When the pending-batch
queue is full, the admission policy decides what gives:

- ``"block"`` -- the historical behaviour: the poller waits for the
  processor (counted in ``backpressure_waits``); nothing is ever
  dropped.
- ``"shed_oldest"`` -- evict the oldest *pending* batch to admit the
  incoming one: freshest data wins, the sliding-dashboard policy.
- ``"shed_newest"`` -- drop the incoming batch: in-flight work wins,
  the batch-ETL policy.
- ``"sample"`` -- a deterministic seeded coin per incoming batch
  (:func:`sample_decision`): keep the newcomer (evicting the oldest)
  with probability ``sample_keep``, shed it otherwise.  Seeded by
  ``(shed_seed, batch_id)``, so two runs over the same stream shed the
  *same* batches -- reproducible degradation.

Shedding is watermark-safe by construction: whole batches are shed
before any record reaches window state, so a shed can never advance a
watermark past records that were dropped.  Every shed is journaled
(``kind="shed"`` WAL records) and counted (``batches_shed`` /
``records_shed``), never silent.

**Circuit breaking** (:class:`CircuitBreaker`).  A sink that fails
persistently must not take the stream down with it.  The breaker wraps
a sink's delivery with the classic three-state machine: ``closed``
(normal delivery), ``open`` after ``failure_threshold`` consecutive
failures (windows route straight to the dead-letter queue for
``cooldown_windows`` deliveries), then ``half_open`` (one probe window
is attempted; success closes the breaker, failure re-opens it).  The
cooldown is counted in *routed windows*, not wall time, so tests and
replays are deterministic.

**The degradation ladder** (:data:`DEGRADATION_LEVELS`).  A single
word summarizing how hard the stream is currently degrading --
``healthy < shedding < spilling < circuit-open`` -- computed by
:func:`degradation_level` from the live shed/spill/breaker signals and
surfaced through ``StreamMetrics.degradation``, batch spans and the
evaluation report.
"""

from __future__ import annotations

import random

#: Admission policies for a full pending-batch queue (see module doc).
SHED_POLICIES = ("block", "shed_oldest", "shed_newest", "sample")

#: The degradation ladder, mildest first; the stream reports the worst
#: rung any live signal currently justifies.
DEGRADATION_LEVELS = ("healthy", "shedding", "spilling", "circuit-open")


def sample_decision(shed_seed: int, batch_id: int, sample_keep: float) -> bool:
    """The ``"sample"`` policy's coin: True keeps the incoming batch.

    One fresh seeded draw per ``(shed_seed, batch_id)`` pair -- not a
    shared RNG stream -- so the decision for a given batch id is
    independent of how many batches were shed before it.  That is what
    makes sheds replayable: a restored run facing the same overload
    sheds exactly the same batch ids.
    """
    # random.Random rejects tuple seeds; fold the pair into one int.
    return random.Random((shed_seed << 32) ^ batch_id).random() < sample_keep


class CircuitBreaker:
    """A count-based three-state circuit breaker for window sinks.

    ``allow()`` is consulted once per window delivery; ``record_success``
    / ``record_failure`` report the outcome of deliveries that were
    allowed.  State machine:

    - **closed**: deliveries pass; ``failure_threshold`` *consecutive*
      failures trip the breaker open (one success resets the streak).
    - **open**: deliveries are refused (the sink dead-letters them)
      until ``cooldown_windows`` refusals have been served, then the
      next delivery is allowed as a half-open probe.
    - **half_open**: exactly one probe is in flight; its success closes
      the breaker, its failure re-opens it for a fresh cooldown.

    Cooldown is counted in windows rather than seconds so behaviour is
    identical under synchronous test drives, WAL replay and live runs.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_windows: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_windows < 1:
            raise ValueError(f"cooldown_windows must be >= 1, got {cooldown_windows}")
        self.failure_threshold = failure_threshold
        self.cooldown_windows = cooldown_windows
        #: ``"closed"``, ``"open"`` or ``"half_open"``.
        self.state = "closed"
        self._consecutive_failures = 0
        self._cooldown_served = 0
        #: Times the breaker tripped open (including probe failures).
        self.opens = 0
        #: Half-open probe deliveries attempted.
        self.probes = 0
        #: Deliveries refused while open (each routed to the DLQ).
        self.refusals = 0

    def allow(self) -> bool:
        """May the next window be delivered to the sink right now?

        While open, each refusal advances the cooldown; once
        ``cooldown_windows`` refusals have been served the next call is
        granted as the half-open probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._cooldown_served >= self.cooldown_windows:
                self.state = "half_open"
                self.probes += 1
                return True
            self._cooldown_served += 1
            self.refusals += 1
            return False
        # half_open: one probe is already in flight; refuse the rest.
        self.refusals += 1
        return False

    def record_success(self) -> None:
        """An allowed delivery committed: close and reset the breaker."""
        self.state = "closed"
        self._consecutive_failures = 0
        self._cooldown_served = 0

    def record_failure(self) -> None:
        """An allowed delivery failed terminally (retries exhausted).

        Trips the breaker when the consecutive-failure streak reaches
        the threshold, and immediately re-opens a failed half-open
        probe.
        """
        self._consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed"
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self._cooldown_served = 0
            self.opens += 1

    def snapshot(self) -> dict:
        """The breaker's counters and state, for metrics and reports."""
        return {
            "state": self.state,
            "opens": self.opens,
            "probes": self.probes,
            "refusals": self.refusals,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, opens={self.opens}, "
            f"threshold={self.failure_threshold})"
        )


def degradation_level(
    shedding: bool, spilling: bool, circuit_open: bool
) -> str:
    """The worst ladder rung the live signals justify (see module doc)."""
    if circuit_open:
        return "circuit-open"
    if spilling:
        return "spilling"
    if shedding:
        return "shedding"
    return "healthy"
