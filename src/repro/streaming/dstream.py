"""Discretized streams: per-batch transformation chains and windows.

A :class:`DStream` is a lazy description of what to do with every
micro-batch: a chain of RDD transformations rooted at an input stream.
Nothing runs at definition time -- the
:class:`~repro.streaming.context.StreamingContext` walks the registered
*outputs* once per batch, building each batch's RDD through the chain
and running the output action, exactly like Spark Streaming's
``foreachRDD`` model.

:class:`SpatialDStream` is the spatio-temporal face of the same idea
(streams here are ``(STObject, value)`` pairs): per-batch predicate
filters reuse :mod:`repro.core.filter`, the stream-static joins reuse
:mod:`repro.streaming.operators`, and :meth:`SpatialDStream.window`
moves from per-batch to per-event-time-window processing, where the
windowed kNN and DBSCAN operators run the batch implementations over
each closed window's records.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Iterable, Iterator

from repro.core import filter as filter_ops
from repro.core import knn as knn_ops
from repro.core.clustering.mr_dbscan import dbscan
from repro.core.predicates import (
    CONTAINED_BY,
    CONTAINS,
    INTERSECTS,
    STPredicate,
    resolve_predicate,
    within_distance_predicate,
)
from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean
from repro.spark.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.streaming.operators import (
    broadcast_static_index,
    relax_static,
    stream_static_join,
    within_distance_join_plan,
)
from repro.streaming.window import Window, WindowSpec, WindowState

Record = tuple[STObject, Any]


class Sink:
    """A thread-safe ordered collector for stream results.

    Outputs append ``(tag, value)`` pairs -- the tag is a batch id for
    per-batch sinks and a :class:`~repro.streaming.window.Window` for
    windowed sinks.  ``results()`` snapshots under the lock, so a test
    or dashboard can read while the stream is running.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[tuple[Any, Any]] = []

    def append(self, tag: Any, value: Any) -> None:
        """Record one result (called by the streaming engine)."""
        with self._lock:
            self._items.append((tag, value))

    def results(self) -> list[tuple[Any, Any]]:
        """A snapshot of everything collected so far, in emit order."""
        with self._lock:
            return list(self._items)

    def values(self) -> list[Any]:
        """Just the collected values, in emit order."""
        with self._lock:
            return [value for _tag, value in self._items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class DStream:
    """A lazy per-batch transformation chain (see module docstring).

    Instances are immutable descriptions; every transformation returns
    a new node pointing back at its parent.  Subclasses propagate their
    type so :class:`SpatialDStream` chains stay spatial.
    """

    def __init__(
        self,
        ssc,
        parent: "DStream | None" = None,
        transform_fn: Callable[[RDD], RDD] | None = None,
        name: str = "dstream",
    ) -> None:
        self._ssc = ssc
        self._parent = parent
        self._transform_fn = transform_fn
        self.name = name

    # -- batch plumbing ----------------------------------------------------

    def _input_root(self) -> "DStream":
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    def _compute(self, base_rdds: dict[int, RDD]) -> RDD:
        """Build this node's RDD for one batch from the input base RDDs."""
        if self._parent is None:
            return base_rdds[id(self)]
        rdd = self._parent._compute(base_rdds)
        return self._transform_fn(rdd) if self._transform_fn else rdd

    def _derived_type(self) -> type:
        """The class derived nodes take (input roots override: their
        constructor signature differs, but their children are ordinary
        chain nodes)."""
        return type(self)

    def _derive(self, transform_fn: Callable[[RDD], RDD], name: str) -> "DStream":
        return self._derived_type()(self._ssc, self, transform_fn, name=name)

    # -- transformations ---------------------------------------------------

    def map(self, fn: Callable) -> "DStream":
        """Apply *fn* to every record of every batch."""
        return self._derive(lambda rdd: rdd.map(fn), f"{self.name}.map")

    def filter(self, pred: Callable) -> "DStream":
        """Keep the records of every batch that satisfy *pred*."""
        return self._derive(lambda rdd: rdd.filter(pred), f"{self.name}.filter")

    def flat_map(self, fn: Callable) -> "DStream":
        """Map each record to zero or more records."""
        return self._derive(lambda rdd: rdd.flat_map(fn), f"{self.name}.flat_map")

    def map_partitions(self, fn: Callable[[Iterator], Iterable]) -> "DStream":
        """Apply a per-partition transformation to every batch."""
        return self._derive(lambda rdd: rdd.map_partitions(fn), f"{self.name}.map_partitions")

    def transform(self, fn: Callable[[RDD], RDD]) -> "DStream":
        """Apply an arbitrary RDD-to-RDD function to every batch.

        The escape hatch into the full batch API: anything expressible
        over an RDD -- joins, repartitioning, the spatial operators --
        becomes a streaming transformation.
        """
        return self._derive(fn, f"{self.name}.transform")

    # -- outputs -----------------------------------------------------------

    def for_each_rdd(self, fn: Callable[[int, RDD], None]) -> None:
        """Run ``fn(batch_id, rdd)`` on every batch (the terminal output).

        Registering an output is what makes a chain *run*; a DStream
        with no outputs (and no window consumers) is never computed.
        """
        self._ssc._register_output(self, fn)

    def collect_batches(self) -> Sink:
        """Collect every batch's records into a :class:`Sink`.

        Returns the sink; each batch appends ``(batch_id, records)``.
        """
        sink = Sink()
        self.for_each_rdd(lambda batch_id, rdd: sink.append(batch_id, rdd.collect()))
        return sink

    def count_batches(self) -> Sink:
        """Collect every batch's record count into a :class:`Sink`."""
        sink = Sink()
        self.for_each_rdd(lambda batch_id, rdd: sink.append(batch_id, rdd.count()))
        return sink

    # -- windowing ---------------------------------------------------------

    def window(
        self,
        length: float,
        slide: float | None = None,
        lateness: float = 0.0,
        origin: float = 0.0,
    ) -> "WindowedStream":
        """Group this stream's records into event-time windows.

        ``length``/``slide`` select tumbling (default) or sliding
        windows; ``lateness`` is how far the watermark trails the
        maximum event time seen, i.e. how much out-of-order arrival the
        stream absorbs before a window closes.  The temporal component
        of each record decides membership (interval-timed events join
        every window they overlap -- the paper's eq. (1) semantics);
        untimed records fall back to their batch's ingestion time.
        """
        spec = WindowSpec(length, slide, origin)
        consumer = _WindowConsumer(self, WindowState(spec, lateness))
        self._ssc._register_window(consumer)
        return WindowedStream(self._ssc, consumer)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SpatialDStream(DStream):
    """A stream of ``(STObject, value)`` records with the STARK operators.

    Per-batch filters mirror :class:`~repro.core.spatial_rdd.
    SpatialRDDFunctions`; the ``*_static`` joins match every incoming
    event against a broadcast R-tree over a fixed reference dataset.
    Both camelCase (paper-faithful) and snake_case spellings exist.

    All predicates carry the static-side temporal relaxation
    (:func:`~repro.streaming.operators.relax_static`): an untimed query
    or reference object matches timed events on the spatial component
    alone, while two timed sides keep the paper's combined semantics.
    """

    # -- per-batch predicate filters --------------------------------------

    def _filtered(self, query: "STObject | str", predicate: STPredicate, tag: str) -> "SpatialDStream":
        query_obj = query if isinstance(query, STObject) else STObject(query)
        relaxed = relax_static(predicate)
        return self._derive(
            lambda rdd: filter_ops.filter_no_index(rdd, query_obj, relaxed),
            f"{self.name}.{tag}",
        )

    def intersects(self, query: "STObject | str") -> "SpatialDStream":
        """Per batch: records intersecting *query* (paper eq. (1))."""
        return self._filtered(query, INTERSECTS, "intersects")

    def contains(self, query: "STObject | str") -> "SpatialDStream":
        """Per batch: records completely containing *query*."""
        return self._filtered(query, CONTAINS, "contains")

    def contained_by(self, query: "STObject | str") -> "SpatialDStream":
        """Per batch: records completely contained by *query*."""
        return self._filtered(query, CONTAINED_BY, "contained_by")

    def within_distance(
        self,
        query: "STObject | str",
        max_distance: float,
        distance_fn: "str | DistanceFunction" = euclidean,
    ) -> "SpatialDStream":
        """Per batch: records within *max_distance* of *query*."""
        predicate = within_distance_predicate(max_distance, distance_fn)
        return self._filtered(query, predicate, "within_distance")

    # -- stream-static joins ----------------------------------------------

    def join_static(
        self,
        reference: "RDD | list[Record]",
        predicate: "str | STPredicate" = INTERSECTS,
        order: int = 10,
    ) -> "SpatialDStream":
        """Join every batch against a fixed reference dataset.

        The reference is R-tree-indexed and broadcast once, at stream
        definition time; each batch probes the tree per partition.
        Emits ``((stream_st, stream_v), (ref_st, ref_v))`` pairs, the
        :func:`repro.core.join.spatial_join` contract.
        """
        pred = resolve_predicate(predicate)
        index = broadcast_static_index(self._ssc.spark_context, reference, order)
        return self._derive(
            lambda rdd: stream_static_join(rdd, index, pred),
            f"{self.name}.join_static",
        )

    def within_distance_static(
        self,
        reference: "RDD | list[Record]",
        max_distance: float,
        distance_fn: "str | DistanceFunction" = euclidean,
        order: int = 10,
    ) -> "SpatialDStream":
        """Stream-static ``withinDistance`` join against *reference*.

        Envelope pruning through the broadcast tree for the Euclidean
        metric; other metrics scan the reference per record (pruning
        would be unsound, see :mod:`repro.streaming.operators`).
        """
        predicate = within_distance_predicate(max_distance, distance_fn)
        margin, prune = within_distance_join_plan(max_distance, distance_fn)
        index = broadcast_static_index(self._ssc.spark_context, reference, order)
        return self._derive(
            lambda rdd: stream_static_join(rdd, index, predicate, margin, prune),
            f"{self.name}.within_distance_static",
        )

    def window(
        self,
        length: float,
        slide: float | None = None,
        lateness: float = 0.0,
        origin: float = 0.0,
    ) -> "SpatialWindowedStream":
        """Event-time windows with the spatio-temporal window operators."""
        spec = WindowSpec(length, slide, origin)
        consumer = _WindowConsumer(self, WindowState(spec, lateness))
        self._ssc._register_window(consumer)
        return SpatialWindowedStream(self._ssc, consumer)

    def continuous(
        self,
        length: float,
        slide: float | None = None,
        lateness: float = 0.0,
        origin: float = 0.0,
        universe: "Envelope | None" = None,
        grid: int = 8,
        node_capacity: int = 10,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
    ) -> "ContinuousWindowedStream":
        """Continuous queries over keyed, grid-partitioned window state.

        The incremental alternative to :meth:`window` for sliding
        windows: instead of buffering every record once per overlapping
        window and recomputing each closed window with the batch
        operators, records are assigned to grid cells at ingest and
        held in a :class:`~repro.streaming.state.KeyedStateStore` --
        one copy each, indexed once -- and the standing queries
        registered on the returned stream answer each closing window
        from the per-cell structures.  Results are identical to the
        batch recomputation; only the cost profile changes (a window
        advance touches entering/leaving records, not the whole
        window).

        ``universe`` fixes the grid up front (``grid`` cells per
        dimension); without it the first non-empty batch's bounding box
        is used -- placement only affects pruning granularity, never
        results.

        ``memory_budget_bytes`` caps the state store's in-memory
        footprint: when the approximate resident size exceeds the
        budget, cold grid cells spill to ``spill_dir`` (required with a
        budget) and reload transparently on touch -- see
        :class:`~repro.streaming.state.KeyedStateStore`.
        """
        from repro.streaming.state import StateConsumer

        spec = WindowSpec(length, slide, origin)
        consumer = StateConsumer(
            self,
            spec,
            lateness=lateness,
            universe=universe,
            grid=grid,
            node_capacity=node_capacity,
            memory_budget_bytes=memory_budget_bytes,
            spill_dir=spill_dir,
        )
        self._ssc._register_window(consumer)
        return ContinuousWindowedStream(self._ssc, consumer)

    def patterns(
        self,
        *rules,
        lateness: float = 0.0,
        universe: "Envelope | None" = None,
        grid: int = 8,
        node_capacity: int = 10,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        max_partials: int = 256,
    ):
        """Complex event processing: declarative rules over this stream.

        Registers the given :mod:`repro.streaming.cep` rules (built
        with :func:`~repro.streaming.cep.rules.sequence` /
        :func:`~repro.streaming.cep.rules.absence` /
        :func:`~repro.streaming.cep.rules.count` /
        :func:`~repro.streaming.cep.rules.aggregate`) against this
        stream and returns a :class:`~repro.streaming.cep.consumer.
        PatternStream` exposing the matches -- in-memory via
        ``.matches()``, callbacks via ``.for_each_match()``, durable
        per-match sinks via ``.deliver_to()``.

        Event payloads are held in the same grid-keyed state store as
        :meth:`continuous` (``universe``/``grid``/``node_capacity``
        fix the grid; ``memory_budget_bytes``/``spill_dir`` enable
        cold-cell spill), matcher state checkpoints with the stream,
        and ``lateness`` is the event-time slack before the watermark
        -- events later than that are dropped and counted.
        ``max_partials`` bounds live partial sequence matches per
        group.
        """
        from repro.streaming.cep.consumer import CepConsumer, PatternStream

        consumer = CepConsumer(
            self,
            rules,
            lateness=lateness,
            universe=universe,
            grid=grid,
            node_capacity=node_capacity,
            memory_budget_bytes=memory_budget_bytes,
            spill_dir=spill_dir,
            max_partials=max_partials,
        )
        self._ssc._register_window(consumer)
        return PatternStream(consumer)

    # camelCase aliases matching the paper's Scala API
    containedBy = contained_by
    withinDistance = within_distance
    joinStatic = join_static
    withinDistanceStatic = within_distance_static


class _WindowConsumer:
    """The stateful bridge between per-batch RDDs and window outputs.

    Per batch the context collects the parent chain's records and calls
    :meth:`absorb`; closed windows queue in ``_pending`` until
    :meth:`fire` runs the registered window outputs over them.  The
    split exists for retry safety: ``absorb`` is idempotent per batch
    id (a retried batch must not double-add records to window state),
    while a window stays pending until every output ran -- a failure
    mid-fire leaves it queued for the retry instead of dropping it.
    """

    def __init__(self, node: DStream, state: WindowState) -> None:
        self.node = node
        self.state = state
        self.outputs: list[Callable[[Window, RDD], None]] = []
        self._absorbed_batch: int | None = None
        self._pending: deque[tuple[Window, list[Record]]] = deque()
        #: Registration order in the context; the consumer's stable
        #: identity in checkpoints and the emitted-window ledger (object
        #: ids do not survive a restart, registration order does because
        #: recovery requires the pipeline to be re-declared identically).
        self.checkpoint_index: int = -1

    def absorb(self, batch_id: int, records: list[Record], batch_time: float) -> None:
        """Add one batch's records to window state (idempotent per batch).

        The batch is marked absorbed only after ``add_batch`` succeeded
        -- marking first would make a fault mid-absorption silently
        drop the batch on retry (the retry would see the mark and skip
        re-absorbing records that never landed).  ``add_batch`` stages
        its mutations after all validation, so a failure leaves no
        partial state for the retry to double-count.
        """
        if self._absorbed_batch == batch_id:
            return
        self.state.add_batch(records, batch_time)
        self._absorbed_batch = batch_id
        self._pending.extend(self.state.advance())

    def fire(self, ssc) -> int:
        """Run the outputs for every pending closed window, in order.

        The context's emit gate (``_emit_allowed``) suppresses windows
        the crashed process already delivered -- a suppressed window is
        popped without running outputs, exactly-once window output over
        a restart -- and every delivered window is noted in the
        emitted-window ledger.
        """
        fired = 0
        while self._pending:
            window, records = self._pending[0]
            if ssc._emit_allowed(self, window):
                rdd = ssc._batch_rdd(records)
                for output in self.outputs:
                    output(window, rdd)
                ssc._note_emitted(self, window)
                fired += 1
            self._pending.popleft()
        return fired

    def flush(self, ssc) -> int:
        """Close and fire every still-open window (stream shutdown)."""
        self._pending.extend(self.state.flush())
        return self.fire(ssc)

    def snapshot_state(self) -> dict:
        """Picklable consumer state for checkpoints (see recovery docs)."""
        return {
            "kind": "buffered",
            "absorbed": self._absorbed_batch,
            "pending": [
                (w.start, w.end, list(records)) for w, records in self._pending
            ],
            "state": self.state.snapshot(),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Reset to a :meth:`snapshot_state` (recovery entry point)."""
        self._absorbed_batch = snapshot["absorbed"]
        self._pending = deque(
            (Window(start, end), list(records))
            for start, end, records in snapshot["pending"]
        )
        self.state.restore(snapshot["state"])


class WindowedStream:
    """Outputs over closed event-time windows.

    Each method registers one output that runs when a window closes;
    the operator methods return a :class:`Sink` that accumulates
    ``(window, result)`` pairs.  Windows with no records are never
    emitted (window state is allocated by arriving records).
    """

    def __init__(self, ssc, consumer: _WindowConsumer) -> None:
        self._ssc = ssc
        self._consumer = consumer

    @property
    def spec(self) -> WindowSpec:
        """The window shape this stream groups by."""
        return self._consumer.state.spec

    def for_each_window(self, fn: Callable[[Window, RDD], None]) -> None:
        """Run ``fn(window, rdd)`` for every closed window."""
        self._consumer.outputs.append(fn)

    def apply(self, fn: Callable[[Window, RDD], Any]) -> Sink:
        """Collect ``fn(window, rdd)`` for every closed window into a sink."""
        sink = Sink()
        self.for_each_window(lambda window, rdd: sink.append(window, fn(window, rdd)))
        return sink

    def bridge_to(self, target) -> "SpatialDStream":
        """Feed each closed window's records into another context.

        Registers a ``for_each_window`` output that pushes every closed
        window's records (one window = one batch) into a fresh
        :class:`~repro.streaming.sources.QueueSource` on *target*, and
        returns the downstream stream reading from it -- the chaining
        primitive for staged pipelines, where a first context's window
        results become a second context's input.  The caller drives
        *target* itself (its own ``run_batch``/``start`` cadence); the
        bridge only enqueues.
        """
        source, stream = target.queue_stream()
        self.for_each_window(lambda _window, rdd: source.push(rdd.collect()))
        return stream

    def collect_windows(self) -> Sink:
        """Collect each closed window's records: ``(window, records)``."""
        return self.apply(lambda _window, rdd: rdd.collect())

    def count_windows(self) -> Sink:
        """Collect each closed window's record count."""
        return self.apply(lambda _window, rdd: rdd.count())


class SpatialWindowedStream(WindowedStream):
    """Windowed spatio-temporal operators (kNN, DBSCAN hotspots).

    Every operator runs the *batch* implementation from
    :mod:`repro.core` over the closed window's records, so a window's
    result is identical to a batch job over the same data -- the
    correctness contract the streaming tests pin down.
    """

    def knn(
        self,
        query: "STObject | str",
        k: int,
        distance_fn: "str | DistanceFunction" = euclidean,
    ) -> Sink:
        """Per closed window: the k records nearest *query*.

        Sink values are ascending ``[(distance, (STObject, value))]``
        lists -- :func:`repro.core.knn.knn` run over the window.
        """
        query_obj = query if isinstance(query, STObject) else STObject(query)
        return self.apply(
            lambda _window, rdd: knn_ops.knn(rdd, query_obj, k, distance_fn)
        )

    def cluster(self, eps: float, min_pts: int) -> Sink:
        """Per closed window: DBSCAN labels for every window record.

        Sink values are ``[(STObject, (value, label))]`` lists (noise
        is labelled ``-1``), from :func:`repro.core.clustering.
        mr_dbscan.dbscan` over the window.
        """
        return self.apply(
            lambda _window, rdd: dbscan(rdd, eps, min_pts).collect()
        )

    def hotspots(self, eps: float, min_pts: int, min_size: int = 1) -> Sink:
        """Per closed window: the emerging event hotspots.

        Runs windowed DBSCAN and summarizes each non-noise cluster with
        at least *min_size* members as ``(label, size, centroid)``,
        sorted by descending size then label -- the streaming analogue
        of the paper's event-cluster analysis.
        """

        def summarize(_window: Window, rdd: RDD) -> list[tuple[int, int, tuple[float, float]]]:
            labelled = dbscan(rdd, eps, min_pts).collect()
            clusters: dict[int, list[STObject]] = {}
            for st, (_value, label) in labelled:
                if label >= 0:
                    clusters.setdefault(label, []).append(st)
            out = []
            for label, members in clusters.items():
                if len(members) < min_size:
                    continue
                cx = sum(m.geo.centroid().x for m in members) / len(members)
                cy = sum(m.geo.centroid().y for m in members) / len(members)
                out.append((label, len(members), (cx, cy)))
            out.sort(key=lambda row: (-row[1], row[0]))
            return out

        return self.apply(summarize)

    kNN = knn


class ContinuousWindowedStream:
    """Standing queries over the keyed state store (see
    :meth:`SpatialDStream.continuous`).

    Each method registers one :class:`~repro.streaming.state.
    ContinuousQuery` and returns its :class:`Sink` of ``(window,
    result)`` pairs.  Every result is pinned equal to running the
    corresponding batch operator over exactly that window's records --
    the contract the streaming state tests assert -- while the engine
    only ever touches records entering or leaving the window set.
    """

    def __init__(self, ssc, consumer) -> None:
        self._ssc = ssc
        self._consumer = consumer

    @property
    def spec(self) -> WindowSpec:
        """The window shape this stream groups by."""
        return self._consumer.spec

    @property
    def consumer(self):
        """The underlying :class:`~repro.streaming.state.StateConsumer`
        (store access for tests, metrics and dashboards)."""
        return self._consumer

    def range(self, query: "STObject | str", predicate: "str | STPredicate" = INTERSECTS) -> Sink:
        """Continuous range/predicate query (default: paper eq. (1)).

        Per closed window: the window's records matching *predicate*
        against *query*, answered from the cell-pruned per-cell R-trees
        -- equal to :func:`repro.core.filter.filter_no_index` over the
        window under the static-side temporal relaxation.
        """
        from repro.streaming.state import ContinuousRange

        return self._consumer.add_query(ContinuousRange(query, predicate)).sink

    def knn(
        self,
        query: "STObject | str",
        k: int,
        distance_fn: "str | DistanceFunction" = euclidean,
    ) -> Sink:
        """Continuous k-nearest-neighbours of *query*.

        Per closed window: ascending ``[(distance, (STObject, value))]``
        equal to :func:`repro.core.knn.knn` over the window, answered
        from a per-query heap fed cells in ascending bound order.
        """
        from repro.streaming.state import ContinuousKnn

        return self._consumer.add_query(ContinuousKnn(query, k, distance_fn)).sink

    def intersects_static(
        self,
        reference: "RDD | list[Record]",
        predicate: "str | STPredicate" = INTERSECTS,
        order: int = 10,
    ) -> Sink:
        """Continuous stream-static join against a fixed reference set.

        Each record is probed against the reference R-tree exactly once
        at ingest; per closed window the cached matches of the window's
        records are emitted -- ``((stream_st, stream_v), (ref_st,
        ref_v))`` pairs, equal to :func:`~repro.streaming.operators.
        stream_static_join` over the window's records.
        """
        from repro.streaming.state import ContinuousJoinStatic

        rows = reference.collect() if isinstance(reference, RDD) else list(reference)
        return self._consumer.add_query(
            ContinuousJoinStatic(rows, predicate, order)
        ).sink

    intersectsStatic = intersects_static
