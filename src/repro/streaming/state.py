"""Keyed, grid-partitioned streaming state with incremental per-cell indexes.

The GeoFlink observation (PAPERS.md): recomputing every sliding window
from scratch wastes exactly the work the windows share.  With windows of
length ``L`` sliding by ``S``, each record participates in ``L / S``
windows, and the batch path pays for it that many times -- one RDD
build, one scan, one index pass per window.  This module distributes
the *stream itself* instead: events are assigned to grid cells at
ingest (the same fixed grid as :class:`~repro.partitioners.grid.
GridPartitioner`), each cell keeps an object registry plus incrementally
maintained query structures, and a sliding-window advance touches only
the records entering (one insert each) and leaving (one evict each) --
every record is indexed exactly once no matter how many windows it
spans.

Three layers live here:

- :class:`CellState` -- one grid cell: a registry of live records, a
  generation-rebuilt per-cell STR-tree (STR packing is build-once, so
  "incremental" means *cell-local lazy rebuild*: mutations mark the
  cell dirty and the next query that actually needs this cell rebuilds
  just it -- untouched cells keep their tree across any number of
  window advances), and spatial + temporal extents for pruning (the
  hybrid-index motivation: temporal extents let later layers prune
  cells in time as well as space);
- :class:`KeyedStateStore` -- the keyed store: cell assignment by
  centroid (reusing the grid partitioner's arithmetic), insert/remove
  by record id, and the continuous query algorithms -- cell-pruned
  range queries through the per-cell trees and kNN with a per-query
  best-k heap fed cell by cell in ascending lower-bound order;
- :class:`KeyedWindowState` -- the windowing contract of
  :class:`~repro.streaming.window.WindowState` (watermark, lateness,
  closed-horizon, late counters) re-based on the store: one copy of
  each record lives in the store with a reference count of open windows,
  and eviction is driven by the watermark passing a record's last
  window.

Pruning stays *correct* under the paper's centroid assignment rule: a
non-point geometry can stick out of its cell, so queries prune on the
cell's **live extent** (bounds grown by member envelopes), which grows
eagerly on insert and is recomputed exactly on the next tree rebuild
after removals -- conservative in between, never lossy.

**Memory budgeting.**  With ``memory_budget_bytes`` set the store
tracks an approximate byte footprint per cell
(:func:`estimate_record_bytes` -- documented approximate, deliberately
cheap) and, when the in-memory total exceeds the budget, spills the
least-recently-touched cells to ``spill_dir`` through the storage
layer's durable-rename protocol (staging file, fsync, ``os.replace``,
parent fsync -- so the crash harness counts spill barriers too).  A
spilled cell leaves behind a :class:`SpilledCell` stub carrying its
spatial/temporal extents, so queries keep pruning it without touching
disk; any operation that actually needs the cell's records loads it
back transparently (counted), and removals against a spilled cell are
deferred into a dead-record set applied at load time.  Spill files are
a *memory* mechanism, not a durability one: checkpoints embed spilled
records (read from disk, store untouched), restores re-insert through
the normal path and re-spill under the same budget, and the store
wipes stale spill files at construction -- crash recovery never
depends on a spill file surviving.

The continuous query classes (:class:`ContinuousRange`,
:class:`ContinuousKnn`, :class:`ContinuousJoinStatic`) pin their
results to the batch operators: a fired window's answer is equal to
running the corresponding :mod:`repro.core` operator over exactly that
window's records, which is the property the streaming state tests
assert record for record.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import sys
from typing import Any, Callable, Iterator, Sequence

from repro.core.knn import query_radius
from repro.core.predicates import INTERSECTS, STPredicate, resolve_predicate
from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean, resolve
from repro.geometry.envelope import Envelope
from repro.index.rtree import STRTree
from repro.partitioners.grid import GridPartitioner
from repro.spark.storage import durable_replace
from repro.streaming.operators import build_static_index, relax_static
from repro.streaming.window import Window, WindowSpec, event_span

Record = tuple[STObject, Any]

_INF = float("inf")

#: Flat per-record overhead charged by :func:`estimate_record_bytes`:
#: registry slot, STObject + geometry, span floats.  A calibration
#: constant, not a measurement.
_RECORD_BASE_BYTES = 200


def estimate_record_bytes(st: STObject, value: Any) -> int:
    """Approximate in-memory footprint of one stream record.

    Deliberately cheap -- a flat base for the spatio-temporal object
    plus ``sys.getsizeof`` of the (typically small) value -- because it
    runs on the store's hottest path.  The budget enforcement it feeds
    is best-effort by design: the point is bounding growth, not exact
    accounting.
    """
    return _RECORD_BASE_BYTES + sys.getsizeof(value)


class CellState:
    """One grid cell: registry, lazily rebuilt tree, live extents."""

    __slots__ = (
        "registry",
        "_tree",
        "_dirty",
        "_min_x",
        "_min_y",
        "_max_x",
        "_max_y",
        "t_min",
        "t_max",
        "rebuilds",
    )

    def __init__(self) -> None:
        #: rid -> (STObject, value, t_start, t_end)
        self.registry: dict[int, tuple[STObject, Any, float, float]] = {}
        self._tree: STRTree | None = None
        self._dirty = False
        # Live spatial extent as bare floats: insert is the hottest path
        # in the store, and growing four numbers beats allocating a new
        # Envelope per record.
        self._min_x = self._min_y = _INF
        self._max_x = self._max_y = -_INF
        #: Temporal extent of live members (conservative after removes).
        self.t_min = _INF
        self.t_max = -_INF
        #: Generation rebuilds performed (the incremental-cost metric).
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self.registry)

    def insert(self, rid: int, st: STObject, value: Any, t_start: float, t_end: float) -> None:
        """Add one record; extents grow eagerly, the tree goes stale."""
        self.registry[rid] = (st, value, t_start, t_end)
        env = st.geo.envelope
        if env.min_x < self._min_x:
            self._min_x = env.min_x
        if env.min_y < self._min_y:
            self._min_y = env.min_y
        if env.max_x > self._max_x:
            self._max_x = env.max_x
        if env.max_y > self._max_y:
            self._max_y = env.max_y
        if t_start < self.t_min:
            self.t_min = t_start
        if t_end > self.t_max:
            self.t_max = t_end
        self._dirty = True

    def remove(self, rid: int) -> None:
        """Drop one record; extents stay conservative until a rebuild."""
        self.registry.pop(rid, None)
        self._dirty = True

    @property
    def extent(self) -> Envelope:
        """The live spatial extent (exact after a rebuild, else grown-only)."""
        return Envelope(self._min_x, self._min_y, self._max_x, self._max_y)

    def intersects_time(self, t_start: float, t_end: float) -> bool:
        """Can any live member's span intersect ``[t_start, t_end]``?

        Uses the cell's temporal extent -- the per-cell analogue of the
        hybrid spatio-temporal index's partition time pruning.
        """
        return bool(self.registry) and self.t_min <= t_end and self.t_max >= t_start

    def tree(self, node_capacity: int) -> STRTree:
        """The cell's STR-tree over live entries, rebuilt only when stale.

        The rebuild also recomputes the exact spatial and temporal
        extents, shrinking whatever slack removals left behind.
        """
        if self._tree is None or self._dirty:
            self._tree = STRTree(
                ((row[0].geo.envelope, rid) for rid, row in self.registry.items()),
                node_capacity=node_capacity,
            )
            env = self._tree.envelope
            self._min_x, self._min_y = env.min_x, env.min_y
            self._max_x, self._max_y = env.max_x, env.max_y
            self.t_min = min((row[2] for row in self.registry.values()), default=_INF)
            self.t_max = max((row[3] for row in self.registry.values()), default=-_INF)
            self._dirty = False
            self.rebuilds += 1
        return self._tree


class SpilledCell:
    """The on-disk stub a spilled grid cell leaves behind.

    Carries just enough for query pruning -- record count, byte
    estimate, spatial and temporal extents (frozen at spill time, so
    exactly as conservative as the cell they came from) -- plus the
    spill file path and the set of record ids removed *while* spilled
    (``dead``), which the loader filters out.  Holds no records: any
    operation that needs them goes through
    :meth:`KeyedStateStore._load_cell`.
    """

    __slots__ = (
        "path",
        "count",
        "bytes",
        "_min_x",
        "_min_y",
        "_max_x",
        "_max_y",
        "t_min",
        "t_max",
        "dead",
    )

    def __init__(
        self,
        path: str,
        count: int,
        byte_estimate: int,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        t_min: float,
        t_max: float,
    ) -> None:
        self.path = path
        #: Live records on disk (decremented by deferred removals).
        self.count = count
        #: Estimated bytes the spill moved out of memory.
        self.bytes = byte_estimate
        self._min_x, self._min_y = min_x, min_y
        self._max_x, self._max_y = max_x, max_y
        self.t_min, self.t_max = t_min, t_max
        #: Record ids evicted while the cell was on disk.
        self.dead: set[int] = set()

    def __len__(self) -> int:
        return self.count

    @property
    def extent(self) -> Envelope:
        """The spilled cell's spatial extent, frozen at spill time."""
        return Envelope(self._min_x, self._min_y, self._max_x, self._max_y)

    def intersects_time(self, t_start: float, t_end: float) -> bool:
        """Temporal pruning against the frozen extent (conservative)."""
        return self.count > 0 and self.t_min <= t_end and self.t_max >= t_start


class KeyedStateStore:
    """A grid-keyed registry of live stream records with per-cell indexes.

    ``universe`` fixes the grid (``grid`` cells per dimension) the way
    :class:`~repro.partitioners.grid.GridPartitioner` lays it out;
    records outside the universe clamp into border cells, and pruning
    stays exact because it reads live extents, not designed bounds.

    With ``memory_budget_bytes`` set (which requires ``spill_dir``) the
    store bounds its approximate in-memory footprint by spilling the
    least-recently-touched cells to disk -- see the module docstring
    for the full contract.  ``injector_source`` is an optional callable
    returning the live :class:`~repro.chaos.injector.FaultInjector` (or
    None); the ``state.spill`` chaos site fires through it before each
    spill write.  The budget is best-effort: the cell currently being
    written is never spilled out from under its own insert, and a spill
    *failure* (chaos or I/O) is swallowed into ``spill_failures`` --
    the cell simply stays in memory, degraded but alive.
    """

    def __init__(
        self,
        universe: Envelope,
        grid: int = 8,
        node_capacity: int = 10,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        injector_source: Callable[[], Any] | None = None,
    ) -> None:
        if universe.is_empty:
            raise ValueError("state store universe must be non-empty")
        if memory_budget_bytes is not None:
            if memory_budget_bytes <= 0:
                raise ValueError(
                    f"memory_budget_bytes must be > 0, got {memory_budget_bytes}"
                )
            if spill_dir is None:
                raise ValueError("memory_budget_bytes requires a spill_dir")
        self.node_capacity = node_capacity
        self._partitioner = GridPartitioner((), grid, universe=universe)
        self._cells: dict[int, CellState | SpilledCell] = {}
        self._locations: dict[int, int] = {}
        self._retired_rebuilds = 0
        self.inserts = 0
        self.removes = 0
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = spill_dir
        self._injector_source = injector_source
        self._cell_bytes: dict[int, int] = {}
        self._bytes_in_memory = 0
        self._spilled_bytes = 0
        self._touch: dict[int, int] = {}
        self._tick = 0
        #: Cells spilled to disk so far (cumulative).
        self.cells_spilled = 0
        #: Spilled cells loaded back so far (cumulative).
        self.cells_loaded = 0
        #: Spill attempts that failed and left the cell in memory.
        self.spill_failures = 0
        if spill_dir is not None:
            # Spill files are a memory mechanism, not a durability one:
            # a fresh store (including one built by crash recovery)
            # must never trust another process's spill files.
            os.makedirs(spill_dir, exist_ok=True)
            for fname in os.listdir(spill_dir):
                if fname.startswith("cell-") and (
                    fname.endswith(".pkl") or fname.endswith("._tmp")
                ):
                    try:
                        os.remove(os.path.join(spill_dir, fname))
                    except OSError:
                        pass

    @property
    def partitioner(self) -> GridPartitioner:
        """The grid the store keys by."""
        return self._partitioner

    @property
    def size(self) -> int:
        """Live records currently held."""
        return len(self._locations)

    @property
    def cells_used(self) -> int:
        """Grid cells currently holding at least one record."""
        return len(self._cells)

    @property
    def cell_rebuilds(self) -> int:
        """Total generation rebuilds across all cells so far."""
        return (
            sum(c.rebuilds for c in self._cells.values() if isinstance(c, CellState))
            + self._retired_rebuilds
        )

    @property
    def spilled_cells(self) -> int:
        """Cells currently living on disk as :class:`SpilledCell` stubs."""
        return sum(1 for c in self._cells.values() if isinstance(c, SpilledCell))

    @property
    def bytes_in_memory(self) -> int:
        """Estimated bytes of in-memory records (0 unless budgeted)."""
        return self._bytes_in_memory

    @property
    def spilled_bytes(self) -> int:
        """Estimated bytes currently parked on disk by spills."""
        return self._spilled_bytes

    def insert(self, rid: int, st: STObject, value: Any, t_start: float, t_end: float) -> None:
        """Assign the record to its centroid's cell and index it there."""
        # Inline the partitioner's centroid rule: this is the store's
        # hottest path and get_partition's generic key dispatch costs
        # more than the grid arithmetic itself.
        centroid = st.geo.centroid()
        pid = self._partitioner.partition_of_point(centroid.x, centroid.y)
        cell = self._cells.get(pid)
        if cell is None:
            cell = self._cells[pid] = CellState()
        elif isinstance(cell, SpilledCell):
            cell = self._load_cell(pid)
        cell.insert(rid, st, value, t_start, t_end)
        self._locations[rid] = pid
        self.inserts += 1
        if self.memory_budget_bytes is not None:
            estimate = estimate_record_bytes(st, value)
            self._cell_bytes[pid] = self._cell_bytes.get(pid, 0) + estimate
            self._bytes_in_memory += estimate
            self._tick += 1
            self._touch[pid] = self._tick
            if self._bytes_in_memory > self.memory_budget_bytes:
                self._enforce_budget(protect=pid)

    def remove(self, rid: int) -> None:
        """Evict one record by id (no-op for unknown ids).

        Removing from a *spilled* cell does not load it: the rid joins
        the stub's dead set (applied at load time) and a stub whose
        live count hits zero is dropped together with its spill file.
        """
        pid = self._locations.pop(rid, None)
        if pid is None:
            return
        cell = self._cells[pid]
        if isinstance(cell, SpilledCell):
            if rid not in cell.dead:
                cell.dead.add(rid)
                cell.count -= 1
            if cell.count <= 0:
                try:
                    os.remove(cell.path)
                except OSError:
                    pass
                self._spilled_bytes -= cell.bytes
                del self._cells[pid]
            self.removes += 1
            return
        if self.memory_budget_bytes is not None:
            row = cell.registry.get(rid)
            if row is not None:
                estimate = estimate_record_bytes(row[0], row[1])
                self._cell_bytes[pid] = self._cell_bytes.get(pid, 0) - estimate
                self._bytes_in_memory -= estimate
        cell.remove(rid)
        if not cell.registry:
            self._retired_rebuilds += cell.rebuilds
            del self._cells[pid]
            self._cell_bytes.pop(pid, None)
            self._touch.pop(pid, None)
        self.removes += 1

    def get(self, rid: int) -> tuple[STObject, Any, float, float] | None:
        """Look up one live record: ``(st, value, t_start, t_end)``.

        Returns None for unknown (or already evicted) ids.  A record
        living in a spilled cell loads its cell back transparently --
        the lookup genuinely needs the payload, the same touch-load
        rule the continuous queries follow -- so callers on a hot path
        (the CEP guard evaluators) pull exactly the cold cells their
        guards actually read.
        """
        pid = self._locations.get(rid)
        if pid is None:
            return None
        cell = self._cells[pid]
        if isinstance(cell, SpilledCell):
            cell = self._load_cell(pid)
        return cell.registry.get(rid)

    # -- spill machinery ---------------------------------------------------

    def _spill_path(self, pid: int) -> str:
        """The spill file a cell id maps to (one store per directory)."""
        return os.path.join(self.spill_dir, f"cell-{pid}.pkl")

    def _enforce_budget(self, protect: int | None = None) -> None:
        """Spill least-recently-touched cells until the budget holds.

        *protect* (the cell an insert or load just touched) is never a
        spill candidate -- the budget is best-effort rather than strict
        so the working cell always stays resident.  Stops early when a
        spill fails (counted) or no candidate remains.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        while self._bytes_in_memory > budget:
            candidates = [
                (self._touch.get(pid, 0), pid)
                for pid, cell in self._cells.items()
                if isinstance(cell, CellState) and pid != protect and cell.registry
            ]
            if not candidates:
                break
            _tick, pid = min(candidates)
            if not self._spill_cell(pid):
                break

    def _spill_cell(self, pid: int) -> bool:
        """Write one cell's registry to disk and stub it; True on success.

        The write runs the ``state.spill`` chaos site first, then the
        storage layer's durable-rename commit (staging file,
        ``durable_replace``), so every spill barrier is visible to the
        crash harness.  Any failure -- injected or real -- is swallowed
        into ``spill_failures`` and leaves the cell fully in memory
        (process kills from the crash harness still propagate).
        """
        cell = self._cells[pid]
        path = self._spill_path(pid)
        tmp = path + "._tmp"
        try:
            if self._injector_source is not None:
                injector = self._injector_source()
                if injector is not None:
                    injector.check("state.spill", key=pid)
            rows = [
                (rid, st, value, t_start, t_end)
                for rid, (st, value, t_start, t_end) in cell.registry.items()
            ]
            rows.sort(key=lambda row: row[0])
            with open(tmp, "wb") as handle:
                pickle.dump(rows, handle, protocol=pickle.HIGHEST_PROTOCOL)
            durable_replace(tmp, path)
        except Exception:
            self.spill_failures += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        freed = self._cell_bytes.pop(pid, 0)
        self._cells[pid] = SpilledCell(
            path,
            len(rows),
            freed,
            cell._min_x,
            cell._min_y,
            cell._max_x,
            cell._max_y,
            cell.t_min,
            cell.t_max,
        )
        self._retired_rebuilds += cell.rebuilds
        self._touch.pop(pid, None)
        self._bytes_in_memory -= freed
        self._spilled_bytes += freed
        self.cells_spilled += 1
        return True

    def _load_cell(self, pid: int) -> CellState:
        """Bring a spilled cell back in memory (transparent reload).

        Applies the stub's dead set, re-accounts bytes, removes the
        spill file, and re-enforces the budget (the loaded cell itself
        is protected, so a load can push *other* cold cells out but
        never bounce straight back to disk).
        """
        stub = self._cells[pid]
        with open(stub.path, "rb") as handle:
            rows = pickle.load(handle)
        cell = CellState()
        total = 0
        dead = stub.dead
        for rid, st, value, t_start, t_end in rows:
            if rid in dead:
                continue
            cell.insert(rid, st, value, t_start, t_end)
            total += estimate_record_bytes(st, value)
        self._cells[pid] = cell
        try:
            os.remove(stub.path)
        except OSError:
            pass
        self._cell_bytes[pid] = total
        self._bytes_in_memory += total
        self._spilled_bytes -= stub.bytes
        self.cells_loaded += 1
        self._tick += 1
        self._touch[pid] = self._tick
        if self.memory_budget_bytes is not None and self._bytes_in_memory > self.memory_budget_bytes:
            self._enforce_budget(protect=pid)
        return cell

    def _peek_rows(self, cell: "CellState | SpilledCell") -> list[tuple]:
        """A cell's live rows *without* loading a stub back into memory.

        Read-only paths (window iteration, snapshots) use this so a
        full-state scan does not thrash the budget by paging every
        spilled cell back in.
        """
        if isinstance(cell, SpilledCell):
            with open(cell.path, "rb") as handle:
                rows = pickle.load(handle)
            dead = cell.dead
            return [row for row in rows if row[0] not in dead]
        return [
            (rid, st, value, t_start, t_end)
            for rid, (st, value, t_start, t_end) in cell.registry.items()
        ]

    def all_records(self) -> list[tuple]:
        """Every live ``(rid, st, value, t_start, t_end)`` row, sorted by
        rid -- including rows currently spilled (read from disk without
        disturbing the store).  The checkpoint snapshot source."""
        rows: list[tuple] = []
        for cell in list(self._cells.values()):
            rows.extend(self._peek_rows(cell))
        rows.sort(key=lambda row: row[0])
        return rows

    # -- window membership -------------------------------------------------

    def iter_window(self, window: Window | None) -> Iterator[tuple[int, STObject, Any]]:
        """Every live ``(rid, STObject, value)`` whose span intersects
        *window* (all live records when *window* is None).

        Spilled cells surviving the temporal prune are *peeked* from
        disk, not loaded -- iteration is read-only and must not churn
        the memory budget.
        """
        for cell in list(self._cells.values()):
            if window is not None and not cell.intersects_time(window.start, window.end):
                continue
            if isinstance(cell, SpilledCell):
                for rid, st, value, t_start, t_end in self._peek_rows(cell):
                    if window is None or window.intersects_span(t_start, t_end):
                        yield rid, st, value
                continue
            for rid, (st, value, t_start, t_end) in cell.registry.items():
                if window is None or window.intersects_span(t_start, t_end):
                    yield rid, st, value

    def window_records(self, window: Window | None) -> list[Record]:
        """The window's records as ``(STObject, value)`` pairs -- what a
        batch recomputation over the window would be given."""
        return [(st, value) for _rid, st, value in self.iter_window(window)]

    # -- continuous queries ------------------------------------------------

    def query_range(
        self,
        query: STObject,
        predicate: STPredicate = INTERSECTS,
        window: Window | None = None,
    ) -> list[Record]:
        """Records matching *predicate* against *query* inside *window*.

        Cells are pruned by live extent against the predicate's
        candidate region (and by temporal extent against the window);
        surviving cells answer from their R-tree, and candidates are
        refined with the exact predicate -- the live-indexing shape of
        :func:`repro.core.filter.filter_live_index`, scoped to the
        touched cells only.  Equal to the batch filter over the
        window's records under the static-side relaxation.
        """
        predicate = relax_static(resolve_predicate(predicate))
        region = predicate.candidate_region(query.geo.envelope)
        out: list[Record] = []
        for pid, cell in list(self._cells.items()):
            if not cell.extent.intersects(region):
                continue
            if window is not None and not cell.intersects_time(window.start, window.end):
                continue
            if isinstance(cell, SpilledCell):
                # Pruning failed to exclude it, so the query genuinely
                # needs this cell's tree: transparent reload on touch.
                cell = self._load_cell(pid)
            registry = cell.registry
            for rid in cell.tree(self.node_capacity).query(region):
                st, value, t_start, t_end = registry[rid]
                if window is not None and not window.intersects_span(t_start, t_end):
                    continue
                if predicate.evaluate(st, query):
                    out.append((st, value))
        return out

    def query_knn(
        self,
        query: STObject,
        k: int,
        window: Window | None = None,
        distance_fn: "str | DistanceFunction" = euclidean,
    ) -> list[tuple[float, Record]]:
        """The *k* records nearest *query* inside *window*, ascending.

        A per-query best-k heap is fed cell by cell in ascending
        lower-bound order (cell extent distance to the query centroid,
        slackened by the query radius exactly like :func:`repro.core.
        knn.knn`); the search stops as soon as the next cell's bound
        cannot beat the current k-th distance.  Non-Euclidean metrics
        make envelope bounds inadmissible, so they scan every live cell
        -- correctness over speed, matching the batch operator.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        fn = resolve(distance_fn)
        centroid = query.geo.centroid()
        slack = query_radius(query.geo)
        prune = fn is euclidean

        ranked = []
        for pid, cell in list(self._cells.items()):
            if window is not None and not cell.intersects_time(window.start, window.end):
                continue
            bound = (
                max(0.0, cell.extent.distance_to_point(centroid.x, centroid.y) - slack)
                if prune
                else 0.0
            )
            ranked.append((bound, pid))
        # Stable sort on the bound alone: tied cells keep store insertion
        # order, so tied records rank exactly as the batch operator's.
        ranked.sort(key=lambda pair: pair[0])

        # A max-heap of the k best (negated distance, tie, record).
        best: list[tuple[float, int, Record]] = []
        tie = itertools.count()
        for bound, pid in ranked:
            if prune and len(best) == k and bound > -best[0][0]:
                break
            cell = self._cells.get(pid)
            if cell is None:
                continue
            if isinstance(cell, SpilledCell):
                # This cell's bound beat the current k-th distance, so
                # its records must be scanned: reload it.  Cells the
                # bound check already rejected stay on disk.
                cell = self._load_cell(pid)
            for _rid, (st, value, t_start, t_end) in cell.registry.items():
                if window is not None and not window.intersects_span(t_start, t_end):
                    continue
                if (
                    prune
                    and len(best) == k
                    and st.geo.envelope.distance_to_point(centroid.x, centroid.y) - slack
                    > -best[0][0]
                ):
                    continue  # envelope bound already beaten
                d = fn(st.geo, query.geo)
                if len(best) < k:
                    heapq.heappush(best, (-d, next(tie), (st, value)))
                elif d < -best[0][0]:
                    heapq.heapreplace(best, (-d, next(tie), (st, value)))
        return sorted(((-nd, record) for nd, _t, record in best), key=lambda p: p[0])


class KeyedWindowState:
    """Event-time windowing over a :class:`KeyedStateStore`.

    The watermark/lateness/closed-horizon contract of
    :class:`~repro.streaming.window.WindowState`, with one crucial
    difference: records are not buffered per window.  Each record is
    inserted into the store exactly once, its open windows are counted
    by reference, and the watermark passing a record's *last* window
    evicts it -- the entering/leaving-only cost profile of the module
    docstring.

    ``add_batch`` stages its work in two passes -- all window
    assignment (the part that can raise) first, all mutation second --
    so a failed batch leaves no partial state behind and a retried
    batch cannot double-insert.
    """

    def __init__(self, spec: WindowSpec, store: KeyedStateStore, lateness: float = 0.0) -> None:
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        self.spec = spec
        self.store = store
        self.lateness = lateness
        self.watermark = -_INF
        self._closed_horizon = -_INF
        #: window -> live record count (a window fires when it closes).
        self._window_counts: dict[Window, int] = {}
        #: (last window end, rid) eviction heap.
        self._eviction: list[tuple[float, int]] = []
        # A plain int rather than itertools.count: the counter is part
        # of checkpointed state and must be snapshot/restorable.
        self._next_rid = 0
        #: Records whose every window had already fired on arrival.
        self.late_dropped = 0
        #: Per-window contributions lost to already-fired windows.
        self.late_window_drops = 0

    def add_batch(
        self, records: list[Record], batch_time: float
    ) -> list[tuple[int, STObject, Any]]:
        """Insert *records* into the store and advance the watermark.

        Returns the inserted ``(rid, STObject, value)`` rows so per-record
        query hooks (the stream-static join's ingest-time probe) run
        exactly once per accepted record.
        """
        max_end = self.watermark + self.lateness
        staged: list[tuple[STObject, Any, float, float, list[Window]]] = []
        late_records = late_windows = 0
        assign = self.spec.assign
        horizon = self._closed_horizon
        for st, value in records:
            t_start, t_end = event_span(st, batch_time)
            if t_end > max_end:
                max_end = t_end
            windows = assign(t_start, t_end)
            live = [w for w in windows if w.end > horizon]
            late_windows += len(windows) - len(live)
            if not live:
                late_records += 1
                continue
            staged.append((st, value, t_start, t_end, live))
        inserted: list[tuple[int, STObject, Any]] = []
        counts = self._window_counts
        insert = self.store.insert
        for st, value, t_start, t_end, live in staged:
            rid = self._next_rid
            self._next_rid += 1
            insert(rid, st, value, t_start, t_end)
            heapq.heappush(self._eviction, (live[-1].end, rid))
            for window in live:
                counts[window] = counts.get(window, 0) + 1
            inserted.append((rid, st, value))
        self.late_dropped += late_records
        self.late_window_drops += late_windows
        self.watermark = max(self.watermark, max_end - self.lateness)
        return inserted

    def ready_windows(self) -> list[Window]:
        """Windows the watermark has passed, ascending (not yet closed --
        their records stay queryable until :meth:`close_window`)."""
        return sorted(w for w in self._window_counts if w.end <= self.watermark)

    def close_window(self, window: Window) -> list[int]:
        """Mark *window* fired: advance the closed horizon and evict every
        record whose last window has now closed.  Returns evicted rids."""
        self._window_counts.pop(window, None)
        if window.end > self._closed_horizon:
            self._closed_horizon = window.end
        evicted: list[int] = []
        while self._eviction and self._eviction[0][0] <= self._closed_horizon:
            _end, rid = heapq.heappop(self._eviction)
            self.store.remove(rid)
            evicted.append(rid)
        return evicted

    def flush_windows(self) -> list[Window]:
        """Every still-open window, ascending (stream shutdown)."""
        return sorted(self._window_counts)

    @property
    def open_windows(self) -> int:
        """How many windows currently have live records."""
        return len(self._window_counts)


# -- continuous queries ----------------------------------------------------


class ContinuousQuery:
    """One standing query evaluated against the store per closed window.

    Subclasses implement :meth:`evaluate`; :meth:`on_insert` /
    :meth:`on_evict` are the incremental hooks (the stream-static join
    matches each record once, at ingest).  Results accumulate in
    ``sink`` as ``(window, result)`` pairs, the windowed-sink contract.
    """

    def __init__(self) -> None:
        from repro.streaming.dstream import Sink

        self.sink = Sink()

    def on_insert(self, rid: int, st: STObject, value: Any) -> None:
        """Incremental per-record hook at ingest (default: nothing)."""

    def on_evict(self, rid: int) -> None:
        """Incremental per-record hook at eviction (default: nothing)."""

    def evaluate(self, store: KeyedStateStore, window: Window) -> Any:
        """The window's result (subclass responsibility)."""
        raise NotImplementedError

    def emit(self, store: KeyedStateStore, window: Window) -> None:
        """Evaluate and record one closed window."""
        self.sink.append(window, self.evaluate(store, window))


class ContinuousRange(ContinuousQuery):
    """Continuous range/predicate filter (default: paper eq. (1))."""

    def __init__(self, query: "STObject | str", predicate: "str | STPredicate" = INTERSECTS) -> None:
        super().__init__()
        self.query = query if isinstance(query, STObject) else STObject(query)
        self.predicate = relax_static(resolve_predicate(predicate))

    def evaluate(self, store: KeyedStateStore, window: Window) -> list[Record]:
        return store.query_range(self.query, self.predicate, window)


class ContinuousKnn(ContinuousQuery):
    """Continuous k-nearest-neighbours of a fixed query object."""

    def __init__(
        self,
        query: "STObject | str",
        k: int,
        distance_fn: "str | DistanceFunction" = euclidean,
    ) -> None:
        super().__init__()
        self.query = query if isinstance(query, STObject) else STObject(query)
        self.k = k
        self.distance_fn = distance_fn

    def evaluate(self, store: KeyedStateStore, window: Window) -> list[tuple[float, Record]]:
        return store.query_knn(self.query, self.k, window, self.distance_fn)


class ContinuousJoinStatic(ContinuousQuery):
    """Continuous stream-static join against a fixed reference dataset.

    The reference is R-tree-indexed once; each stream record is probed
    against it exactly *once*, at ingest, and the matches are cached by
    record id -- a window's join result is then just the union of the
    cached matches of the records in the window, however many sliding
    windows the record lives through.  Same output contract as
    :func:`repro.streaming.operators.stream_static_join`.
    """

    def __init__(
        self,
        reference: Sequence[Record],
        predicate: "str | STPredicate" = INTERSECTS,
        order: int = 10,
    ) -> None:
        super().__init__()
        self.predicate = relax_static(resolve_predicate(predicate))
        self._tree = build_static_index(reference, order)
        self._matches: dict[int, list[Record]] = {}
        self.probes = 0

    def on_insert(self, rid: int, st: STObject, value: Any) -> None:
        self.probes += 1
        matched = [
            (ref_st, ref_value)
            for ref_st, ref_value in self._tree.query(st.geo.envelope)
            if self.predicate.evaluate(st, ref_st)
        ]
        if matched:
            self._matches[rid] = matched

    def on_evict(self, rid: int) -> None:
        self._matches.pop(rid, None)

    def evaluate(self, store: KeyedStateStore, window: Window) -> list[tuple[Record, Record]]:
        out: list[tuple[Record, Record]] = []
        for rid, st, value in store.iter_window(window):
            for ref_st, ref_value in self._matches.get(rid, ()):
                out.append(((st, value), (ref_st, ref_value)))
        return out


class StateConsumer:
    """The keyed-state counterpart of the per-window buffer consumer.

    Bridges one DStream node to a :class:`KeyedWindowState`: per batch
    the streaming context collects the chain's records and calls
    :meth:`absorb` (idempotent per batch id -- the retry contract), the
    ``state.update`` chaos site fires *before* any mutation so an
    injected fault retries cleanly, and :meth:`fire` evaluates every
    registered continuous query per ready window before the window's
    leavers are evicted.

    The store's universe is fixed lazily from the first non-empty
    batch's envelopes when the caller did not pass one -- grid cell
    *assignment* only affects pruning granularity, never correctness,
    because queries prune on live extents.
    """

    def __init__(
        self,
        node,
        spec: WindowSpec,
        lateness: float = 0.0,
        universe: Envelope | None = None,
        grid: int = 8,
        node_capacity: int = 10,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        self.node = node
        self.spec = spec
        self.lateness = lateness
        self.grid = grid
        self.node_capacity = node_capacity
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = spill_dir
        self.state: KeyedWindowState | None = None
        self.queries: list[ContinuousQuery] = []
        self._absorbed_batch: int | None = None
        self._ready: list[Window] = []
        self._pending_hooks: list[tuple[int, STObject, Any]] = []
        #: Registration order in the context -- the consumer's stable
        #: identity in checkpoints and the emitted-window ledger.
        self.checkpoint_index: int = -1
        if universe is not None:
            self._init_state(universe)

    def _injector(self):
        """The context's live fault injector (the store's chaos source)."""
        return getattr(self.node._ssc.spark_context, "fault_injector", None)

    def _init_state(self, universe: Envelope) -> None:
        store = KeyedStateStore(
            universe,
            grid=self.grid,
            node_capacity=self.node_capacity,
            memory_budget_bytes=self.memory_budget_bytes,
            spill_dir=self.spill_dir,
            injector_source=self._injector,
        )
        self.state = KeyedWindowState(self.spec, store, self.lateness)

    @property
    def store(self) -> KeyedStateStore | None:
        """The keyed store (None until the first record fixed a universe)."""
        return self.state.store if self.state is not None else None

    def add_query(self, query: ContinuousQuery) -> ContinuousQuery:
        """Register one standing query; returns it for sink access."""
        self.queries.append(query)
        return query

    def absorb(self, batch_id: int, records: list[Record], batch_time: float) -> None:
        """Insert one batch into keyed state (idempotent per batch id).

        The batch is marked absorbed only after every mutation
        succeeded: a fault mid-absorb (chaos or otherwise) leaves the
        mark unset, the staged two-pass :meth:`KeyedWindowState.
        add_batch` leaves no partial inserts, and the retried batch
        absorbs cleanly.
        """
        if self._absorbed_batch == batch_id:
            return
        injector = getattr(self.node._ssc.spark_context, "fault_injector", None)
        if injector is not None:
            injector.check("state.update", key=batch_id)
        if self.state is None:
            if not records:
                self._absorbed_batch = batch_id
                return
            universe = Envelope.empty()
            for st, _value in records:
                universe = universe.merge(st.geo.envelope)
            self._init_state(universe)
        inserted = self.state.add_batch(records, batch_time)
        self._absorbed_batch = batch_id
        if self.queries:
            self._pending_hooks.extend(inserted)
        self._ready.extend(
            w for w in self.state.ready_windows() if w not in self._ready
        )

    def _run_insert_hooks(self) -> None:
        # Drained before any window evaluates; a record is popped only
        # after every query's hook ran, and re-running a hook for the
        # same rid just overwrites the same cached result, so a failure
        # mid-drain replays safely on the batch retry.
        while self._pending_hooks:
            rid, st, value = self._pending_hooks[0]
            for query in self.queries:
                query.on_insert(rid, st, value)
            self._pending_hooks.pop(0)

    def fire(self, ssc) -> int:
        """Evaluate every query for each ready window, then evict leavers.

        A window leaves the ready queue only after all of its queries
        ran -- a failure mid-fire leaves it queued for the batch retry,
        the same at-least-once contract as the buffered window path.
        The context's emit gate suppresses windows a crashed process
        already delivered: the window's state transitions (closed
        horizon, eviction, ``on_evict``) still run, only the query
        evaluation and its sink append are skipped.
        """
        self._run_insert_hooks()
        fired = 0
        while self._ready:
            window = self._ready[0]
            if ssc._emit_allowed(self, window):
                for query in self.queries:
                    query.emit(self.state.store, window)
                ssc._note_emitted(self, window)
                fired += 1
            self._ready.pop(0)
            for rid in self.state.close_window(window):
                for query in self.queries:
                    query.on_evict(rid)
        return fired

    def flush(self, ssc) -> int:
        """Fire every still-open window (stream shutdown), ascending."""
        if self.state is None:
            return 0
        self._ready.extend(
            w for w in self.state.flush_windows() if w not in self._ready
        )
        return self.fire(ssc)

    def snapshot_state(self) -> dict:
        """Picklable consumer state for checkpoints.

        The per-cell R-trees are deliberately *not* serialized: the
        snapshot carries only the record registry, and a restore
        re-inserts every record through the normal store path, which
        marks its cell dirty -- the first query touching a cell after
        recovery rebuilds its tree lazily, exactly like any other
        mutation (generation-rebuild, see :class:`CellState`).

        Spilled cells are embedded too (their records read from disk
        without loading them back): the snapshot is self-contained and
        never depends on a spill file outliving the process.
        """
        if self.state is None:
            state = None
        else:
            kw = self.state
            universe = kw.store.partitioner.universe
            records = kw.store.all_records()
            state = {
                "universe": (universe.min_x, universe.min_y, universe.max_x, universe.max_y),
                "watermark": kw.watermark,
                "closed_horizon": kw._closed_horizon,
                "late_dropped": kw.late_dropped,
                "late_window_drops": kw.late_window_drops,
                "next_rid": kw._next_rid,
                "window_counts": [
                    (w.start, w.end, n) for w, n in sorted(kw._window_counts.items())
                ],
                "eviction": list(kw._eviction),
                "records": records,
                "spill": {
                    "cells_spilled": kw.store.cells_spilled,
                    "cells_loaded": kw.store.cells_loaded,
                    "spill_failures": kw.store.spill_failures,
                },
            }
        return {
            "kind": "keyed",
            "absorbed": self._absorbed_batch,
            "ready": [(w.start, w.end) for w in self._ready],
            "pending_hooks": list(self._pending_hooks),
            "state": state,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Reset to a :meth:`snapshot_state` (recovery entry point).

        After the registry is rebuilt, every query's ``on_insert`` hook
        re-runs over the live records to reconstruct incremental caches
        (the stream-static join's per-record match cache).  The hooks
        are idempotent -- re-probing a record overwrites the same cached
        result -- so overlap with still-pending hooks is harmless.
        """
        self._absorbed_batch = snapshot["absorbed"]
        self._ready = [Window(start, end) for start, end in snapshot["ready"]]
        self._pending_hooks = [tuple(row) for row in snapshot["pending_hooks"]]
        state = snapshot["state"]
        if state is None:
            self.state = None
            return
        self._init_state(Envelope(*state["universe"]))
        kw = self.state
        kw.watermark = state["watermark"]
        kw._closed_horizon = state["closed_horizon"]
        kw.late_dropped = state["late_dropped"]
        kw.late_window_drops = state["late_window_drops"]
        kw._next_rid = state["next_rid"]
        kw._window_counts = {
            Window(start, end): n for start, end, n in state["window_counts"]
        }
        eviction = [tuple(entry) for entry in state["eviction"]]
        heapq.heapify(eviction)
        kw._eviction = eviction
        # Carry the crashed run's cumulative spill counters forward
        # *before* re-inserting, so spills triggered by the restore
        # itself keep counting on top of them.
        spill = state.get("spill")
        if spill:
            kw.store.cells_spilled = spill["cells_spilled"]
            kw.store.cells_loaded = spill["cells_loaded"]
            kw.store.spill_failures = spill["spill_failures"]
        for rid, st, value, t_start, t_end in state["records"]:
            kw.store.insert(rid, st, value, t_start, t_end)
        for query in self.queries:
            for rid, st, value in kw.store.iter_window(None):
                query.on_insert(rid, st, value)
