"""Incremental matchers: the compiled form of the CEP rules.

Each :class:`~repro.streaming.cep.rules.Rule` compiles to one matcher
object that consumes the stream's events one at a time, in the
deterministic total order ``(t, rid)``, and emits *completions* --
``(group, rids, start, end, value)`` tuples the consumer turns into
:class:`~repro.streaming.cep.rules.Match` objects.

The matchers hold only the *minimal* incremental state (partial-match
rid tuples, absence trigger deadlines, per-window contribution lists,
one previous-event anchor per group); the event payloads themselves --
geometry, value, timestamps -- live exactly once in the consumer's
grid-keyed :class:`~repro.streaming.state.KeyedStateStore` and are
looked up through the ``fetch`` callback only when a guard needs them.
That split is what lets cold event payloads spill to disk under memory
pressure without the matchers noticing.  The per-group anchor (for the
``entered``/``exited`` transition guards) keeps its
:class:`~repro.core.stobject.STObject` inline rather than a store rid:
an anchor can outlive its payload's eviction horizon by an arbitrary
silence, and a guard must not change meaning because an old payload
was evicted.

Two entry points drive every matcher:

- :meth:`advance(rid, st, value, t, fetch) <SequenceMatcher.advance>`
  -- offer the next in-order event; returns completions that fire *on*
  the event (sequence matches).
- :meth:`on_watermark(w) <SequenceMatcher.on_watermark>` -- the
  watermark passed *w*; returns completions that fire on the *passage
  of time* (absence deadlines, closing count/aggregate windows) and
  prunes state that can no longer contribute.

``snapshot()`` / ``restore()`` round-trip a matcher through plain
containers (dict state is serialized as insertion-ordered lists),
which is how partial-match state rides the pickled checkpoint epochs
of the recovery subsystem across crashes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.stobject import STObject
from repro.geometry.distance import euclidean

from .rules import AbsenceRule, AggregateRule, CountRule, Rule, SequenceRule

#: ``(group, rids, start, end, value)`` -- a rule firing before it is
#: given payloads and an emission ordinal.
Completion = tuple

#: Payload lookup by rid into the keyed store:
#: ``fetch(rid) -> (STObject, value, t_start, t_end)`` or None.
Fetch = Callable[[int], tuple]


def _freeze_group(group: Any) -> Any:
    """Groups must be hashable dict keys; lists are user convenience."""
    if isinstance(group, list):
        return tuple(group)
    return group


class _GroupAnchors:
    """The per-group previous-event anchor shared by all matchers.

    Every event of a group -- matching or not -- becomes the group's
    anchor ``(t, rid, st)``; the ``entered``/``exited`` transition
    guards compare the current event against the anchor's geometry.
    The anchor is one record per *group* (bounded by group
    cardinality, not stream length), so its STObject is held inline
    and snapshot/restore round-trips it through pickle untouched.
    """

    def __init__(self) -> None:
        self._last: dict[Any, tuple[float, int, STObject]] = {}

    def prev_st(self, group: Any) -> STObject | None:
        """The group's previous event geometry, or None if unseen."""
        last = self._last.get(group)
        return last[2] if last is not None else None

    def note(self, group: Any, t: float, rid: int, st: STObject) -> None:
        """Record the group's new previous event."""
        self._last[group] = (t, rid, st)

    def snapshot(self) -> list:
        """Insertion-ordered pure-structure form (STObjects inline)."""
        return [[group, [t, rid, st]] for group, (t, rid, st) in self._last.items()]

    def restore(self, rows: list) -> None:
        """Rebuild from :meth:`snapshot` output."""
        self._last = {
            _freeze_group(group): (float(row[0]), int(row[1]), row[2])
            for group, row in rows
        }


class SequenceMatcher:
    """All-matches skip-till-any-match NFA for a :class:`SequenceRule`.

    A *partial match* is ``[first_t, last_t, last_rid, rids]`` -- the
    time anchor, the position of the last matched event in the stream
    order, and the matched rid list; its NFA state index is simply
    ``len(rids)``.  On each group event every partial may extend (the
    event satisfies the next step's local, transition and pairwise
    ``within_distance`` guards and lies within ``within`` of the
    anchor); in non-strict mode the un-extended original survives too
    (skip-till-any-match, so *every* qualifying combination fires), in
    strict mode a partial that does not extend dies, enforcing
    contiguity in the group's event order.  A partial reaching the last
    step completes immediately and is emitted on the event.

    Per group at most ``max_partials`` live partials are kept; overflow
    drops the oldest and is counted in :attr:`overflowed` (a bounded-
    memory safety valve, surfaced in the consumer's snapshot).
    """

    def __init__(self, rule: SequenceRule, max_partials: int = 256) -> None:
        self.rule = rule
        self.max_partials = max_partials
        #: group -> list of partials ``[first_t, last_t, last_rid, [rids]]``.
        self._partials: dict[Any, list[list]] = {}
        self._anchors = _GroupAnchors()
        #: Partials dropped by the ``max_partials`` cap.
        self.overflowed = 0

    def advance(
        self, rid: int, st: STObject, value: Any, t: float, fetch: Fetch
    ) -> list[Completion]:
        """Offer the next in-order event; return sequence completions."""
        rule = self.rule
        group = _freeze_group(rule.group_key(st, value))
        prev_st = self._anchors.prev_st(group)
        partials = self._partials.get(group, [])
        completions: list[Completion] = []
        survivors: list[list] = []

        def guards_ok(partial: list | None, step_idx: int) -> bool:
            pattern = rule.steps[step_idx]
            if not pattern.matches_event(st, value):
                return False
            if not pattern.transition_ok(prev_st, st):
                return False
            if pattern.within_distance is not None and partial is not None:
                for prev_rid in partial[3]:
                    row = fetch(prev_rid)
                    if row is None:
                        return False
                    if euclidean(row[0].geo, st.geo) > pattern.within_distance:
                        return False
            return True

        for partial in partials:
            first_t, last_t, last_rid, rids = partial
            viable = t - first_t <= rule.within
            extended = (
                viable
                and (t, rid) > (last_t, last_rid)
                and guards_ok(partial, len(rids))
            )
            if extended:
                if len(rids) + 1 == len(rule.steps):
                    completions.append(
                        (group, tuple(rids + [rid]), first_t, t, None)
                    )
                else:
                    survivors.append([first_t, t, rid, rids + [rid]])
            # Skip-till-any-match keeps the un-extended original (while
            # its budget lasts) so later events can extend it
            # differently; under strict contiguity the original never
            # survives a group event -- it either extends or dies.
            if viable and not rule.strict:
                survivors.append(partial)

        if guards_ok(None, 0):
            if len(rule.steps) == 1:
                completions.append((group, (rid,), t, t, None))
            else:
                survivors.append([t, t, rid, [rid]])

        if len(survivors) > self.max_partials:
            dropped = len(survivors) - self.max_partials
            self.overflowed += dropped
            survivors = survivors[dropped:]
        if survivors:
            self._partials[group] = survivors
        else:
            self._partials.pop(group, None)
        self._anchors.note(group, t, rid, st)
        return completions

    def on_watermark(self, w: float) -> list[Completion]:
        """Prune partials whose ``within`` budget expired; emits nothing."""
        for group in list(self._partials):
            alive = [
                p for p in self._partials[group] if p[0] + self.rule.within >= w
            ]
            if alive:
                self._partials[group] = alive
            else:
                del self._partials[group]
        return []

    def snapshot(self) -> dict:
        """Pure-structure form of the matcher state (checkpointable)."""
        return {
            "partials": [
                [group, [list(p[:3]) + [list(p[3])] for p in partials]]
                for group, partials in self._partials.items()
            ],
            "anchors": self._anchors.snapshot(),
            "overflowed": self.overflowed,
        }

    def restore(self, state: dict) -> None:
        """Rebuild the matcher from :meth:`snapshot` output."""
        self._partials = {
            _freeze_group(group): [
                [float(p[0]), float(p[1]), int(p[2]), [int(r) for r in p[3]]]
                for p in partials
            ]
            for group, partials in state["partials"]
        }
        self._anchors = _GroupAnchors()
        self._anchors.restore(state["anchors"])
        self.overflowed = int(state["overflowed"])


class AbsenceMatcher:
    """Deadline triggers for an :class:`AbsenceRule`.

    Every event matching the rule's ``after`` pattern arms a trigger
    ``(deadline, t, rid)`` for its group; an event matching ``expect``
    with time in ``(trigger_t, deadline]`` cancels the trigger.
    Cancellation runs *before* arming on the same event, so an event
    matching both patterns (the heartbeat idiom, where
    ``after == expect``) cancels its predecessors' triggers and then
    arms its own -- it never cancels itself.  Triggers whose deadline
    the watermark passes uncancelled fire as matches, in deterministic
    ``(deadline, t, rid)`` order.
    """

    def __init__(self, rule: AbsenceRule) -> None:
        self.rule = rule
        #: group -> list of armed triggers ``[deadline, t, rid]``.
        self._triggers: dict[Any, list[list]] = {}
        self._anchors = _GroupAnchors()

    def advance(
        self, rid: int, st: STObject, value: Any, t: float, fetch: Fetch
    ) -> list[Completion]:
        """Cancel satisfied triggers, then maybe arm a new one."""
        rule = self.rule
        group = _freeze_group(rule.group_key(st, value))
        prev_st = self._anchors.prev_st(group)
        if rule.expect.matches_event(st, value) and rule.expect.transition_ok(
            prev_st, st
        ):
            triggers = self._triggers.get(group)
            if triggers:
                alive = [trg for trg in triggers if not (trg[1] < t <= trg[0])]
                if alive:
                    self._triggers[group] = alive
                else:
                    del self._triggers[group]
        if rule.after.matches_event(st, value) and rule.after.transition_ok(
            prev_st, st
        ):
            self._triggers.setdefault(group, []).append([t + rule.within, t, rid])
        self._anchors.note(group, t, rid, st)
        return []

    def on_watermark(self, w: float) -> list[Completion]:
        """Fire triggers whose deadline the watermark has passed."""
        due: list[tuple] = []
        for group in list(self._triggers):
            remaining = []
            for deadline, t, rid in self._triggers[group]:
                if deadline <= w:
                    due.append((deadline, t, rid, group))
                else:
                    remaining.append([deadline, t, rid])
            if remaining:
                self._triggers[group] = remaining
            else:
                del self._triggers[group]
        due.sort(key=lambda row: (row[0], row[1], row[2]))
        return [
            (group, (rid,), t, deadline, None)
            for deadline, t, rid, group in due
        ]

    def snapshot(self) -> dict:
        """Pure-structure form of the matcher state (checkpointable)."""
        return {
            "triggers": [
                [group, [list(trg) for trg in triggers]]
                for group, triggers in self._triggers.items()
            ],
            "anchors": self._anchors.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Rebuild the matcher from :meth:`snapshot` output."""
        self._triggers = {
            _freeze_group(group): [
                [float(trg[0]), float(trg[1]), int(trg[2])] for trg in triggers
            ]
            for group, triggers in state["triggers"]
        }
        self._anchors = _GroupAnchors()
        self._anchors.restore(state["anchors"])


class WindowedMatcher:
    """Per-window, per-group accumulation for count / aggregate rules.

    Matching events are assigned to every window of the rule's
    :class:`~repro.streaming.window.WindowSpec` that contains their
    instant; each ``(window, group)`` accumulates ``[t, rid, contrib]``
    rows (contribution 1 for :class:`CountRule`, ``field(st, value)``
    for :class:`AggregateRule`).  When the watermark passes a window's
    end, every group seen in it is evaluated -- windows in ascending
    order, groups in first-contribution order, both deterministic --
    and satisfying groups complete with the reduced value.  Groups the
    window never saw are not evaluated (no zero-count firings; use an
    absence rule for silence detection).
    """

    def __init__(self, rule: "CountRule | AggregateRule") -> None:
        self.rule = rule
        #: ``(w_start, w_end)`` -> group -> list of ``[t, rid, contrib]``.
        self._windows: dict[tuple[float, float], dict[Any, list[list]]] = {}
        self._anchors = _GroupAnchors()

    def advance(
        self, rid: int, st: STObject, value: Any, t: float, fetch: Fetch
    ) -> list[Completion]:
        """Accumulate the event into its containing windows."""
        rule = self.rule
        group = _freeze_group(rule.group_key(st, value))
        pattern = rule.pattern
        matched = pattern.matches_event(st, value) and pattern.transition_ok(
            self._anchors.prev_st(group), st
        )
        if matched:
            contrib = (
                float(rule.field(st, value))
                if isinstance(rule, AggregateRule)
                else 1.0
            )
            for window in rule.spec.assign(t, t):
                key = (window.start, window.end)
                self._windows.setdefault(key, {}).setdefault(group, []).append(
                    [t, rid, contrib]
                )
        self._anchors.note(group, t, rid, st)
        return []

    def on_watermark(self, w: float) -> list[Completion]:
        """Close and evaluate every window whose end the watermark passed."""
        rule = self.rule
        completions: list[Completion] = []
        for key in sorted(k for k in self._windows if k[1] <= w):
            groups = self._windows.pop(key)
            for group, rows in groups.items():
                if isinstance(rule, AggregateRule):
                    value = rule.reduce([row[2] for row in rows])
                else:
                    value = len(rows)
                if rule.compare(value):
                    rids = tuple(int(row[1]) for row in rows)
                    completions.append((group, rids, key[0], key[1], value))
        return completions

    def snapshot(self) -> dict:
        """Pure-structure form of the matcher state (checkpointable)."""
        return {
            "windows": [
                [
                    list(key),
                    [
                        [group, [list(r) for r in rows]]
                        for group, rows in groups.items()
                    ],
                ]
                for key, groups in self._windows.items()
            ],
            "anchors": self._anchors.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Rebuild the matcher from :meth:`snapshot` output."""
        self._windows = {
            (float(key[0]), float(key[1])): {
                _freeze_group(group): [
                    [float(r[0]), int(r[1]), float(r[2])] for r in rows
                ]
                for group, rows in groups
            }
            for key, groups in state["windows"]
        }
        self._anchors = _GroupAnchors()
        self._anchors.restore(state["anchors"])


def compile_rule(rule: Rule, max_partials: int = 256):
    """Compile a rule to its incremental matcher."""
    if isinstance(rule, SequenceRule):
        return SequenceMatcher(rule, max_partials=max_partials)
    if isinstance(rule, AbsenceRule):
        return AbsenceMatcher(rule)
    if isinstance(rule, (CountRule, AggregateRule)):
        return WindowedMatcher(rule)
    raise TypeError(f"unknown rule type: {type(rule).__name__}")
