"""The CEP window consumer: rules wired into the streaming runtime.

:class:`CepConsumer` is the bridge between a
:class:`~repro.streaming.dstream.SpatialDStream` node and the compiled
matchers of :mod:`repro.streaming.cep.nfa`, speaking the same consumer
protocol as the buffered-window and keyed-state consumers: the context
calls :meth:`~CepConsumer.absorb` once per batch (idempotent per batch
id, ``state.update`` chaos-gated), :meth:`~CepConsumer.fire` after all
absorbs, :meth:`~CepConsumer.flush` at shutdown, and
:meth:`~CepConsumer.snapshot_state` / :meth:`~CepConsumer.restore_state`
around checkpoints.

**Where the state lives.**  Event payloads go exactly once into a
grid-keyed :class:`~repro.streaming.state.KeyedStateStore` (so cold
cells spill to disk under a memory budget and reload transparently when
a guard touches them); the matchers hold only rid references plus the
per-group anchors.  Everything -- store records, matcher state, heaps,
pending matches -- rides :meth:`~CepConsumer.snapshot_state` into the
checkpoint epochs, and recovery replays the WAL tail through the normal
:meth:`~CepConsumer.absorb` path to reach batch-equivalent state.

**Determinism.**  Events are fed to the matchers in the total order
``(t_start, rid)``, gated by the watermark: an event is processed only
once the watermark passes its start, so in-lateness out-of-order
arrivals are re-ordered before any matcher sees them, and an event
arriving *behind* the processed frontier is dropped and counted in
:attr:`~CepConsumer.late_dropped`.  Batch contents and rid assignment
are identical across executor backends, so match sets (and the emission
ordinals ``Match.seq``) are pinned equal across ``threads`` and
``processes`` -- the property the CEP tests assert under seeded chaos.

**Exactly-once emission.**  Each match is emitted under a synthetic
ledger window ``Window(seq, seq + 1)`` -- unique per match because
``seq`` is the deterministic emission ordinal -- through the context's
emit gate, so a recovered run re-derives the same matches but
suppresses the ones the emitted ledger already committed; durable
:class:`~repro.streaming.sinks.WindowSink` outputs additionally dedup
by commit marker, closing the crash window between a sink write and
the ledger append.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.streaming.state import KeyedStateStore
from repro.streaming.window import Window, event_span

from .nfa import compile_rule
from .rules import Match, Rule

_INF = float("inf")

Record = tuple[STObject, Any]


class CepConsumer:
    """Keyed NFA pattern matching as a streaming window consumer.

    One consumer evaluates a set of uniquely named
    :class:`~repro.streaming.cep.rules.Rule` objects over one stream
    node.  Construction mirrors the keyed-state consumer: the store's
    ``universe`` is fixed lazily from the first non-empty batch when
    not given, ``grid``/``node_capacity`` shape the store,
    ``memory_budget_bytes``/``spill_dir`` enable LRU cell spill, and
    ``lateness`` is the event-time slack the watermark trails behind
    the frontier.  ``max_partials`` bounds live partial matches per
    sequence group (see :class:`~repro.streaming.cep.nfa.
    SequenceMatcher`).
    """

    def __init__(
        self,
        node,
        rules: "list[Rule] | tuple[Rule, ...]",
        lateness: float = 0.0,
        universe: Envelope | None = None,
        grid: int = 8,
        node_capacity: int = 10,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        max_partials: int = 256,
    ) -> None:
        rules = list(rules)
        if not rules:
            raise ValueError("patterns() needs at least one rule")
        if not all(isinstance(rule, Rule) for rule in rules):
            raise TypeError("rules must be Rule objects (sequence()/absence()/...)")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"rule names must be unique, got {names}")
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        self.node = node
        self.rules = tuple(rules)
        self.lateness = lateness
        self.grid = grid
        self.node_capacity = node_capacity
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = spill_dir
        self.max_partials = max_partials
        self._matchers = [compile_rule(rule, max_partials) for rule in rules]
        self._store: KeyedStateStore | None = None
        #: Event-time watermark (frontier minus lateness).
        self._watermark = -_INF
        #: Processed frontier: every event with ``t_start <= horizon``
        #: has been fed to the matchers; anything arriving behind it is
        #: late by definition.
        self._horizon = -_INF
        #: Min-heap of ``(t_start, rid)`` -- absorbed, not yet processed.
        self._pending: list[tuple[float, int]] = []
        #: Min-heap of ``(expiry, rid)`` -- store eviction schedule.
        self._eviction: list[tuple[float, int]] = []
        # Plain ints (not itertools.count): both counters are part of
        # checkpointed state and must snapshot/restore exactly.
        self._next_rid = 0
        self._next_seq = 0
        #: Completed matches awaiting emission (at-least-once queue).
        self._ready: deque[Match] = deque()
        #: Events dropped behind the processed frontier.
        self.late_dropped = 0
        #: Kept 0 -- CEP drops whole events, never partial windows --
        #: but present so the context's lateness metrics read uniformly.
        self.late_window_drops = 0
        #: Per-match :class:`~repro.streaming.sinks.WindowSink` outputs
        #: (the context wires breakers/DLQ/injector into these).
        self.outputs: list = []
        self._match_fns: list[Callable[[Match], None]] = []
        self._absorbed_batch: int | None = None
        #: Registration order in the context -- the consumer's stable
        #: identity in checkpoints and the emitted ledger.
        self.checkpoint_index: int = -1
        if universe is not None:
            self._init_store(universe)

    # -- plumbing ----------------------------------------------------------

    def _injector(self):
        """The context's live fault injector (the store's chaos source)."""
        return getattr(self.node._ssc.spark_context, "fault_injector", None)

    def _init_store(self, universe: Envelope) -> None:
        self._store = KeyedStateStore(
            universe,
            grid=self.grid,
            node_capacity=self.node_capacity,
            memory_budget_bytes=self.memory_budget_bytes,
            spill_dir=self.spill_dir,
            injector_source=self._injector,
        )

    @property
    def store(self) -> KeyedStateStore | None:
        """The keyed payload store (None until a record fixed a universe)."""
        return self._store

    @property
    def state(self) -> "CepConsumer":
        """The consumer doubles as its own lateness-counter carrier.

        The context's metrics refresh reads ``consumer.state.
        late_dropped`` / ``.late_window_drops`` across all consumer
        kinds; for CEP those counters live directly on the consumer.
        """
        return self

    @property
    def watermark(self) -> float:
        """The current event-time watermark."""
        return self._watermark

    @property
    def matchers(self) -> list:
        """The compiled matchers, in rule order (introspection/tests)."""
        return list(self._matchers)

    def add_match_fn(self, fn: Callable[[Match], None]) -> Callable[[Match], None]:
        """Register a per-match callback (the in-memory output path)."""
        self._match_fns.append(fn)
        return fn

    # -- ingest ------------------------------------------------------------

    def absorb(self, batch_id: int, records: list[Record], batch_time: float) -> None:
        """Admit one batch's events into the store and the pending heap.

        Idempotent per batch id (the retry contract) and chaos-gated on
        ``state.update`` before any mutation.  Staged two-pass like the
        keyed window state: spans and lateness are computed first (the
        part that can raise), mutation second, so a failed absorb
        leaves no partial state for the retry to double-count.  Events
        behind the processed frontier are dropped and counted -- the
        matchers have already advanced past their instant, so feeding
        them would break the deterministic event order.
        """
        if self._absorbed_batch == batch_id:
            return
        injector = self._injector()
        if injector is not None:
            injector.check("state.update", key=batch_id)
        if self._store is None:
            if not records:
                self._absorbed_batch = batch_id
                return
            universe = Envelope.empty()
            for st, _value in records:
                universe = universe.merge(st.geo.envelope)
            self._init_store(universe)
        max_end = self._watermark + self.lateness
        staged: list[tuple[STObject, Any, float, float]] = []
        late = 0
        for st, value in records:
            t_start, t_end = event_span(st, batch_time)
            if t_end > max_end:
                max_end = t_end
            if t_start <= self._horizon:
                late += 1
                continue
            staged.append((st, value, t_start, t_end))
        for st, value, t_start, t_end in staged:
            rid = self._next_rid
            self._next_rid += 1
            self._store.insert(rid, st, value, t_start, t_end)
            heapq.heappush(self._pending, (t_start, rid))
            expiry = max(rule.expiry(t_start) for rule in self.rules)
            heapq.heappush(self._eviction, (expiry, rid))
        self.late_dropped += late
        self._watermark = max(self._watermark, max_end - self.lateness)
        self._absorbed_batch = batch_id

    # -- evaluation --------------------------------------------------------

    def _fetch(self, rid: int):
        """Payload lookup for guard evaluation (spill-transparent)."""
        store = self._store
        return store.get(rid) if store is not None else None

    def _complete(self, rule: Rule, completions: list) -> None:
        """Turn matcher completions into emission-ready Match objects.

        Payloads are fetched *now*, while every contributing rid is
        still within its eviction horizon; the Match then carries its
        events by value, so emission retries and checkpoints never
        depend on the store keeping the rows.
        """
        for group, rids, start, end, value in completions:
            events = []
            for rid in rids:
                row = self._fetch(rid)
                if row is not None:
                    events.append((row[0], row[1]))
            self._ready.append(
                Match(
                    rule=rule.name,
                    group=group,
                    events=tuple(events),
                    start=start,
                    end=end,
                    value=value,
                    seq=self._next_seq,
                )
            )
            self._next_seq += 1

    def fire(self, ssc) -> int:
        """Advance the matchers to the watermark and emit ready matches.

        Deterministic order per call: (1) pending events with ``t_start
        <= watermark`` feed every matcher in rule order, in exact
        ``(t_start, rid)`` heap order -- sequence completions fire on
        their closing event; (2) each matcher observes the watermark --
        absence deadlines fire, count/aggregate windows close; (3) the
        store evicts events strictly past every rule's expiry horizon
        (an event is popped before feeding, so a user guard raising
        mid-event leaves that event consumed -- matching is
        at-least-once per *match*, via the ready queue, not per event);
        (4) ready matches emit oldest-first through the context's
        exactly-once gate under their synthetic ``Window(seq, seq+1)``
        ledger key.  A failed emission leaves the match queued for the
        batch retry; durable sinks dedup re-deliveries by commit
        marker.

        Returns the number of matches emitted (the context adds it to
        ``windows_emitted``, keeping the recovery suppression ledger's
        accounting uniform across consumer kinds).
        """
        w = self._watermark
        while self._pending and self._pending[0][0] <= w:
            t_start, rid = heapq.heappop(self._pending)
            row = self._fetch(rid)
            if row is None:
                continue
            st, value = row[0], row[1]
            for rule, matcher in zip(self.rules, self._matchers):
                self._complete(
                    rule, matcher.advance(rid, st, value, t_start, self._fetch)
                )
        for rule, matcher in zip(self.rules, self._matchers):
            self._complete(rule, matcher.on_watermark(w))
        while self._eviction and self._eviction[0][0] < w:
            _expiry, rid = heapq.heappop(self._eviction)
            self._store.remove(rid)
        if w > self._horizon:
            self._horizon = w
        fired = 0
        while self._ready:
            match = self._ready[0]
            window = Window(float(match.seq), float(match.seq + 1))
            if ssc._emit_allowed(self, window):
                for fn in self._match_fns:
                    fn(match)
                if self.outputs:
                    rdd = ssc._batch_rdd(list(match.events))
                    for sink in self.outputs:
                        sink(window, rdd)
                ssc._note_emitted(self, window)
                ssc.metrics.matches_emitted += 1
                fired += 1
            self._ready.popleft()
        return fired

    def flush(self, ssc) -> int:
        """Drain everything at shutdown: the stream is declared over.

        The watermark jumps to +inf, so every pending event processes,
        every armed absence trigger resolves (the expected event is now
        definitively absent), and every open count/aggregate window
        closes -- then the resulting matches emit through the normal
        gate.
        """
        if self._store is None and not self._ready:
            return 0
        self._watermark = _INF
        return self.fire(ssc)

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable consumer state for checkpoint epochs.

        Self-contained: store records are embedded (spilled cells read
        from disk without loading), matcher state rides as pure
        structure (group anchors keep their STObjects -- pickle
        handles those), and pending matches are serialized field by
        field.  Per-cell R-trees are *not* serialized; restore
        re-inserts records through the normal store path and trees
        rebuild lazily on first touch.
        """
        if self._store is None:
            store_state = None
        else:
            universe = self._store.partitioner.universe
            store_state = {
                "universe": (
                    universe.min_x,
                    universe.min_y,
                    universe.max_x,
                    universe.max_y,
                ),
                "records": self._store.all_records(),
                "spill": {
                    "cells_spilled": self._store.cells_spilled,
                    "cells_loaded": self._store.cells_loaded,
                    "spill_failures": self._store.spill_failures,
                },
            }
        return {
            "kind": "cep",
            "absorbed": self._absorbed_batch,
            "watermark": self._watermark,
            "horizon": self._horizon,
            "next_rid": self._next_rid,
            "next_seq": self._next_seq,
            "late_dropped": self.late_dropped,
            "pending": sorted(self._pending),
            "eviction": sorted(self._eviction),
            "ready": [
                (m.rule, m.group, list(m.events), m.start, m.end, m.value, m.seq)
                for m in self._ready
            ],
            "rules": [rule.name for rule in self.rules],
            "matchers": [matcher.snapshot() for matcher in self._matchers],
            "store": store_state,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Reset to a :meth:`snapshot_state` (recovery entry point).

        The re-declared rule list must match the snapshot's, name for
        name and in order: matcher states are positional, so a changed
        rule set would silently graft one rule's partial matches onto
        another.  Recovery's re-declare-identically contract makes this
        an error here, same as the pipeline-shape check upstream.
        """
        recorded = snapshot.get("rules")
        declared = [rule.name for rule in self.rules]
        if recorded is not None and recorded != declared:
            raise ValueError(
                "CEP rules must be re-declared identically to restore: "
                f"checkpoint recorded {recorded}, pipeline declares {declared}"
            )
        self._absorbed_batch = snapshot["absorbed"]
        self._watermark = snapshot["watermark"]
        self._horizon = snapshot["horizon"]
        self._next_rid = snapshot["next_rid"]
        self._next_seq = snapshot["next_seq"]
        self.late_dropped = snapshot["late_dropped"]
        pending = [tuple(row) for row in snapshot["pending"]]
        heapq.heapify(pending)
        self._pending = pending
        eviction = [tuple(row) for row in snapshot["eviction"]]
        heapq.heapify(eviction)
        self._eviction = eviction
        self._ready = deque(
            Match(
                rule=rule,
                group=group,
                events=tuple(tuple(ev) for ev in events),
                start=start,
                end=end,
                value=value,
                seq=seq,
            )
            for rule, group, events, start, end, value, seq in snapshot["ready"]
        )
        for matcher, state in zip(self._matchers, snapshot["matchers"]):
            matcher.restore(state)
        store_state = snapshot["store"]
        if store_state is None:
            self._store = None
            return
        self._init_store(Envelope(*store_state["universe"]))
        spill = store_state.get("spill")
        if spill:
            self._store.cells_spilled = spill["cells_spilled"]
            self._store.cells_loaded = spill["cells_loaded"]
            self._store.spill_failures = spill["spill_failures"]
        for rid, st, value, t_start, t_end in store_state["records"]:
            self._store.insert(rid, st, value, t_start, t_end)


class PatternStream:
    """The user-facing handle returned by ``SpatialDStream.patterns()``.

    Wraps one :class:`CepConsumer` and exposes its outputs: an
    in-memory :class:`~repro.streaming.dstream.Sink` of ``(rule_name,
    Match)`` rows via :meth:`matches`, arbitrary callbacks via
    :meth:`for_each_match`, and durable per-match delivery via
    :meth:`deliver_to`.
    """

    def __init__(self, consumer: CepConsumer) -> None:
        self._consumer = consumer

    @property
    def consumer(self) -> CepConsumer:
        """The underlying consumer (store access for tests and metrics)."""
        return self._consumer

    def matches(self, rule: str | None = None):
        """An in-memory sink receiving ``(rule_name, Match)`` per match.

        With *rule* given, only that rule's matches are captured.  Each
        call registers a fresh sink, so different rules can be observed
        independently.
        """
        from repro.streaming.dstream import Sink

        sink = Sink()

        def capture(match: Match) -> None:
            if rule is None or match.rule == rule:
                sink.append(match.rule, match)

        self._consumer.add_match_fn(capture)
        return sink

    def for_each_match(self, fn: Callable[[Match], None]) -> "PatternStream":
        """Run *fn* on every emitted match (chainable)."""
        self._consumer.add_match_fn(fn)
        return self

    def deliver_to(self, sink) -> Any:
        """Deliver each match's events through a durable WindowSink.

        Every match writes its own target named by the unique synthetic
        ledger window ``window-<seq>-<seq+1>``, so re-deliveries after
        a crash dedup on the commit marker.  Use a dedicated sink
        (directory) per pattern stream -- two streams sharing one
        directory would collide on the seq-derived names.  The sink is
        returned for counter inspection; the context wires retries,
        circuit breaker and DLQ protections into it like any window
        sink.
        """
        self._consumer.outputs.append(sink)
        return sink
