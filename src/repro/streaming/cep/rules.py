"""The CEP rule DSL: event patterns, spatial guards and the four rules.

A *rule* is a declarative description of a situation across events --
the noex-rules vocabulary (sequence / absence / count / aggregate with
``within`` and ``group_by``), extended with the spatial guards that
make it spatio-temporal over :class:`~repro.core.stobject.STObject`
streams:

- ``inside=geometry`` -- the event's geometry must be contained by a
  fixed fence (the static-side relaxed ``CONTAINED_BY`` of the batch
  operators);
- ``entered=fence`` / ``exited=fence`` -- *transition* guards: the
  event crosses the fence boundary relative to its group's previous
  event (an entity's last known position), the geofence entry/exit
  primitives;
- ``within_distance=d`` -- in a :func:`sequence` step, the event must
  lie within Euclidean distance ``d`` of **every** event already
  matched by the partial match ("three events within 500m of each
  other").

Rules are pure descriptions: building one runs nothing.  They compile
to the incremental matchers of :mod:`repro.streaming.cep.nfa` when
registered through :meth:`~repro.streaming.dstream.SpatialDStream.
patterns`, and the executable specification of what each rule *means*
is the brute-force :mod:`repro.streaming.cep.oracle` the tests pin the
matchers against.

Event order is the stream's deterministic total order ``(t, rid)`` --
event-time start, then arrival ordinal -- so rules over ties and
out-of-order arrival mean the same thing on every executor backend.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.predicates import CONTAINED_BY, resolve_predicate
from repro.core.stobject import STObject
from repro.streaming.operators import relax_static
from repro.streaming.window import WindowSpec

#: Comparators a :func:`count` / :func:`aggregate` rule may gate on.
COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "gte": operator.ge,
    "lte": operator.le,
    "eq": operator.eq,
    "gt": operator.gt,
    "lt": operator.lt,
}

#: Aggregations an :func:`aggregate` rule may compute over a window.
AGGREGATIONS = ("sum", "avg", "min", "max")

#: ``CONTAINED_BY`` under the streaming static-side temporal
#: relaxation: an untimed fence matches timed events spatially.
_INSIDE = relax_static(resolve_predicate(CONTAINED_BY))


class RuleError(ValueError):
    """An invalid rule or pattern declaration."""


def _category_of(value: Any) -> Any:
    """The record value's category under the built-in source convention.

    The bundled sources and sinks carry values shaped ``(id,
    category)``; for tuple/list values the last element is the
    category, any other value *is* its own category.
    """
    if isinstance(value, (tuple, list)) and value:
        return value[-1]
    return value


def _as_fence(geometry: "STObject | str | None", guard: str) -> STObject | None:
    """Coerce a guard's fence to an :class:`STObject` (WKT accepted)."""
    if geometry is None:
        return None
    if isinstance(geometry, STObject):
        return geometry
    try:
        return STObject(geometry)
    except Exception as exc:
        raise RuleError(f"{guard} guard needs a geometry or WKT string: {exc}") from exc


@dataclass(frozen=True)
class EventPattern:
    """One step of a rule: what a single event must satisfy.

    Built by :func:`step`.  ``category``/``where``/``inside`` are
    *local* guards decided by the event alone; ``entered``/``exited``
    are transition guards decided against the group's previous event
    (:meth:`transition_ok`); ``within_distance`` is relational to a
    sequence's previously matched events and is evaluated by the
    sequence matcher itself.
    """

    #: Category the value must carry (see :func:`_category_of`); None
    #: accepts any category.
    category: Any = None
    #: Arbitrary guard ``fn(st, value) -> bool``; None accepts all.
    where: Callable[[STObject, Any], bool] | None = None
    #: Fence the event must lie inside (relaxed ``CONTAINED_BY``).
    inside: STObject | None = None
    #: Fence the event must have just entered (previous group event
    #: outside or unknown, this event inside).
    entered: STObject | None = None
    #: Fence the event must have just exited (previous group event
    #: inside, this event outside).
    exited: STObject | None = None
    #: Max Euclidean distance to every previously matched event of the
    #: partial match (sequence steps only; None disables).
    within_distance: float | None = None

    def matches_event(self, st: STObject, value: Any) -> bool:
        """The local guards: category, ``where`` and ``inside``."""
        if self.category is not None and _category_of(value) != self.category:
            return False
        if self.where is not None and not self.where(st, value):
            return False
        if self.inside is not None and not _INSIDE.evaluate(st, self.inside):
            return False
        return True

    def transition_ok(self, prev_st: STObject | None, st: STObject) -> bool:
        """The transition guards against the group's previous event.

        ``entered``: this event inside the fence, the previous one
        outside -- or unknown, so a group's *first* sighting inside
        counts as an entry.  ``exited``: the previous event inside,
        this one outside; with no previous event there is nothing to
        exit, so the guard fails.
        """
        if self.entered is not None:
            if not _INSIDE.evaluate(st, self.entered):
                return False
            if prev_st is not None and _INSIDE.evaluate(prev_st, self.entered):
                return False
        if self.exited is not None:
            if _INSIDE.evaluate(st, self.exited):
                return False
            if prev_st is None or not _INSIDE.evaluate(prev_st, self.exited):
                return False
        return True


def step(
    category: Any = None,
    where: Callable[[STObject, Any], bool] | None = None,
    inside: "STObject | str | None" = None,
    entered: "STObject | str | None" = None,
    exited: "STObject | str | None" = None,
    within_distance: float | None = None,
) -> EventPattern:
    """Build one :class:`EventPattern` (a rule step).

    All guards are optional and conjunctive -- an event matches the
    step when every declared guard holds.  ``within_distance`` must be
    positive and is only meaningful inside :func:`sequence` steps.
    """
    if within_distance is not None and within_distance <= 0:
        raise RuleError(
            f"within_distance must be positive, got {within_distance}"
        )
    return EventPattern(
        category=category,
        where=where,
        inside=_as_fence(inside, "inside"),
        entered=_as_fence(entered, "entered"),
        exited=_as_fence(exited, "exited"),
        within_distance=within_distance,
    )


@dataclass(frozen=True)
class Match:
    """One rule firing: the completed evidence for a pattern.

    ``events`` are the contributing ``(STObject, value)`` records in
    event order; ``start``/``end`` span the match in event time
    (window bounds for count/aggregate, trigger time to deadline for
    absence); ``value`` carries the count or aggregate (None for
    sequence/absence); ``seq`` is the consumer-wide emission ordinal
    -- the match's durable identity in the emitted ledger and in
    per-match sink targets.
    """

    rule: str
    group: Any
    events: tuple
    start: float
    end: float
    value: Any = None
    seq: int = -1


class Rule:
    """Base class of the four rule types (a named, grouped pattern).

    Subclasses carry their own matching parameters; the shared part is
    the rule ``name`` (the tag its matches are emitted under, unique
    per :meth:`~repro.streaming.dstream.SpatialDStream.patterns` call)
    and the optional ``group_by`` key function that partitions the
    stream into independent match scopes.
    """

    def __init__(
        self, name: str, group_by: Callable[[STObject, Any], Any] | None
    ) -> None:
        if not name or not isinstance(name, str):
            raise RuleError(f"rule name must be a non-empty string, got {name!r}")
        self.name = name
        self.group_by = group_by

    def group_key(self, st: STObject, value: Any) -> Any:
        """The event's match scope (None when the rule is ungrouped)."""
        return self.group_by(st, value) if self.group_by is not None else None

    def expiry(self, t: float) -> float:
        """The event-time horizon after which an event at *t* can no
        longer contribute to a new match of this rule -- what drives
        eviction from the keyed state store (subclass duty)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SequenceRule(Rule):
    """``sequence``: ordered steps within a time budget (see :func:`sequence`)."""

    def __init__(
        self,
        name: str,
        steps: list[EventPattern],
        within: float,
        group_by: Callable[[STObject, Any], Any] | None,
        strict: bool,
    ) -> None:
        super().__init__(name, group_by)
        self.steps = tuple(steps)
        self.within = within
        self.strict = strict

    def expiry(self, t: float) -> float:
        """An event can anchor or join matches until ``t + within``."""
        return t + self.within


class AbsenceRule(Rule):
    """``absence``: an expected event that never arrived (see :func:`absence`)."""

    def __init__(
        self,
        name: str,
        expect: EventPattern,
        within: float,
        after: EventPattern,
        group_by: Callable[[STObject, Any], Any] | None,
    ) -> None:
        super().__init__(name, group_by)
        self.expect = expect
        self.within = within
        self.after = after

    def expiry(self, t: float) -> float:
        """A trigger's evidence is needed until its deadline ``t + within``."""
        return t + self.within


class _WindowedRule(Rule):
    """Shared window machinery of :class:`CountRule` / :class:`AggregateRule`."""

    def __init__(
        self,
        name: str,
        pattern: EventPattern,
        within: float,
        threshold: Any,
        op: str,
        slide: float | None,
        group_by: Callable[[STObject, Any], Any] | None,
        origin: float,
    ) -> None:
        super().__init__(name, group_by)
        if op not in COMPARATORS:
            raise RuleError(
                f"op must be one of {sorted(COMPARATORS)}, got {op!r}"
            )
        if pattern.within_distance is not None:
            raise RuleError(
                "within_distance guards need a sequence's previously matched "
                f"events and cannot appear in a {type(self).__name__}"
            )
        self.pattern = pattern
        self.threshold = threshold
        self.op = op
        self.spec = WindowSpec(within, slide, origin)

    @property
    def within(self) -> float:
        """The evaluation window length."""
        return self.spec.length

    def compare(self, value: Any) -> bool:
        """Does *value* satisfy the rule's comparator against the threshold?"""
        return COMPARATORS[self.op](value, self.threshold)

    def expiry(self, t: float) -> float:
        """An event is needed until its last containing window closes."""
        return self.spec.assign(t, t)[-1].end


class CountRule(_WindowedRule):
    """``count``: event frequency per window and group (see :func:`count`)."""


class AggregateRule(_WindowedRule):
    """``aggregate``: a numeric reduction per window and group (see
    :func:`aggregate`)."""

    def __init__(
        self,
        name: str,
        pattern: EventPattern,
        field: Callable[[STObject, Any], float],
        agg: str,
        threshold: float,
        op: str,
        within: float,
        slide: float | None,
        group_by: Callable[[STObject, Any], Any] | None,
        origin: float,
    ) -> None:
        super().__init__(name, pattern, within, threshold, op, slide, group_by, origin)
        if agg not in AGGREGATIONS:
            raise RuleError(f"agg must be one of {AGGREGATIONS}, got {agg!r}")
        if not callable(field):
            raise RuleError(f"field must be callable, got {field!r}")
        self.field = field
        self.agg = agg

    def reduce(self, contributions: list[float]) -> float:
        """Fold the window's contributions with the rule's aggregation."""
        if self.agg == "sum":
            return sum(contributions)
        if self.agg == "avg":
            return sum(contributions) / len(contributions)
        if self.agg == "min":
            return min(contributions)
        return max(contributions)


def _check_within(within: float) -> float:
    if within <= 0:
        raise RuleError(f"within must be positive, got {within}")
    return float(within)


def sequence(
    name: str,
    steps: "list[EventPattern] | tuple[EventPattern, ...]",
    within: float,
    group_by: Callable[[STObject, Any], Any] | None = None,
    strict: bool = False,
) -> SequenceRule:
    """An ordered sequence of events inside a time budget.

    A match is any tuple of events, strictly increasing in the stream
    order ``(t, rid)``, where the i-th event satisfies ``steps[i]``
    (local, transition and ``within_distance`` guards), all events
    share the ``group_by`` key, and the span from first to last event
    is at most ``within`` (inclusive -- an event landing exactly on
    the budget boundary still completes the match).  Matching is
    *skip-till-any-match*: every combination that satisfies the rule
    fires, not just the earliest.

    With ``strict=True`` the matched events must be consecutive in
    their group's event order: any other event of the same group
    arriving between two matched steps kills the partial match.
    """
    patterns = list(steps)
    if not patterns:
        raise RuleError("sequence needs at least one step")
    if not all(isinstance(p, EventPattern) for p in patterns):
        raise RuleError("sequence steps must be EventPattern objects (use step())")
    return SequenceRule(name, patterns, _check_within(within), group_by, bool(strict))


def absence(
    name: str,
    expect: EventPattern,
    within: float,
    after: EventPattern | None = None,
    group_by: Callable[[STObject, Any], Any] | None = None,
) -> AbsenceRule:
    """An expected event that never arrived.

    Every event matching ``after`` arms a trigger; the trigger fires a
    match when *no* event of the same group matching ``expect``
    arrives with event time in ``(t_after, t_after + within]`` by the
    time the watermark passes the deadline.  ``after`` defaults to
    ``expect`` itself -- the heartbeat idiom, where each heartbeat
    expects the next one within the budget and silence raises the
    alarm.  The arming event never cancels its own trigger (the
    cancellation interval is open at the trigger instant).
    """
    if not isinstance(expect, EventPattern):
        raise RuleError("expect must be an EventPattern (use step())")
    if after is None:
        after = expect
    elif not isinstance(after, EventPattern):
        raise RuleError("after must be an EventPattern (use step())")
    for role, pattern in (("expect", expect), ("after", after)):
        if pattern.within_distance is not None:
            raise RuleError(
                f"within_distance guards cannot appear in an absence {role} "
                "pattern (they need a sequence's previously matched events)"
            )
    return AbsenceRule(name, expect, _check_within(within), after, group_by)


def count(
    name: str,
    pattern: EventPattern,
    within: float,
    threshold: int,
    op: str = "gte",
    slide: float | None = None,
    group_by: Callable[[STObject, Any], Any] | None = None,
    origin: float = 0.0,
) -> CountRule:
    """Event frequency per event-time window and group.

    Events matching *pattern* are assigned to tumbling (default) or
    sliding (``slide``) windows of length ``within``; when a window
    closes, each group's count is compared against ``threshold`` with
    ``op`` and a match fires per satisfying ``(window, group)``.  Only
    groups with at least one matching event in the window are
    evaluated -- a group the window never saw cannot fire (use
    :func:`absence` for "no events at all").
    """
    if not isinstance(pattern, EventPattern):
        raise RuleError("pattern must be an EventPattern (use step())")
    if threshold < 0:
        raise RuleError(f"threshold must be >= 0, got {threshold}")
    return CountRule(name, pattern, _check_within(within), threshold, op, slide, group_by, origin)


def aggregate(
    name: str,
    pattern: EventPattern,
    field: Callable[[STObject, Any], float],
    within: float,
    threshold: float,
    agg: str = "sum",
    op: str = "gte",
    slide: float | None = None,
    group_by: Callable[[STObject, Any], Any] | None = None,
    origin: float = 0.0,
) -> AggregateRule:
    """A numeric reduction per event-time window and group.

    Like :func:`count`, but each matching event contributes
    ``field(st, value)`` and the window's contributions fold through
    ``agg`` (``sum``/``avg``/``min``/``max``) before the ``op``
    comparison against ``threshold``.
    """
    return AggregateRule(
        name,
        pattern,
        field,
        agg,
        threshold,
        op,
        _check_within(within),
        slide,
        group_by,
        origin,
    )
