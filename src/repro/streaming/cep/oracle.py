"""Brute-force reference semantics for the CEP rules.

This module is the *executable specification* of what each rule means:
given the complete set of accepted events, it enumerates every match by
exhaustive search -- no NFAs, no incremental state, no watermark
machinery beyond a single final cutoff.  The property tests pit the
incremental matchers against it over randomized event orderings, and
the ``--mode cep`` benchmark uses it as the naive re-scan baseline the
NFA path is measured against.

The semantics mirrored here, in terms of the stream's total event
order ``(t, arrival ordinal)``:

- *sequence*: every strictly order-increasing tuple of same-group
  events satisfying the step guards with ``t_last - t_first <=
  within`` (inclusive); under ``strict`` the tuple must be consecutive
  in its group's event order.  Transition guards (``entered`` /
  ``exited``) are evaluated against the group's previous event in the
  *global* order -- a property of the event, not of the tuple --
  exactly as the incremental matcher sees them.
- *absence*: an ``after``-matching event arms a trigger; the trigger
  fires unless a same-group ``expect``-matching event exists with time
  in ``(t, t + within]``; the arming event never cancels itself.
- *count* / *aggregate*: matching events assign to the rule's windows;
  each ``(window, group)`` with at least one event evaluates its count
  or reduced field against the threshold.

``watermark`` bounds processing the way the stream's final watermark
does: sequence members must have been fed to the matchers (event time
at or before the cutoff), absence deadlines and window closes must
have been reached.  The default ``inf`` corresponds to a flushed
stream.
"""

from __future__ import annotations

from typing import Any

from repro.core.stobject import STObject
from repro.geometry.distance import euclidean
from repro.streaming.window import event_span

from .nfa import _freeze_group
from .rules import (
    AbsenceRule,
    AggregateRule,
    CountRule,
    Match,
    Rule,
    SequenceRule,
)

_INF = float("inf")

Record = tuple[STObject, Any]


def canonical(match: Match) -> tuple:
    """A match's identity for set comparison, with ``seq`` erased.

    The emission ordinal is an engine artifact (the oracle has none),
    so equality between engine and oracle match sets compares
    everything else: rule, group, the contributing events themselves
    (STObjects hash by value), span and computed value.
    """
    return (match.rule, match.group, match.events, match.start, match.end, match.value)


class _Event:
    """One accepted event in oracle form."""

    __slots__ = ("idx", "st", "value", "t", "group", "prev_st")

    def __init__(self, idx: int, st: STObject, value: Any, t: float) -> None:
        self.idx = idx
        self.st = st
        self.value = value
        self.t = t
        self.group: Any = None
        #: The group's previous event geometry in global order (the
        #: transition-guard anchor), filled in per rule.
        self.prev_st: STObject | None = None


def _ordered_events(rows: list[Record], rule: Rule, fallback_time: float) -> list[_Event]:
    """Rows in the stream's total order, annotated with group + anchor."""
    events = []
    for idx, (st, value) in enumerate(rows):
        t_start, _t_end = event_span(st, fallback_time)
        events.append(_Event(idx, st, value, t_start))
    events.sort(key=lambda ev: (ev.t, ev.idx))
    anchors: dict[Any, STObject] = {}
    for ev in events:
        ev.group = _freeze_group(rule.group_key(ev.st, ev.value))
        ev.prev_st = anchors.get(ev.group)
        anchors[ev.group] = ev.st
    return events


def _sequence_matches(
    rule: SequenceRule, events: list[_Event], watermark: float
) -> list[Match]:
    # The engine feeds an event to the matchers only once the watermark
    # passes it, so events beyond the cutoff can neither extend nor
    # complete a sequence.  Filtering keeps a (t, idx)-prefix per group
    # -- anchors (prev_st) still agree, because an event's predecessor
    # always precedes it in that order.
    by_group: dict[Any, list[_Event]] = {}
    for ev in events:
        if ev.t <= watermark:
            by_group.setdefault(ev.group, []).append(ev)
    steps = rule.steps
    k = len(steps)
    out: list[Match] = []

    def step_ok(ev: _Event, step_idx: int, chosen: list[_Event]) -> bool:
        pattern = steps[step_idx]
        if not pattern.matches_event(ev.st, ev.value):
            return False
        if not pattern.transition_ok(ev.prev_st, ev.st):
            return False
        if pattern.within_distance is not None:
            for prev in chosen:
                if euclidean(prev.st.geo, ev.st.geo) > pattern.within_distance:
                    return False
        return True

    for group, members in by_group.items():
        if rule.strict:
            # Strict contiguity: only consecutive runs in the group's
            # event order can match.
            for start in range(len(members) - k + 1):
                run = members[start : start + k]
                if run[-1].t - run[0].t > rule.within:
                    continue
                if all(step_ok(run[i], i, run[:i]) for i in range(k)):
                    out.append(
                        Match(
                            rule=rule.name,
                            group=group,
                            events=tuple((ev.st, ev.value) for ev in run),
                            start=run[0].t,
                            end=run[-1].t,
                        )
                    )
            continue

        def dfs(start_idx: int, chosen: list[_Event]) -> None:
            step_idx = len(chosen)
            if step_idx == k:
                out.append(
                    Match(
                        rule=rule.name,
                        group=group,
                        events=tuple((ev.st, ev.value) for ev in chosen),
                        start=chosen[0].t,
                        end=chosen[-1].t,
                    )
                )
                return
            for pos in range(start_idx, len(members)):
                ev = members[pos]
                if chosen and ev.t - chosen[0].t > rule.within:
                    break  # members are ordered; later ones only worse
                if step_ok(ev, step_idx, chosen):
                    dfs(pos + 1, chosen + [ev])

        dfs(0, [])
    return out


def _absence_matches(
    rule: AbsenceRule, events: list[_Event], watermark: float
) -> list[Match]:
    by_group: dict[Any, list[_Event]] = {}
    for ev in events:
        by_group.setdefault(ev.group, []).append(ev)
    fired = []
    for group, members in by_group.items():
        for ev in members:
            if not (
                rule.after.matches_event(ev.st, ev.value)
                and rule.after.transition_ok(ev.prev_st, ev.st)
            ):
                continue
            deadline = ev.t + rule.within
            if deadline > watermark:
                continue
            cancelled = any(
                other.t > ev.t
                and other.t <= deadline
                and rule.expect.matches_event(other.st, other.value)
                and rule.expect.transition_ok(other.prev_st, other.st)
                for other in members
            )
            if not cancelled:
                fired.append((deadline, ev.t, ev.idx, group, ev))
    fired.sort(key=lambda row: (row[0], row[1], row[2]))
    return [
        Match(
            rule=rule.name,
            group=group,
            events=((ev.st, ev.value),),
            start=ev.t,
            end=deadline,
        )
        for deadline, _t, _idx, group, ev in fired
    ]


def _windowed_matches(
    rule: "CountRule | AggregateRule", events: list[_Event], watermark: float
) -> list[Match]:
    windows: dict[tuple[float, float], dict[Any, list[_Event]]] = {}
    for ev in events:
        if not (
            rule.pattern.matches_event(ev.st, ev.value)
            and rule.pattern.transition_ok(ev.prev_st, ev.st)
        ):
            continue
        for window in rule.spec.assign(ev.t, ev.t):
            if window.end > watermark:
                continue
            key = (window.start, window.end)
            windows.setdefault(key, {}).setdefault(ev.group, []).append(ev)
    out: list[Match] = []
    for key in sorted(windows):
        for group, members in windows[key].items():
            if isinstance(rule, AggregateRule):
                value = rule.reduce(
                    [float(rule.field(ev.st, ev.value)) for ev in members]
                )
            else:
                value = len(members)
            if rule.compare(value):
                out.append(
                    Match(
                        rule=rule.name,
                        group=group,
                        events=tuple((ev.st, ev.value) for ev in members),
                        start=key[0],
                        end=key[1],
                        value=value,
                    )
                )
    return out


def brute_force_matches(
    rows: list[Record],
    rule: Rule,
    fallback_time: float = 0.0,
    watermark: float = _INF,
) -> list[Match]:
    """Every match of *rule* over the complete event set *rows*.

    *rows* are ``(STObject, value)`` pairs in arrival order (the
    arrival ordinal breaks event-time ties, mirroring rid order);
    untimed events take *fallback_time* as their instant, like a
    batch's ingest time.  *watermark* cuts off time-driven completions;
    the default means "stream flushed".  Matches carry ``seq=-1`` --
    compare against engine output through :func:`canonical`.
    """
    events = _ordered_events(list(rows), rule, fallback_time)
    if isinstance(rule, SequenceRule):
        return _sequence_matches(rule, events, watermark)
    if isinstance(rule, AbsenceRule):
        return _absence_matches(rule, events, watermark)
    if isinstance(rule, (CountRule, AggregateRule)):
        return _windowed_matches(rule, events, watermark)
    raise TypeError(f"unknown rule type: {type(rule).__name__}")
