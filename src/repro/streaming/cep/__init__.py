"""Spatio-temporal complex event processing over spatial streams.

The pattern layer the paper's title promises: declarative rules over
*multiple* events -- ordered sequences, missing heartbeats, windowed
counts and aggregates -- extended with spatial guards over
:class:`~repro.core.stobject.STObject` (geofence containment,
entry/exit transitions, pairwise proximity), compiled to incremental
matchers whose event payloads live in the grid-keyed
:class:`~repro.streaming.state.KeyedStateStore` and whose partial-match
state checkpoints and recovers with the rest of the stream.

Authoring is four builders plus :func:`~repro.streaming.cep.rules.step`::

    from repro.streaming import absence, sequence, step

    entry_exit = sequence(
        "entry-exit",
        steps=[step(entered=FENCE_WKT), step(exited=FENCE_WKT)],
        within=300.0,
        group_by=lambda st, value: value[0],   # per entity
    )
    silence = absence(
        "lost-heartbeat",
        expect=step(category="hb"),
        within=60.0,
        group_by=lambda st, value: region_of(st),
    )
    stream.patterns(entry_exit, silence).matches()

See ``rules`` for the DSL, ``nfa`` for the matchers, ``consumer`` for
the runtime wiring, and ``oracle`` for the brute-force executable
specification the tests pin everything against.
"""

from repro.streaming.cep.consumer import CepConsumer, PatternStream
from repro.streaming.cep.nfa import (
    AbsenceMatcher,
    SequenceMatcher,
    WindowedMatcher,
    compile_rule,
)
from repro.streaming.cep.oracle import brute_force_matches, canonical
from repro.streaming.cep.rules import (
    AGGREGATIONS,
    COMPARATORS,
    AbsenceRule,
    AggregateRule,
    CountRule,
    EventPattern,
    Match,
    Rule,
    RuleError,
    SequenceRule,
    absence,
    aggregate,
    count,
    sequence,
    step,
)

__all__ = [
    "AGGREGATIONS",
    "COMPARATORS",
    "AbsenceMatcher",
    "AbsenceRule",
    "AggregateRule",
    "CepConsumer",
    "CountRule",
    "EventPattern",
    "Match",
    "PatternStream",
    "Rule",
    "RuleError",
    "SequenceMatcher",
    "SequenceRule",
    "WindowedMatcher",
    "absence",
    "aggregate",
    "brute_force_matches",
    "canonical",
    "compile_rule",
    "count",
    "sequence",
    "step",
]
