"""Event-time windowing for spatio-temporal streams.

The paper models events as :class:`~repro.core.stobject.STObject`
values whose temporal component is an instant or an interval, and its
combined predicates (eqs. (1)-(3)) are *intersection* semantics over
those temporal components.  Windowing inherits exactly that rule: a
record belongs to every window whose time interval its own temporal
component intersects.  An instant therefore lands in one tumbling
window (or ``length / slide`` sliding windows), while an interval-timed
event -- a concert spanning an evening -- lands in every window it
overlaps, the streaming analogue of the paper's interval-aware
``intersects``.

Two pieces live here:

- :class:`WindowSpec` -- the pure assignment arithmetic for tumbling
  (``slide == length``) and sliding (``slide < length``) windows aligned
  to multiples of ``slide`` from ``origin``;
- :class:`WindowState` -- the per-stream accumulator that buckets
  arriving records into open windows and closes a window once the
  *watermark* (max event end time seen, minus the allowed lateness)
  passes its end.  Records arriving after their window closed are
  counted rather than silently lost: ``late_dropped`` counts records
  whose *every* window had fired, and ``late_window_drops`` counts the
  per-window contributions a partially-late record missed (a record
  spanning several sliding windows of which some already fired still
  lands in the open ones, but each closed one it missed is counted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.stobject import STObject


@dataclass(frozen=True, order=True)
class Window:
    """One half-open event-time window ``[start, end)``."""

    start: float
    end: float

    @property
    def length(self) -> float:
        """The window's extent in event-time units."""
        return self.end - self.start

    def contains_time(self, t: float) -> bool:
        """True when instant *t* falls inside ``[start, end)``."""
        return self.start <= t < self.end

    def intersects_span(self, t_start: float, t_end: float) -> bool:
        """True when the closed span ``[t_start, t_end]`` overlaps this
        window -- the temporal half of the paper's eq. (1)."""
        return t_start < self.end and t_end >= self.start

    def __repr__(self) -> str:
        return f"Window[{self.start:g}, {self.end:g})"


class WindowSpec:
    """Tumbling/sliding window assignment arithmetic.

    ``length`` is the window extent; ``slide`` (default ``length``,
    which makes the windows tumbling) is the distance between
    consecutive window starts.  Window starts are the multiples of
    ``slide`` offset by ``origin``, so assignment is O(windows-hit) and
    needs no per-window state.
    """

    __slots__ = ("length", "slide", "origin", "_window_cache")

    #: Per-spec cap on memoized Window objects; streams revisit the same
    #: few open windows record after record, so a small cache hits nearly
    #: always while staying bounded on unbounded event time.
    _CACHE_LIMIT = 512

    def __init__(self, length: float, slide: float | None = None, origin: float = 0.0) -> None:
        if length <= 0:
            raise ValueError(f"window length must be positive, got {length}")
        slide = length if slide is None else slide
        if slide <= 0:
            raise ValueError(f"window slide must be positive, got {slide}")
        if slide > length:
            raise ValueError(
                f"slide ({slide}) must not exceed length ({length}); "
                "gapped windows would drop records between windows"
            )
        self.length = float(length)
        self.slide = float(slide)
        self.origin = float(origin)
        self._window_cache: dict[int, Window] = {}

    def _window_at(self, k: int) -> Window:
        """The k-th window (start ``origin + k * slide``), memoized --
        a stream assigns the same handful of open windows millions of
        times, and Window construction dominates assignment otherwise."""
        window = self._window_cache.get(k)
        if window is None:
            if len(self._window_cache) >= self._CACHE_LIMIT:
                self._window_cache.clear()
            start = self.origin + k * self.slide
            window = self._window_cache[k] = Window(start, start + self.length)
        return window

    @property
    def is_tumbling(self) -> bool:
        """True when windows do not overlap (slide equals length)."""
        return self.slide == self.length

    def assign(self, t_start: float, t_end: float | None = None) -> list[Window]:
        """Every window the span ``[t_start, t_end]`` intersects, ascending.

        With ``t_end`` omitted the record is an instant.  The result is
        never empty: any event time hits at least one window.
        """
        if t_end is None:
            t_end = t_start
        if t_end < t_start:
            raise ValueError(f"span end {t_end} precedes start {t_start}")
        # Earliest window whose [start, start+length) can still reach
        # t_start; latest window starting at or before t_end.  The k
        # range is widened by one slide on each side and every candidate
        # is checked with the exact intersection test: the float floor
        # division can land one slide off at large magnitudes or exact
        # boundaries, and the widen-then-filter keeps assignment exact
        # in the arithmetic the windows themselves are built with.
        first = math.floor((t_start - self.origin - self.length) / self.slide) + 1
        last = math.floor((t_end - self.origin) / self.slide)
        windows = []
        for k in range(first - 1, last + 2):
            window = self._window_at(k)
            if window.intersects_span(t_start, t_end):
                windows.append(window)
        if not windows:
            # Pathological float gap: consecutive windows k and k+1 can
            # satisfy start_k + length < start_{k+1} by one ulp, leaving
            # an instant between them.  Assign to the nearest window so
            # the result is never empty, as documented.
            windows.append(self._window_at(last))
        return windows

    def __repr__(self) -> str:
        shape = "tumbling" if self.is_tumbling else f"sliding/{self.slide:g}"
        return f"WindowSpec(length={self.length:g}, {shape})"


def event_span(st: STObject, fallback: float) -> tuple[float, float]:
    """The ``(start, end)`` event-time span of a record's key.

    Spatial-only records (no temporal component) take *fallback* --
    the streaming engine passes the batch's ingestion time, so untimed
    data still flows through windows deterministically.
    """
    time = st.time
    if time is None:
        return (fallback, fallback)
    return (time.start, time.end)


class WindowState:
    """Accumulates one stream's records into open event-time windows.

    ``add_batch`` buckets a batch of ``(STObject, value)`` records into
    every window their temporal component intersects, then advances the
    watermark to ``max event end seen - lateness``.  ``advance`` drains
    the windows whose end the watermark passed, in ascending window
    order -- the closed-window contents are exactly what a batch
    recomputation over that window's records would see, which is the
    property the correctness tests assert.
    """

    def __init__(self, spec: WindowSpec, lateness: float = 0.0) -> None:
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        self.spec = spec
        self.lateness = lateness
        self.watermark = -math.inf
        #: Open windows: window -> arrival-ordered records.
        self._open: dict[Window, list[tuple[STObject, Any]]] = {}
        #: Ends of windows already emitted, to classify late arrivals.
        self._closed_horizon = -math.inf
        #: Records that landed in *zero* open windows (fully late).
        self.late_dropped = 0
        #: Per-window contributions lost because that window had already
        #: fired -- a partially-late record (some of its sliding windows
        #: open, some closed) adds one per closed window it missed.
        self.late_window_drops = 0

    def add_batch(self, records: list[tuple[STObject, Any]], batch_time: float) -> None:
        """Bucket *records* into open windows and advance the watermark.

        Assignment (the part that can raise, e.g. on a malformed span)
        runs for the whole batch before any window is mutated, so a
        failed batch leaves window state untouched and a retry cannot
        double-add the records it had already placed.
        """
        max_end = self.watermark + self.lateness
        staged: list[tuple[tuple[STObject, Any], list[Window]]] = []
        late_records = late_windows = 0
        for st, value in records:
            t_start, t_end = event_span(st, batch_time)
            if t_end > max_end:
                max_end = t_end
            windows = self.spec.assign(t_start, t_end)
            live = [w for w in windows if w.end > self._closed_horizon]
            late_windows += len(windows) - len(live)
            if not live:
                late_records += 1
                continue
            staged.append(((st, value), live))
        for record, live in staged:
            for window in live:
                self._open.setdefault(window, []).append(record)
        self.late_dropped += late_records
        self.late_window_drops += late_windows
        self.watermark = max(self.watermark, max_end - self.lateness)

    def advance(self) -> list[tuple[Window, list[tuple[STObject, Any]]]]:
        """Close and return every window the watermark has passed."""
        ready = sorted(w for w in self._open if w.end <= self.watermark)
        out = []
        for window in ready:
            out.append((window, self._open.pop(window)))
            self._closed_horizon = max(self._closed_horizon, window.end)
        return out

    def flush(self) -> list[tuple[Window, list[tuple[STObject, Any]]]]:
        """Close every remaining window (stream shutdown), ascending."""
        ready = sorted(self._open)
        out = [(window, self._open.pop(window)) for window in ready]
        if ready:
            self._closed_horizon = max(self._closed_horizon, ready[-1].end)
        return out

    @property
    def open_windows(self) -> int:
        """How many windows currently hold buffered records."""
        return len(self._open)

    def snapshot(self) -> dict:
        """A picklable snapshot of the accumulator (checkpointing).

        Windows are stored as plain ``(start, end, records)`` rows so a
        restore rebuilds :class:`Window` objects through the same spec
        the live pipeline declares -- the snapshot carries no code.
        """
        return {
            "watermark": self.watermark,
            "closed_horizon": self._closed_horizon,
            "late_dropped": self.late_dropped,
            "late_window_drops": self.late_window_drops,
            "open": [
                (w.start, w.end, list(records))
                for w, records in sorted(self._open.items())
            ],
        }

    def restore(self, snapshot: dict) -> None:
        """Reset this accumulator to a :meth:`snapshot` (recovery)."""
        self.watermark = snapshot["watermark"]
        self._closed_horizon = snapshot["closed_horizon"]
        self.late_dropped = snapshot["late_dropped"]
        self.late_window_drops = snapshot["late_window_drops"]
        self._open = {
            Window(start, end): list(records)
            for start, end, records in snapshot["open"]
        }
