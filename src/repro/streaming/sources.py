"""Stream sources: where micro-batches come from.

Every source implements the tiny :class:`StreamSource` protocol --
``poll()`` returns the records that arrived since the last poll (an
empty list is a perfectly normal idle tick) and ``close()`` releases
resources.  Records are ``(STObject, value)`` pairs, the same shape the
batch operators consume, so a batch RDD built from a poll plugs
straight into the existing engine.

Three sources ship:

- :class:`QueueSource` -- in-memory, test- and backfill-friendly:
  ``push`` records from any thread, each poll drains one pending batch;
- :class:`DirectorySource` -- watches a directory for new files in the
  paper's event schema (``id;category;time;wkt``, via
  :mod:`repro.io.readers`) or GeoJSON (via :mod:`repro.io.geojson`);
- :class:`GeneratorSource` -- a seeded synthetic event firehose over
  :mod:`repro.io.datagen`, with monotonically advancing event times,
  for benchmarks and chaos runs that need unbounded deterministic input.
"""

from __future__ import annotations

import os
import random
import threading
from collections import deque
from typing import Any, Iterable, Sequence

from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.io.datagen import DEFAULT_BOUNDS
from repro.io.geojson import read_geojson
from repro.io.readers import DEFAULT_DELIMITER, EventParseError, parse_event_line

Record = tuple[STObject, Any]


class StreamSource:
    """The source protocol: named, pollable, closeable."""

    #: Display/chaos-key name; subclasses override or set per instance.
    name = "source"

    def poll(self) -> list[Record]:
        """Records that arrived since the last poll (may be empty)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further polls return nothing."""


class QueueSource(StreamSource):
    """An in-memory source fed by :meth:`push` calls.

    Each ``push(records)`` enqueues one batch; each ``poll`` dequeues
    one.  That makes test sequences exact: what you push as batch *n*
    is what batch *n* processes.  Thread-safe, so a producer thread can
    feed a started stream.
    """

    def __init__(self, batches: Iterable[Sequence[Record]] = (), name: str = "queue") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._pending: deque[list[Record]] = deque(list(b) for b in batches)
        self._closed = False

    def push(self, records: Sequence[Record]) -> None:
        """Enqueue one batch of records for a future poll."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot push to a closed QueueSource")
            self._pending.append(list(records))

    def poll(self) -> list[Record]:
        with self._lock:
            if not self._pending:
                return []
            return self._pending.popleft()

    @property
    def pending_batches(self) -> int:
        """Batches pushed but not yet polled."""
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._pending.clear()


class DirectorySource(StreamSource):
    """Watches a directory; each poll ingests files not seen before.

    ``format="events"`` parses the paper's ``id;category;time;wkt``
    lines into ``(STObject(wkt, time), (id, category))`` rows;
    ``format="geojson"`` reads FeatureCollections into
    ``(STObject, properties)`` rows.  Files are ingested whole, in
    sorted name order, so a fixed set of dropped files always yields
    the same batch sequence.  ``on_error="skip"`` drops malformed rows
    (dirty extraction output); ``"raise"`` fails the poll, which
    surfaces through the streaming context's poll-failure accounting.
    """

    FORMATS = ("events", "geojson")

    def __init__(
        self,
        path: str,
        format: str = "events",
        delimiter: str = DEFAULT_DELIMITER,
        on_error: str = "raise",
        name: str | None = None,
    ) -> None:
        if format not in self.FORMATS:
            raise ValueError(f"format must be one of {self.FORMATS}, got {format!r}")
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        self.path = path
        self.format = format
        self.delimiter = delimiter
        self.on_error = on_error
        self.name = name or f"dir:{os.path.basename(path.rstrip('/')) or path}"
        self._seen: set[str] = set()

    def _parse_event_file(self, full: str) -> list[Record]:
        records: list[Record] = []
        with open(full) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event_id, category, time, wkt = parse_event_line(line, self.delimiter)
                    records.append((STObject(wkt, time), (event_id, category)))
                except (EventParseError, ValueError):
                    if self.on_error == "raise":
                        raise
        return records

    def poll(self) -> list[Record]:
        try:
            entries = sorted(os.listdir(self.path))
        except FileNotFoundError:
            return []
        records: list[Record] = []
        staged: list[str] = []
        for entry in entries:
            if entry in self._seen or entry.startswith("."):
                continue
            full = os.path.join(self.path, entry)
            if not os.path.isfile(full):
                continue
            if self.format == "geojson":
                records.extend(read_geojson(full))
            else:
                records.extend(self._parse_event_file(full))
            staged.append(entry)
        # Files are marked seen only after the whole poll parsed: a
        # transient read failure (partially-written file, injected
        # storage fault) raises before this point, nothing is committed,
        # and the failed tick delivered no records -- so the next poll
        # re-reads the same files and no record is lost or duplicated.
        self._seen.update(staged)
        return records

    def close(self) -> None:
        """Release resources; the seen-file set is *kept* so a stopped
        and restarted stream over the same directory does not re-ingest
        every file as duplicates (use :meth:`reset` to start over)."""

    def reset(self) -> None:
        """Forget every seen file: the next poll re-ingests the whole
        directory.  The explicit restart-from-scratch escape hatch."""
        self._seen.clear()


class GeneratorSource(StreamSource):
    """A seeded synthetic event stream with advancing event time.

    Every poll yields ``rate`` events whose event times advance by
    ``time_step`` per batch (spread uniformly within the batch's time
    slice), so windows close at a predictable pace.  Deterministic
    given ``seed``: two sources with the same parameters produce
    identical batch sequences -- the property the streaming chaos tests
    and the benchmark's cross-run comparability rely on.
    """

    def __init__(
        self,
        rate: int = 100,
        time_step: float = 1.0,
        start_time: float = 0.0,
        bounds: Envelope = DEFAULT_BOUNDS,
        categories: Sequence[str] = ("accident", "concert", "protest", "sports"),
        interval_fraction: float = 0.0,
        max_duration: float = 5.0,
        seed: int = 17,
        limit: int | None = None,
        name: str = "generator",
    ) -> None:
        if rate < 1:
            raise ValueError(f"rate must be >= 1, got {rate}")
        if time_step <= 0:
            raise ValueError(f"time_step must be positive, got {time_step}")
        self.name = name
        self.rate = rate
        self.time_step = time_step
        self.bounds = bounds
        self.categories = tuple(categories)
        self.interval_fraction = interval_fraction
        self.max_duration = max_duration
        self.limit = limit
        self._rng = random.Random(seed)
        self._clock = start_time
        self._next_id = 0
        self._closed = False

    def poll(self) -> list[Record]:
        if self._closed or (self.limit is not None and self._next_id >= self.limit):
            return []
        rng = self._rng
        bounds = self.bounds
        count = self.rate
        if self.limit is not None:
            count = min(count, self.limit - self._next_id)
        records: list[Record] = []
        for i in range(count):
            x = rng.uniform(bounds.min_x, bounds.max_x)
            y = rng.uniform(bounds.min_y, bounds.max_y)
            # Event times advance within the batch's slice of the clock.
            t = self._clock + self.time_step * (i / count)
            if rng.random() < self.interval_fraction:
                st = STObject(f"POINT ({x} {y})", t, t + rng.uniform(0, self.max_duration))
            else:
                st = STObject(f"POINT ({x} {y})", t)
            records.append((st, (self._next_id, rng.choice(self.categories))))
            self._next_id += 1
        self._clock += self.time_step
        return records

    def close(self) -> None:
        self._closed = True
