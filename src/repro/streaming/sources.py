"""Stream sources: where micro-batches come from.

Every source implements the tiny :class:`StreamSource` protocol --
``poll()`` returns the records that arrived since the last poll (an
empty list is a perfectly normal idle tick) and ``close()`` releases
resources.  Records are ``(STObject, value)`` pairs, the same shape the
batch operators consume, so a batch RDD built from a poll plugs
straight into the existing engine.

Three sources ship:

- :class:`QueueSource` -- in-memory, test- and backfill-friendly:
  ``push`` records from any thread, each poll drains one pending batch;
- :class:`DirectorySource` -- watches a directory for new files in the
  paper's event schema (``id;category;time;wkt``, via
  :mod:`repro.io.readers`) or GeoJSON (via :mod:`repro.io.geojson`);
- :class:`GeneratorSource` -- a seeded synthetic event firehose over
  :mod:`repro.io.datagen`, with monotonically advancing event times,
  for benchmarks and chaos runs that need unbounded deterministic input.
"""

from __future__ import annotations

import os
import random
import threading
from collections import deque
from typing import Any, Iterable, Sequence

from repro.core.stobject import STObject
from repro.geometry.envelope import Envelope
from repro.io.datagen import DEFAULT_BOUNDS
from repro.io.geojson import read_geojson
from repro.io.readers import DEFAULT_DELIMITER, EventParseError, parse_event_line

Record = tuple[STObject, Any]


class StreamSource:
    """The source protocol: named, pollable, closeable, checkpointable.

    The four cursor methods are the checkpoint/recovery contract.  A
    *cursor* is a full snapshot of the source's read position, stored in
    periodic checkpoints; a *delta* is the position advance of a single
    poll, journaled in the write-ahead log alongside the batch it
    produced.  Recovery restores the checkpointed cursor, then replays
    the WAL tail applying each batch's delta -- after which the source
    is positioned exactly where the crashed process's last durable poll
    left it, and live polling resumes without loss or duplication.  The
    base implementations are no-ops: a source with no position (or one
    that tolerates at-least-once redelivery) needs nothing more.
    """

    #: Display/chaos-key name; subclasses override or set per instance.
    name = "source"

    def poll(self) -> list[Record]:
        """Records that arrived since the last poll (may be empty)."""
        raise NotImplementedError

    def cursor(self):
        """Full snapshot of the read position, for checkpoints (picklable)."""
        return None

    def restore_cursor(self, snapshot) -> None:
        """Reposition to a :meth:`cursor` snapshot (recovery entry point)."""

    def last_poll_delta(self):
        """Position advance of the most recent poll, for the WAL.

        None when the last poll failed or advanced nothing -- a failed
        poll must not journal a cursor move it never committed.
        """
        return None

    def apply_delta(self, delta) -> None:
        """Re-apply one journaled poll's advance (WAL replay)."""

    def close(self) -> None:
        """Release any resources; further polls return nothing."""


class QueueSource(StreamSource):
    """An in-memory source fed by :meth:`push` calls.

    Each ``push(records)`` enqueues one batch; each ``poll`` dequeues
    one.  That makes test sequences exact: what you push as batch *n*
    is what batch *n* processes.  Thread-safe, so a producer thread can
    feed a started stream.

    The cursor is the count of batches consumed so far.  Restoring a
    cursor assumes the producer re-pushes the *same batch sequence*
    after a restart (the pattern of replaying a backfill script): the
    first ``cursor`` polls then drain silently, skipping batches the
    crashed process already consumed, and delivery resumes at the first
    genuinely new batch.  The records themselves are journaled in the
    WAL, so replayed batches never depend on the producer at all.
    """

    def __init__(self, batches: Iterable[Sequence[Record]] = (), name: str = "queue") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._pending: deque[list[Record]] = deque(list(b) for b in batches)
        self._closed = False
        self._consumed = 0
        self._skip = 0
        self._last_delta: int | None = None

    def push(self, records: Sequence[Record]) -> None:
        """Enqueue one batch of records for a future poll."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot push to a closed QueueSource")
            self._pending.append(list(records))

    def poll(self) -> list[Record]:
        with self._lock:
            self._last_delta = None
            while self._skip and self._pending:
                self._pending.popleft()
                self._skip -= 1
            if self._skip or not self._pending:
                self._last_delta = 0
                return []
            self._consumed += 1
            self._last_delta = 1
            return self._pending.popleft()

    def cursor(self):
        with self._lock:
            return self._consumed

    def restore_cursor(self, snapshot) -> None:
        with self._lock:
            self._consumed = int(snapshot)
            self._skip = int(snapshot)

    def last_poll_delta(self):
        with self._lock:
            return self._last_delta

    def apply_delta(self, delta) -> None:
        with self._lock:
            self._consumed += int(delta)
            self._skip += int(delta)

    @property
    def pending_batches(self) -> int:
        """Batches pushed but not yet polled."""
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._pending.clear()


class DirectorySource(StreamSource):
    """Watches a directory; each poll ingests files not seen before.

    ``format="events"`` parses the paper's ``id;category;time;wkt``
    lines into ``(STObject(wkt, time), (id, category))`` rows;
    ``format="geojson"`` reads FeatureCollections into
    ``(STObject, properties)`` rows.  Files are ingested whole, in
    sorted name order, so a fixed set of dropped files always yields
    the same batch sequence.  ``on_error="skip"`` drops malformed rows
    (dirty extraction output); ``"raise"`` fails the poll, which
    surfaces through the streaming context's poll-failure accounting.
    """

    FORMATS = ("events", "geojson")

    def __init__(
        self,
        path: str,
        format: str = "events",
        delimiter: str = DEFAULT_DELIMITER,
        on_error: str = "raise",
        name: str | None = None,
    ) -> None:
        if format not in self.FORMATS:
            raise ValueError(f"format must be one of {self.FORMATS}, got {format!r}")
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        self.path = path
        self.format = format
        self.delimiter = delimiter
        self.on_error = on_error
        self.name = name or f"dir:{os.path.basename(path.rstrip('/')) or path}"
        self._seen: set[str] = set()
        self._last_delta: list[str] | None = None

    def _parse_event_file(self, full: str) -> list[Record]:
        records: list[Record] = []
        with open(full) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event_id, category, time, wkt = parse_event_line(line, self.delimiter)
                    records.append((STObject(wkt, time), (event_id, category)))
                except (EventParseError, ValueError):
                    if self.on_error == "raise":
                        raise
        return records

    def poll(self) -> list[Record]:
        # A failed poll leaves no delta: the cursor never moved, so the
        # WAL must not journal an advance for this tick.
        self._last_delta = None
        try:
            entries = sorted(os.listdir(self.path))
        except FileNotFoundError:
            self._last_delta = []
            return []
        records: list[Record] = []
        staged: list[str] = []
        for entry in entries:
            if entry in self._seen or entry.startswith("."):
                continue
            full = os.path.join(self.path, entry)
            if not os.path.isfile(full):
                continue
            if self.format == "geojson":
                records.extend(read_geojson(full))
            else:
                records.extend(self._parse_event_file(full))
            staged.append(entry)
        # Files are marked seen only after the whole poll parsed: a
        # transient read failure (partially-written file, injected
        # storage fault) raises before this point, nothing is committed,
        # and the failed tick delivered no records -- so the next poll
        # re-reads the same files and no record is lost or duplicated.
        self._seen.update(staged)
        self._last_delta = staged
        return records

    def cursor(self):
        """The seen-file set, sorted for deterministic snapshots."""
        return sorted(self._seen)

    def restore_cursor(self, snapshot) -> None:
        self._seen = set(snapshot)

    def last_poll_delta(self):
        """Filenames the most recent poll committed (None if it failed)."""
        return self._last_delta

    def apply_delta(self, delta) -> None:
        self._seen.update(delta)

    def close(self) -> None:
        """Release resources; the seen-file set is *kept* so a stopped
        and restarted stream over the same directory does not re-ingest
        every file as duplicates (use :meth:`reset` to start over)."""

    def reset(self) -> None:
        """Forget every seen file: the next poll re-ingests the whole
        directory.  The explicit restart-from-scratch escape hatch."""
        self._seen.clear()


class GeneratorSource(StreamSource):
    """A seeded synthetic event stream with advancing event time.

    Every poll yields ``rate`` events whose event times advance by
    ``time_step`` per batch (spread uniformly within the batch's time
    slice), so windows close at a predictable pace.  Deterministic
    given ``seed``: two sources with the same parameters produce
    identical batch sequences -- the property the streaming chaos tests
    and the benchmark's cross-run comparability rely on.

    With ``poison_every=N`` every *N*-th event (by the monotone event
    id, so the pattern survives cursor restores) carries
    ``poison_value`` as its category -- a deterministic supply of
    records a downstream operator can be written to crash on, which is
    how the overload tests and benchmark exercise the poison-record
    quarantine path.
    """

    def __init__(
        self,
        rate: int = 100,
        time_step: float = 1.0,
        start_time: float = 0.0,
        bounds: Envelope = DEFAULT_BOUNDS,
        categories: Sequence[str] = ("accident", "concert", "protest", "sports"),
        interval_fraction: float = 0.0,
        max_duration: float = 5.0,
        seed: int = 17,
        limit: int | None = None,
        name: str = "generator",
        poison_every: int | None = None,
        poison_value: str = "__poison__",
    ) -> None:
        if rate < 1:
            raise ValueError(f"rate must be >= 1, got {rate}")
        if time_step <= 0:
            raise ValueError(f"time_step must be positive, got {time_step}")
        if poison_every is not None and poison_every < 1:
            raise ValueError(f"poison_every must be >= 1, got {poison_every}")
        self.name = name
        self.poison_every = poison_every
        self.poison_value = poison_value
        self.rate = rate
        self.time_step = time_step
        self.bounds = bounds
        self.categories = tuple(categories)
        self.interval_fraction = interval_fraction
        self.max_duration = max_duration
        self.limit = limit
        self._rng = random.Random(seed)
        self._clock = start_time
        self._next_id = 0
        self._closed = False
        self._last_delta: dict | None = None

    def poll(self) -> list[Record]:
        self._last_delta = None
        if self._closed or (self.limit is not None and self._next_id >= self.limit):
            self._last_delta = self.cursor()
            return []
        rng = self._rng
        bounds = self.bounds
        count = self.rate
        if self.limit is not None:
            count = min(count, self.limit - self._next_id)
        records: list[Record] = []
        for i in range(count):
            x = rng.uniform(bounds.min_x, bounds.max_x)
            y = rng.uniform(bounds.min_y, bounds.max_y)
            # Event times advance within the batch's slice of the clock.
            t = self._clock + self.time_step * (i / count)
            if rng.random() < self.interval_fraction:
                st = STObject(f"POINT ({x} {y})", t, t + rng.uniform(0, self.max_duration))
            else:
                st = STObject(f"POINT ({x} {y})", t)
            category = rng.choice(self.categories)
            # Poison placement keys off the monotone id, not the RNG, so
            # a cursor restore reproduces the exact same poison pattern.
            if (
                self.poison_every is not None
                and (self._next_id + 1) % self.poison_every == 0
            ):
                category = self.poison_value
            records.append((st, (self._next_id, category)))
            self._next_id += 1
        self._clock += self.time_step
        self._last_delta = self.cursor()
        return records

    def cursor(self):
        """Clock, id counter and RNG state -- the full generator position."""
        return {
            "clock": self._clock,
            "next_id": self._next_id,
            "rng": self._rng.getstate(),
        }

    def restore_cursor(self, snapshot) -> None:
        self._clock = snapshot["clock"]
        self._next_id = snapshot["next_id"]
        self._rng.setstate(snapshot["rng"])

    def last_poll_delta(self):
        """The post-poll position (deltas are absolute for a generator)."""
        return self._last_delta

    def apply_delta(self, delta) -> None:
        self.restore_cursor(delta)

    def close(self) -> None:
        self._closed = True
