"""Durable streaming state: write-ahead log + atomic checkpoints.

The streaming subsystem holds everything that matters in memory --
open windows, the keyed state store, watermarks, source cursors -- and
before this module a killed driver lost all of it.  This module is the
durability substrate production stream engines are built on (GeoFlink
inherits Flink's checkpoint/restore model for exactly this reason):

- a **write-ahead ingest log** journals every polled batch (records
  plus each source's cursor delta) *before* the batch is applied to any
  state, in CRC-framed records appended to size-rotated segment files,
  each append fsynced before the poll is considered durable;
- an **emitted-window ledger** rides in the same log: after a window's
  outputs ran, an ``emit`` record names it, so a restart can suppress
  re-emission of windows the crashed process already delivered
  (exactly-once window output);
- periodic **atomic checkpoints** snapshot the full streaming state
  through the hardened :mod:`repro.spark.storage` commit path (state
  and manifest fsynced in a staging directory, committed with
  ``os.replace``, parent directory fsynced), after which WAL segments
  entirely below the checkpoint's high-water mark are pruned.

Recovery (:mod:`repro.streaming.recovery`) loads the newest checkpoint
that validates -- falling back epoch by epoch on corruption, the same
graceful-degradation shape as the persisted-index loader -- then
replays the WAL tail through the normal batch-processing core.

**WAL record format.**  Each record is ``magic (2B) | length (4B LE) |
crc32 (4B LE) | payload``, where the payload is a pickled dict with a
``kind`` key (``"batch"`` or ``"emit"``).  A reader stops at the first
frame that is short, mis-magicked or fails its CRC: in the *last*
segment that is the torn tail of an append the crash interrupted
(normal, replay simply ends there -- the batch was never applied, and
its source cursor never advanced, so nothing is lost); anywhere else it
is real corruption and raises :class:`WalCorruptionError`.  A restarted
writer truncates that torn tail before appending, so post-restart
records are never stranded behind it.

**Checkpoint layout.**  ``<dir>/checkpoint-<epoch 8 digits>/`` holding
``state.pkl`` (the pickled snapshot) and ``MANIFEST.json`` carrying the
epoch, the WAL high-water mark (largest batch id folded into the
snapshot), the state file's length and CRC, and a format version.  A
checkpoint directory without a readable, CRC-matching pair is skipped
at load time.

The chaos sites ``wal.append`` and ``checkpoint.write`` fire before the
respective writes, and every fsync honours the crash-harness hook
(:func:`repro.spark.storage.set_fsync_hook`), which is how the
kill-between-any-two-fsyncs matrix exercises this module.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import shutil
import struct
import time
import zlib
from typing import Any, Iterator

from repro.spark.storage import (
    StorageError,
    _fsync_handle,
    durable_replace,
    fsync_dir,
)

#: Frame header: magic, payload length, payload crc32 (little-endian).
_FRAME = struct.Struct("<2sII")
_MAGIC = b"WL"

#: Snapshot/manifest format version; bumped on incompatible changes.
CHECKPOINT_FORMAT = 1

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})$")
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")
_MANIFEST = "MANIFEST.json"
_STATE = "state.pkl"
_TMP_SUFFIX = "._tmp"


class WalCorruptionError(StorageError):
    """A WAL segment is damaged somewhere other than its torn tail."""


def scan_valid_prefix(path: str) -> int:
    """Byte length of the segment's intact frame prefix.

    Walks frames from the start and stops at the first one that is
    short, mis-magicked or fails its CRC; everything before that offset
    is replayable, everything after it is the torn tail a crash left.
    """
    good = 0
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return good
            magic, length, crc = _FRAME.unpack(header)
            if magic != _MAGIC:
                return good
            blob = fh.read(length)
            if len(blob) < length or zlib.crc32(blob) != crc:
                return good
            good += _FRAME.size + length


def append_record(fh, payload: dict) -> int:
    """Frame and append one payload to an open segment; returns bytes written.

    The caller owns flushing/fsyncing; this only writes the frame.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _FRAME.pack(_MAGIC, len(blob), zlib.crc32(blob))
    fh.write(header)
    fh.write(blob)
    return _FRAME.size + len(blob)


def read_segment(path: str, last_segment: bool) -> Iterator[dict]:
    """Yield every intact record of one segment, in append order.

    Stops cleanly at a torn/corrupt frame when *last_segment* (the
    crash-interrupted tail); raises :class:`WalCorruptionError` when a
    non-final segment is damaged, because records after the damage
    cannot be trusted to line up with the ones already replayed.
    """
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_FRAME.size)
            if not header:
                return
            damage = None
            if len(header) < _FRAME.size:
                damage = "torn frame header"
            else:
                magic, length, crc = _FRAME.unpack(header)
                if magic != _MAGIC:
                    damage = f"bad magic {magic!r}"
                else:
                    blob = fh.read(length)
                    if len(blob) < length:
                        damage = "torn payload"
                    elif zlib.crc32(blob) != crc:
                        damage = "payload crc mismatch"
            if damage is not None:
                if last_segment:
                    return
                raise WalCorruptionError(f"corrupt WAL segment {path!r}: {damage}")
            yield pickle.loads(blob)


class WalWriter:
    """Appends CRC-framed records to size-rotated segment files.

    Each :meth:`append` writes one frame, flushes and fsyncs before
    returning -- the record is durable or the call raised.  Segments
    rotate once they exceed *segment_bytes*; opening a segment (at
    construction or rotation) fsyncs the WAL directory so its name is
    durable before any append is acknowledged.  Reopening an existing
    WAL first truncates the last segment back to its intact frame
    prefix: a torn tail left by a crash would otherwise strand every
    post-restart record behind damage the reader stops at.
    """

    def __init__(self, directory: str, segment_bytes: int = 1 << 20) -> None:
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        os.makedirs(directory, exist_ok=True)
        existing = list_segments(directory)
        self._segment_index = (
            int(_SEGMENT_RE.match(os.path.basename(existing[-1])).group(1))
            if existing
            else 0
        )
        path = self._segment_path(self._segment_index)
        if existing:
            # A crash mid-append leaves a torn frame at the segment's
            # tail.  Appending after it would strand every later record
            # behind damage the reader (rightly) stops at, so cut the
            # segment back to its intact prefix before reopening.
            self._truncate_torn_tail(path)
        self._fh = open(path, "ab")
        # Make the segment's directory entry durable before any append
        # is acknowledged -- otherwise a power loss can drop the file
        # (and every fsynced record in it) with the unsynced entry.
        fsync_dir(self.directory)
        #: Appends performed through this writer (benchmark counter).
        self.appends = 0
        #: Payload+frame bytes appended (benchmark counter).
        self.bytes_written = 0
        #: Wall seconds spent appending+fsyncing (benchmark counter).
        self.append_seconds = 0.0

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"wal-{index:08d}.log")

    @staticmethod
    def _truncate_torn_tail(path: str) -> None:
        size = os.path.getsize(path)
        good = scan_valid_prefix(path)
        if good < size:
            with open(path, "r+b") as fh:
                fh.truncate(good)
                _fsync_handle(fh, path)

    def append(self, payload: dict) -> None:
        """Durably append one record (fsynced before returning)."""
        start = time.perf_counter()
        path = self._segment_path(self._segment_index)
        written = append_record(self._fh, payload)
        _fsync_handle(self._fh, path)
        self.appends += 1
        self.bytes_written += written
        self.append_seconds += time.perf_counter() - start
        if self._fh.tell() >= self.segment_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        self._segment_index += 1
        self._fh = open(self._segment_path(self._segment_index), "ab")
        fsync_dir(self.directory)

    def prune_below(self, high_water: int) -> int:
        """Delete closed segments whose every record is ``<= high_water``.

        Called after a checkpoint commit: batches at or below the
        checkpoint's high-water mark will never be replayed, so their
        segments (and the emit records riding with them) are garbage.
        The open segment is never pruned.  Returns segments deleted.
        """
        pruned = 0
        current = self._segment_path(self._segment_index)
        for path in list_segments(self.directory):
            if path == current:
                continue
            records = list(read_segment(path, last_segment=False))
            if all(record.get("batch_id", -1) <= high_water for record in records):
                os.remove(path)
                pruned += 1
        if pruned:
            fsync_dir(self.directory)
        return pruned

    def close(self) -> None:
        """Close the open segment handle (idempotent)."""
        if not self._fh.closed:
            self._fh.close()


def list_segments(directory: str) -> list[str]:
    """Every WAL segment under *directory*, in append (index) order."""
    if not os.path.isdir(directory):
        return []
    names = sorted(n for n in os.listdir(directory) if _SEGMENT_RE.match(n))
    return [os.path.join(directory, n) for n in names]


def read_wal(directory: str) -> Iterator[dict]:
    """Every intact WAL record across all segments, in append order.

    Torn tails are tolerated only in the final segment (see
    :func:`read_segment`).
    """
    segments = list_segments(directory)
    for i, path in enumerate(segments):
        yield from read_segment(path, last_segment=(i == len(segments) - 1))


def list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """Every committed ``(epoch, path)`` under *directory*, ascending."""
    if not os.path.isdir(directory):
        return []
    out = []
    for name in os.listdir(directory):
        match = _CHECKPOINT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(out)


def write_checkpoint(directory: str, epoch: int, snapshot: Any, high_water: int) -> str:
    """Atomically commit one checkpoint epoch; returns its final path.

    The snapshot is pickled into ``state.pkl`` and described by
    ``MANIFEST.json`` (epoch, WAL high-water mark, state length + CRC,
    format version) inside a staging directory whose files are fsynced
    before the directory is committed with the storage layer's
    ``durable_replace`` -- fsync staging dir, ``os.replace``, fsync
    parent.  A crash at any point leaves either the previous epochs
    untouched or the new epoch fully committed, never a half-written
    one that validates.
    """
    final = os.path.join(directory, f"checkpoint-{epoch:08d}")
    tmp = final + _TMP_SUFFIX
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        state_path = os.path.join(tmp, _STATE)
        with open(state_path, "wb") as fh:
            fh.write(blob)
            _fsync_handle(fh, state_path)
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "epoch": epoch,
            "wal_high_water": high_water,
            "state_bytes": len(blob),
            "state_crc32": zlib.crc32(blob),
            "created_unix": time.time(),
        }
        manifest_path = os.path.join(tmp, _MANIFEST)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            _fsync_handle(fh, manifest_path)
        durable_replace(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return final


def load_checkpoint(path: str) -> tuple[Any, dict]:
    """Load and validate one checkpoint directory: ``(snapshot, manifest)``.

    Raises :class:`StorageError` on any damage -- missing files, a
    manifest that does not parse, a state file whose length or CRC
    disagrees with the manifest, or an unknown format version.
    """
    manifest_path = os.path.join(path, _MANIFEST)
    state_path = os.path.join(path, _STATE)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"unreadable checkpoint manifest {manifest_path!r}: {exc}") from exc
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise StorageError(
            f"checkpoint {path!r} has format {manifest.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT}"
        )
    try:
        with open(state_path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise StorageError(f"unreadable checkpoint state {state_path!r}: {exc}") from exc
    if len(blob) != manifest.get("state_bytes") or zlib.crc32(blob) != manifest.get(
        "state_crc32"
    ):
        raise StorageError(f"checkpoint state {state_path!r} fails its manifest CRC")
    try:
        snapshot = pickle.loads(blob)
    except Exception as exc:  # pickle raises a zoo of types on damage
        raise StorageError(f"corrupt checkpoint state {state_path!r}: {exc}") from exc
    return snapshot, manifest


def load_latest_checkpoint(directory: str) -> tuple[Any, dict, int] | None:
    """The newest checkpoint that validates: ``(snapshot, manifest, skipped)``.

    Walks epochs newest-first and falls back on damage, counting the
    epochs it had to skip -- the persisted-index graceful-degradation
    pattern applied to checkpoints.  Returns None when no epoch
    validates (recovery then starts from an empty state and replays the
    whole WAL).
    """
    skipped = 0
    for _epoch, path in reversed(list_checkpoints(directory)):
        try:
            snapshot, manifest = load_checkpoint(path)
        except StorageError:
            skipped += 1
            continue
        return snapshot, manifest, skipped
    return None


class CheckpointManager:
    """The streaming context's handle on all durable state.

    Owns the WAL writer, the emit buffer, checkpoint epochs and
    pruning; the :class:`~repro.streaming.context.StreamingContext`
    calls :meth:`log_batch` after every poll (before processing),
    :meth:`note_emit` as windows fire, :meth:`commit_emits` when a
    batch completes, and :meth:`maybe_checkpoint` on the checkpoint
    cadence.  All chaos goes through the context's installed injector:
    ``wal.append`` before a batch journal entry, ``checkpoint.write``
    before a snapshot commit.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = 1 << 20,
        injector_source=None,
    ) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.wal = WalWriter(os.path.join(directory, "wal"), segment_bytes)
        self._injector_source = injector_source
        self._pending_emits: list[tuple[int, float, float]] = []
        existing = list_checkpoints(directory)
        self._next_epoch = existing[-1][0] + 1 if existing else 1
        #: True while recovery replays the WAL (batch journaling off).
        self.replaying = False
        #: Checkpoints committed through this manager.
        self.checkpoints_written = 0
        #: Wall seconds spent committing checkpoints (benchmark counter).
        self.checkpoint_seconds = 0.0
        #: WAL segments pruned after checkpoint commits.
        self.segments_pruned = 0

    def _injector(self):
        source = self._injector_source
        return source() if callable(source) else source

    # -- WAL ---------------------------------------------------------------

    def log_batch(
        self,
        batch_id: int,
        batch_time: float,
        inputs: list[list],
        cursors: list,
    ) -> None:
        """Journal one polled batch before it is applied to any state.

        *inputs* and *cursors* are indexed by the context's input
        stream order (ids are process-local and useless after a
        restart).  No-op while recovery replays the tail -- those
        batches are already in the log.
        """
        if self.replaying:
            return
        injector = self._injector()
        if injector is not None:
            injector.check("wal.append", key=batch_id)
        self.wal.append(
            {
                "kind": "batch",
                "batch_id": batch_id,
                "time": batch_time,
                "inputs": inputs,
                "cursors": cursors,
            }
        )

    def note_emit(self, consumer_index: int, window) -> None:
        """Buffer one fired window for the next :meth:`commit_emits`."""
        self._pending_emits.append((consumer_index, window.start, window.end))

    def log_shed(self, batch_id: int, records: int) -> None:
        """Journal one batch the shed policy dropped at admission.

        Appended *after* the batch's own journal record (polling logs
        first, admission decides second), so the tail always sees the
        pair together: recovery replays the shed -- advancing counters,
        skipping processing -- instead of applying records the live
        run never applied.  No-op while replaying, like
        :meth:`log_batch`.
        """
        if self.replaying:
            return
        self.wal.append(
            {"kind": "shed", "batch_id": batch_id, "records": records}
        )

    def commit_emits(self, batch_id: int) -> None:
        """Durably append the windows the finished batch emitted.

        One ledger record (and one fsync) per batch, not per window.
        A crash between a window's outputs running and this append
        re-emits that window on recovery -- which is why the durable
        sinks carry their own per-window commit markers.
        """
        if not self._pending_emits:
            return
        self.wal.append(
            {
                "kind": "emit",
                "batch_id": batch_id,
                "windows": list(self._pending_emits),
            }
        )
        self._pending_emits.clear()

    def read_tail(
        self, high_water: int
    ) -> tuple[list[dict], set[tuple[int, float, float]], set[int]]:
        """The replayable log tail: ``(batches, emitted, shed)``.

        *batches* are the journal entries with ``batch_id >
        high_water`` in batch-id order; *emitted* is the set of
        ``(consumer_index, start, end)`` windows the crashed process
        already delivered while processing those batches -- the
        suppression set for exactly-once window output.  *shed* is the
        set of batch ids the admission policy dropped: recovery must
        not re-apply their records (it advances the shed counters
        instead).  Shed ids are collected without the high-water
        filter -- sheds happen at poll time, out of order with the
        processing that picks the high-water mark.
        """
        batches: list[dict] = []
        emitted: set[tuple[int, float, float]] = set()
        shed: set[int] = set()
        for record in read_wal(self.wal.directory):
            if record["kind"] == "shed":
                shed.add(record["batch_id"])
                continue
            if record.get("batch_id", -1) <= high_water:
                continue
            if record["kind"] == "batch":
                batches.append(record)
            elif record["kind"] == "emit":
                emitted.update(tuple(entry) for entry in record["windows"])
        batches.sort(key=lambda record: record["batch_id"])
        return batches, emitted, shed

    # -- checkpoints -------------------------------------------------------

    def write_checkpoint(self, snapshot: Any, high_water: int) -> int:
        """Commit one epoch and prune the WAL below it; returns the epoch."""
        injector = self._injector()
        if injector is not None:
            injector.check("checkpoint.write", key=self._next_epoch)
        start = time.perf_counter()
        epoch = self._next_epoch
        write_checkpoint(self.directory, epoch, snapshot, high_water)
        self._next_epoch = epoch + 1
        self.checkpoints_written += 1
        self.checkpoint_seconds += time.perf_counter() - start
        self.segments_pruned += self.wal.prune_below(high_water)
        return epoch

    def load_latest(self) -> tuple[Any, dict, int] | None:
        """Delegates to :func:`load_latest_checkpoint` for this directory."""
        return load_latest_checkpoint(self.directory)

    def stats(self) -> dict:
        """Benchmark counters: WAL append cost, checkpoint cost, pruning."""
        return {
            "wal_appends": self.wal.appends,
            "wal_bytes": self.wal.bytes_written,
            "wal_append_seconds": self.wal.append_seconds,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_seconds": self.checkpoint_seconds,
            "segments_pruned": self.segments_pruned,
        }

    def close(self) -> None:
        """Release the WAL segment handle (idempotent)."""
        self.wal.close()
