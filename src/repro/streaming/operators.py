"""Spatio-temporal operators over micro-batch streams.

The streaming layer does not re-implement the paper's operators -- it
routes micro-batches and windows through the *batch* operators in
:mod:`repro.core`, so every result is by construction what a batch run
over the same records would produce.  What lives here is the one
genuinely stream-shaped operator: the **stream-static join**.

A stream-static join matches each incoming event against a fixed
reference dataset (region polygons, points of interest, ...).  Shipping
the reference with every batch would repeat the dominant cost per
batch, so the reference is indexed once into an
:class:`~repro.index.rtree.STRTree` and broadcast; each batch then
probes the tree per partition -- the same build-once/probe-many design
STARK uses for its repartition join, applied across batches instead of
across partitions (GeoFlink's "spatial join with a static side" shape).

Candidate pruning mirrors :func:`repro.core.predicates.
within_distance_predicate`: envelope probes are only *valid* pruning
for intersection-style predicates and the Euclidean metric; any other
distance function degrades to a full reference scan so candidates stay
complete, and the exact predicate then decides.

**Temporal semantics.**  The paper's combined predicate (eqs. (1)-(3))
rejects a mixed pair where exactly one side has a temporal component.
That is the right rule between two *event* datasets, but a static
reference (region polygons, POIs) is a standing fact, not an event:
it is valid at every instant.  The join therefore evaluates the full
combined predicate only when both sides carry time, and falls back to
the spatial predicate alone when either side is untimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.core.predicates import STPredicate, combine
from repro.core.stobject import STObject
from repro.geometry.distance import DistanceFunction, euclidean, resolve
from repro.index.rtree import STRTree
from repro.spark.broadcast import Broadcast
from repro.spark.cancellation import Heartbeat
from repro.spark.rdd import RDD

Record = tuple[STObject, Any]


@dataclass(frozen=True)
class StaticPredicate(STPredicate):
    """An :class:`STPredicate` with the static-side temporal relaxation.

    The paper's combined semantics reject a pair where exactly one side
    has a temporal component; for stream operators that rule would make
    every timed event miss every untimed query or reference object.
    This variant treats an untimed side as valid at all times: the
    spatial predicate alone decides.  Two timed sides keep the full
    combined semantics.
    """

    def evaluate(self, item: STObject, query: STObject) -> bool:
        """Spatial-only when either side is untimed; else the full predicate."""
        if item.time is None or query.time is None:
            return self.spatial(item.geo, query.geo)
        return combine(self.spatial, self.temporal, item, query)


def relax_static(predicate: STPredicate) -> STPredicate:
    """Wrap *predicate* with the static-side temporal relaxation."""
    if isinstance(predicate, StaticPredicate):
        return predicate
    return StaticPredicate(
        f"static({predicate.name})",
        predicate.spatial,
        predicate.temporal,
        predicate.envelope_test,
        predicate.candidate_region,
    )


def build_static_index(
    reference: "RDD | Sequence[Record]", order: int = 10
) -> STRTree:
    """Materialize the static side of a stream-static join as an STR-tree.

    *reference* is an ``RDD[(STObject, V)]`` or a plain sequence of such
    pairs; it is collected to the driver (the static side is assumed to
    fit -- the same assumption a Spark broadcast join makes) and
    bulk-loaded into one tree.
    """
    rows = reference.collect() if isinstance(reference, RDD) else list(reference)
    return STRTree(((st.geo.envelope, (st, v)) for st, v in rows), node_capacity=order)


def broadcast_static_index(
    sc, reference: "RDD | Sequence[Record]", order: int = 10
) -> Broadcast:
    """Build and broadcast the static index once for a whole stream."""
    return sc.broadcast(build_static_index(reference, order))


def stream_static_join(
    batch_rdd: RDD,
    index: Broadcast,
    predicate: STPredicate,
    envelope_margin: float = 0.0,
    prune: bool = True,
) -> RDD:
    """Join one micro-batch against a broadcast static index.

    Returns ``RDD[((stream_st, stream_v), (static_st, static_v))]`` --
    one pair per matching combination, the same contract as
    :func:`repro.core.join.spatial_join`.

    ``envelope_margin`` widens the probe envelope (the Euclidean
    ``withinDistance`` case); ``prune=False`` disables envelope probing
    entirely and scans the full reference per record (required for
    non-Euclidean metrics, where envelope distance proves nothing).

    The predicate is oriented like :func:`repro.core.join.spatial_join`:
    ``evaluate(stream_item, static_item)``, with the static-side
    temporal relaxation of :func:`relax_static`.
    """
    predicate = relax_static(predicate)

    def join_partition(it: Iterator[Record]) -> Iterator[tuple]:
        tree: STRTree = index.value
        heartbeat = Heartbeat(every=256)
        for st, value in it:
            heartbeat.beat()
            if prune:
                probe = st.geo.envelope
                if envelope_margin > 0.0:
                    probe = probe.buffer(envelope_margin)
                candidates = tree.query(probe)
            else:
                candidates = [entry for _env, entry in tree.iter_entries()]
            for ref_st, ref_value in candidates:
                if predicate.evaluate(st, ref_st):
                    yield ((st, value), (ref_st, ref_value))

    return batch_rdd.map_partitions(join_partition).set_name("stream.join_static")


def within_distance_join_plan(
    max_distance: float, distance_fn: "str | DistanceFunction" = euclidean
) -> tuple[float, bool]:
    """The ``(envelope_margin, prune)`` pair for a withinDistance join.

    Euclidean gets envelope pruning with the distance as margin; every
    other metric disables pruning (see module docstring).
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    fn = resolve(distance_fn)
    if fn is euclidean:
        return (max_distance, True)
    return (0.0, False)
