"""Durable per-window stream sinks with commit-marker dedup.

The delivery edge of the recovery story.  The emitted-window ledger
(:mod:`repro.streaming.checkpoint`) makes in-process window output
exactly-once across restarts, but there is one unavoidable gap: a crash
*between* a window's outputs running and the ledger append re-runs that
window on recovery.  For sinks that write files the fix is idempotence:
every window commits to its own deterministically named target through
the atomic-rename path, and the target's existence is the commit marker
-- a re-delivered window finds its file already committed and skips,
counting the dedup in :attr:`WindowSink.skipped`.  Crashed half-writes
live under a ``._tmp`` name that the atomic commit never exposes, so
a restart simply overwrites them.

Three sinks ship, all registered with
:meth:`~repro.streaming.dstream.WindowedStream.for_each_window`::

    events.window(length=8.0).for_each_window(
        EventFileSink(out_dir)          # one id;category;time;wkt file
    )                                    # per closed window

- :class:`EventFileSink` -- the paper's flat event schema via
  :mod:`repro.io.readers`;
- :class:`GeoJSONSink` -- one FeatureCollection per window via
  :mod:`repro.io.geojson`;
- :class:`ObjectFileSink` -- pickle part-files through
  :func:`repro.spark.storage.save_object_file`, whose committed
  directory (with its ``_SUCCESS`` marker) is itself the dedup marker.

All three funnel their durability through :mod:`repro.spark.storage`'s
fsync helpers, so the chaos crash harness counts their barriers too.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.stobject import STObject
from repro.io.geojson import write_geojson
from repro.io.readers import DEFAULT_DELIMITER, format_event_line
from repro.spark.rdd import RDD
from repro.spark.storage import durable_replace, save_object_file
from repro.streaming.window import Window

_TMP_SUFFIX = "._tmp"


class WindowSink:
    """Base class: one durable, deduplicated target per closed window.

    Subclasses define :attr:`suffix` and :meth:`write`.  The callable
    itself is the ``for_each_window`` output: it derives the window's
    deterministic target name, skips (counting) if the target already
    exists -- the commit marker left by a pre-crash delivery -- and
    otherwise writes and atomically commits.
    """

    #: Target name suffix (e.g. ``".events"``); subclasses override.
    suffix = ""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        #: Windows this sink committed.
        self.committed = 0
        #: Re-delivered windows skipped because their target existed.
        self.skipped = 0

    def window_key(self, window: Window) -> str:
        """The window's stable file-name stem (same window, same name).

        The bounds are rendered with :func:`repr`, which round-trips
        floats exactly -- a lossy rendering (e.g. ``:g``'s 6 significant
        digits) would collide adjacent windows at wall-clock epoch
        scale, and a collision here silently drops a window's data
        because the target's existence is the dedup marker.
        """
        return f"window-{float(window.start)!r}-{float(window.end)!r}"

    def target(self, window: Window) -> str:
        """The window's final committed path."""
        return os.path.join(self.directory, self.window_key(window) + self.suffix)

    def is_committed(self, window: Window) -> bool:
        """Has this window already been delivered (possibly pre-crash)?"""
        return os.path.exists(self.target(window))

    def __call__(self, window: Window, rdd: RDD) -> None:
        """The ``for_each_window`` entry point: dedupe, write, commit."""
        if self.is_committed(window):
            self.skipped += 1
            return
        self.write(window, rdd, self.target(window))
        self.committed += 1

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        """Durably commit one window's data to *path* (subclass duty)."""
        raise NotImplementedError

    def _commit_file(self, path: str, text: str) -> None:
        """Write *text* to a staging file and atomically commit it.

        The staging name is never the commit marker, so a crash mid-\
        write leaves an ignorable ``._tmp`` orphan the next delivery
        overwrites; ``durable_replace`` fsyncs content, renames, and
        fsyncs the parent -- a committed window survives power loss.
        """
        tmp = path + _TMP_SUFFIX
        with open(tmp, "w") as fh:
            fh.write(text)
        durable_replace(tmp, path)


class EventFileSink(WindowSink):
    """One ``id;category;time;wkt`` event file per closed window.

    Record values shaped ``(id, category)`` (the event-file reader's
    own output) round-trip exactly; any other value becomes the id with
    an empty category.  Untimed records take the window start as their
    timestamp.
    """

    suffix = ".events"

    def __init__(self, directory: str, delimiter: str = DEFAULT_DELIMITER) -> None:
        super().__init__(directory)
        self.delimiter = delimiter

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        lines = []
        for st, value in rdd.collect():
            if isinstance(value, (tuple, list)) and len(value) == 2:
                event_id, category = value
            else:
                event_id, category = value, ""
            time = st.time.start if st.time is not None else window.start
            lines.append(
                format_event_line(
                    (event_id, str(category), time, st.geo.wkt()), self.delimiter
                )
            )
        self._commit_file(path, "".join(line + "\n" for line in lines))


class GeoJSONSink(WindowSink):
    """One GeoJSON FeatureCollection per closed window.

    Dict-valued records become the feature's properties directly;
    anything else is wrapped as ``{"value": ...}`` so every record
    stays representable.
    """

    suffix = ".geojson"

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        rows: list[tuple[STObject, dict[str, Any]]] = []
        for st, value in rdd.collect():
            rows.append((st, value if isinstance(value, dict) else {"value": value}))
        tmp = path + _TMP_SUFFIX
        write_geojson(rows, tmp)
        durable_replace(tmp, path)


class ObjectFileSink(WindowSink):
    """One pickle object-file directory per closed window.

    Delegates to :func:`repro.spark.storage.save_object_file`, which is
    already atomic and durable; the committed directory doubles as the
    dedup marker, so this sink adds only the per-window naming.
    Windows re-read with :func:`repro.spark.storage.object_file_rdd`
    restore the exact partitioning.
    """

    suffix = ""

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        save_object_file(rdd, path)
