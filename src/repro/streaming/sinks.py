"""Durable per-window stream sinks with commit-marker dedup.

The delivery edge of the recovery story.  The emitted-window ledger
(:mod:`repro.streaming.checkpoint`) makes in-process window output
exactly-once across restarts, but there is one unavoidable gap: a crash
*between* a window's outputs running and the ledger append re-runs that
window on recovery.  For sinks that write files the fix is idempotence:
every window commits to its own deterministically named target through
the atomic-rename path, and the target's existence is the commit marker
-- a re-delivered window finds its file already committed and skips,
counting the dedup in :attr:`WindowSink.skipped`.  Crashed half-writes
live under a ``._tmp`` name that the atomic commit never exposes, so
a restart simply overwrites them.

Three sinks ship, all registered with
:meth:`~repro.streaming.dstream.WindowedStream.for_each_window`::

    events.window(length=8.0).for_each_window(
        EventFileSink(out_dir)          # one id;category;time;wkt file
    )                                    # per closed window

- :class:`EventFileSink` -- the paper's flat event schema via
  :mod:`repro.io.readers`;
- :class:`GeoJSONSink` -- one FeatureCollection per window via
  :mod:`repro.io.geojson`;
- :class:`ObjectFileSink` -- pickle part-files through
  :func:`repro.spark.storage.save_object_file`, whose committed
  directory (with its ``_SUCCESS`` marker) is itself the dedup marker.

All three funnel their durability through :mod:`repro.spark.storage`'s
fsync helpers, so the chaos crash harness counts their barriers too.

**Degraded delivery.**  A sink is the stream's most failure-prone edge
(full disks, flaky mounts, injected ``sink.write`` chaos), so delivery
is wrapped in the overload layer's protections: each window write is
retried up to ``retries`` times with linear backoff; a sink given a
:class:`~repro.streaming.overload.CircuitBreaker` trips open after
persistent failures and routes whole windows straight to the
:class:`~repro.streaming.dlq.DeadLetterQueue` (with provenance) until
a half-open probe succeeds; and with a DLQ attached a terminal write
failure *never* propagates -- the window is dead-lettered and the
stream keeps running, with :func:`~repro.streaming.dlq.dlq_replay`
reproducing the missing targets once the sink heals.  Without a DLQ
the pre-existing contract holds: terminal failures raise into the
batch retry envelope.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.core.stobject import STObject
from repro.io.geojson import write_geojson
from repro.io.readers import DEFAULT_DELIMITER, format_event_line
from repro.spark.rdd import RDD
from repro.spark.storage import durable_replace, save_object_file
from repro.streaming.window import Window

_TMP_SUFFIX = "._tmp"


class WindowSink:
    """Base class: one durable, deduplicated target per closed window.

    Subclasses define :attr:`suffix` and :meth:`write`.  The callable
    itself is the ``for_each_window`` output: it derives the window's
    deterministic target name, skips (counting) if the target already
    exists -- the commit marker left by a pre-crash delivery -- and
    otherwise writes and atomically commits, under the retry / circuit
    breaker / dead-letter protections of the module docstring.

    ``retries`` is the number of *additional* attempts after a failed
    write (``retry_backoff`` seconds times the attempt number between
    them); ``breaker`` is an optional
    :class:`~repro.streaming.overload.CircuitBreaker`; ``dlq`` an
    optional :class:`~repro.streaming.dlq.DeadLetterQueue` (the
    streaming context wires its own into sinks that have none);
    ``name`` discriminates this sink's DLQ entries (defaults to the
    class name -- give explicit names to multiple sinks of one class
    sharing a DLQ).
    """

    #: Target name suffix (e.g. ``".events"``); subclasses override.
    suffix = ""

    def __init__(
        self,
        directory: str,
        retries: int = 2,
        retry_backoff: float = 0.0,
        breaker=None,
        dlq=None,
        name: str | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.breaker = breaker
        self.dlq = dlq
        #: This sink's identity in DLQ entries and chaos-site keys.
        self.name = name if name is not None else type(self).__name__
        #: Windows this sink committed.
        self.committed = 0
        #: Re-delivered windows skipped because their target existed.
        self.skipped = 0
        #: Write attempts beyond the first (the retry count).
        self.retries_used = 0
        #: Terminal delivery failures (retries exhausted).
        self.failures = 0
        #: Windows routed to the dead-letter queue.
        self.dead_lettered = 0
        # Wired by the streaming context: callables yielding the live
        # fault injector and the current batch's provenance dict.
        self._injector_source = None
        self._provenance_source = None

    def window_key(self, window: Window) -> str:
        """The window's stable file-name stem (same window, same name).

        The bounds are rendered with :func:`repr`, which round-trips
        floats exactly -- a lossy rendering (e.g. ``:g``'s 6 significant
        digits) would collide adjacent windows at wall-clock epoch
        scale, and a collision here silently drops a window's data
        because the target's existence is the dedup marker.
        """
        return f"window-{float(window.start)!r}-{float(window.end)!r}"

    def target(self, window: Window) -> str:
        """The window's final committed path."""
        return os.path.join(self.directory, self.window_key(window) + self.suffix)

    def is_committed(self, window: Window) -> bool:
        """Has this window already been delivered (possibly pre-crash)?"""
        return os.path.exists(self.target(window))

    def __call__(self, window: Window, rdd: RDD) -> None:
        """The ``for_each_window`` entry point: dedupe, write, commit.

        Delivery order: commit-marker dedup first (a re-delivered
        window is skipped before it can trip the breaker), then the
        breaker gate (refused windows dead-letter immediately), then
        the retry loop around :meth:`write` with the ``sink.write``
        chaos site fired before each attempt.  Terminal failures
        record on the breaker and either dead-letter (DLQ attached --
        the stream survives) or raise (no DLQ -- the historical
        contract).
        """
        if self.is_committed(window):
            self.skipped += 1
            return
        if self.breaker is not None and not self.breaker.allow():
            self._dead_letter(
                window, rdd, error="circuit breaker open", circuit_open=True
            )
            return
        attempt = 0
        while True:
            try:
                injector = self._injector()
                if injector is not None:
                    injector.check(
                        "sink.write", key=(self.name, self.window_key(window))
                    )
                self.write(window, rdd, self.target(window))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                attempt += 1
                if attempt <= self.retries:
                    self.retries_used += 1
                    if self.retry_backoff:
                        time.sleep(self.retry_backoff * attempt)
                    continue
                self.failures += 1
                if self.breaker is not None:
                    self.breaker.record_failure()
                if self.dlq is not None:
                    self._dead_letter(window, rdd, error=repr(exc))
                    return
                raise
            else:
                break
        if self.breaker is not None:
            self.breaker.record_success()
        self.committed += 1

    def _injector(self):
        """The live fault injector, if the context wired one in."""
        source = self._injector_source
        return source() if source is not None else None

    def _dead_letter(
        self, window: Window, rdd: RDD, error: str, circuit_open: bool = False
    ) -> None:
        """Journal one undeliverable window to the DLQ with provenance.

        Raises instead when no DLQ is attached (a breaker refusing
        deliveries with nowhere to put them would silently lose data).
        """
        if self.dlq is None:
            raise RuntimeError(
                f"sink {self.name!r}: circuit breaker open and no dead-letter "
                "queue attached to absorb the refused window"
            )
        provenance = (
            self._provenance_source() if self._provenance_source is not None else {}
        )
        self.dlq.add_window(
            self.name,
            window,
            rdd.collect(),
            provenance.get("batch_id"),
            provenance.get("source"),
            error,
            circuit_open=circuit_open,
        )
        self.dead_lettered += 1

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        """Durably commit one window's data to *path* (subclass duty)."""
        raise NotImplementedError

    def _commit_file(self, path: str, text: str) -> None:
        """Write *text* to a staging file and atomically commit it.

        The staging name is never the commit marker, so a crash mid-\
        write leaves an ignorable ``._tmp`` orphan the next delivery
        overwrites; ``durable_replace`` fsyncs content, renames, and
        fsyncs the parent -- a committed window survives power loss.
        """
        tmp = path + _TMP_SUFFIX
        with open(tmp, "w") as fh:
            fh.write(text)
        durable_replace(tmp, path)


class EventFileSink(WindowSink):
    """One ``id;category;time;wkt`` event file per closed window.

    Record values shaped ``(id, category)`` (the event-file reader's
    own output) round-trip exactly; any other value becomes the id with
    an empty category.  Untimed records take the window start as their
    timestamp.
    """

    suffix = ".events"

    def __init__(
        self, directory: str, delimiter: str = DEFAULT_DELIMITER, **kwargs: Any
    ) -> None:
        super().__init__(directory, **kwargs)
        self.delimiter = delimiter

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        lines = []
        for st, value in rdd.collect():
            if isinstance(value, (tuple, list)) and len(value) == 2:
                event_id, category = value
            else:
                event_id, category = value, ""
            time = st.time.start if st.time is not None else window.start
            lines.append(
                format_event_line(
                    (event_id, str(category), time, st.geo.wkt()), self.delimiter
                )
            )
        self._commit_file(path, "".join(line + "\n" for line in lines))


class GeoJSONSink(WindowSink):
    """One GeoJSON FeatureCollection per closed window.

    Dict-valued records become the feature's properties directly;
    anything else is wrapped as ``{"value": ...}`` so every record
    stays representable.
    """

    suffix = ".geojson"

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        rows: list[tuple[STObject, dict[str, Any]]] = []
        for st, value in rdd.collect():
            rows.append((st, value if isinstance(value, dict) else {"value": value}))
        tmp = path + _TMP_SUFFIX
        write_geojson(rows, tmp)
        durable_replace(tmp, path)


class ObjectFileSink(WindowSink):
    """One pickle object-file directory per closed window.

    Delegates to :func:`repro.spark.storage.save_object_file`, which is
    already atomic and durable; the committed directory doubles as the
    dedup marker, so this sink adds only the per-window naming.
    Windows re-read with :func:`repro.spark.storage.object_file_rdd`
    restore the exact partitioning.
    """

    suffix = ""

    def write(self, window: Window, rdd: RDD, path: str) -> None:
        save_object_file(rdd, path)
